#include "graph/versioned_graph.h"

namespace ubigraph {

VertexId VersionedGraph::AddVertex(std::string_view label) {
  Change c;
  c.kind = ChangeKind::kAddVertex;
  c.version = committed_ + 1;
  c.vertex = next_vertex_++;
  c.text = std::string(label);
  log_.push_back(std::move(c));
  return next_vertex_ - 1;
}

Result<EdgeId> VersionedGraph::AddEdge(VertexId src, VertexId dst,
                                       std::string_view type) {
  if (src >= next_vertex_ || dst >= next_vertex_) {
    return Status::OutOfRange("edge endpoint does not exist");
  }
  Change c;
  c.kind = ChangeKind::kAddEdge;
  c.version = committed_ + 1;
  c.edge = next_edge_++;
  c.vertex = src;
  c.other = dst;
  c.text = std::string(type);
  log_.push_back(std::move(c));
  edge_live_.push_back(true);
  edge_endpoints_.emplace_back(src, dst);
  return next_edge_ - 1;
}

Status VersionedGraph::RemoveEdge(EdgeId edge) {
  if (edge >= edge_live_.size() || !edge_live_[edge]) {
    return Status::NotFound("edge " + std::to_string(edge) + " not live");
  }
  Change c;
  c.kind = ChangeKind::kRemoveEdge;
  c.version = committed_ + 1;
  c.edge = edge;
  log_.push_back(std::move(c));
  edge_live_[edge] = false;
  return Status::OK();
}

Status VersionedGraph::SetVertexProperty(VertexId v, std::string_view key,
                                         PropertyValue value) {
  if (v >= next_vertex_) return Status::OutOfRange("vertex does not exist");
  Change c;
  c.kind = ChangeKind::kSetVertexProperty;
  c.version = committed_ + 1;
  c.vertex = v;
  c.text = std::string(key);
  c.value = std::move(value);
  log_.push_back(std::move(c));
  return Status::OK();
}

VersionId VersionedGraph::Commit() { return ++committed_; }

Status VersionedGraph::CheckVersion(VersionId version) const {
  if (version > committed_) {
    return Status::OutOfRange("version " + std::to_string(version) +
                              " not committed yet (latest is " +
                              std::to_string(committed_) + ")");
  }
  return Status::OK();
}

Result<bool> VersionedGraph::EdgeExistedAt(EdgeId edge, VersionId version) const {
  UG_RETURN_NOT_OK(CheckVersion(version));
  bool exists = false;
  for (const Change& c : log_) {
    if (c.version > version) break;
    if (c.kind == ChangeKind::kAddEdge && c.edge == edge) exists = true;
    if (c.kind == ChangeKind::kRemoveEdge && c.edge == edge) exists = false;
  }
  return exists;
}

Result<PropertyValue> VersionedGraph::VertexPropertyAt(VertexId v,
                                                       std::string_view key,
                                                       VersionId version) const {
  UG_RETURN_NOT_OK(CheckVersion(version));
  PropertyValue result = std::monostate{};
  bool vertex_exists = false;
  for (const Change& c : log_) {
    if (c.version > version) break;
    if (c.kind == ChangeKind::kAddVertex && c.vertex == v) vertex_exists = true;
    if (c.kind == ChangeKind::kSetVertexProperty && c.vertex == v &&
        c.text == key) {
      result = c.value;
    }
  }
  if (!vertex_exists) {
    return Status::NotFound("vertex " + std::to_string(v) + " did not exist at v" +
                            std::to_string(version));
  }
  return result;
}

Result<VertexId> VersionedGraph::NumVerticesAt(VersionId version) const {
  UG_RETURN_NOT_OK(CheckVersion(version));
  VertexId count = 0;
  for (const Change& c : log_) {
    if (c.version > version) break;
    if (c.kind == ChangeKind::kAddVertex) ++count;
  }
  return count;
}

Result<EdgeList> VersionedGraph::SnapshotAt(VersionId version) const {
  UG_RETURN_NOT_OK(CheckVersion(version));
  std::vector<bool> live(edge_endpoints_.size(), false);
  VertexId vertices = 0;
  for (const Change& c : log_) {
    if (c.version > version) break;
    switch (c.kind) {
      case ChangeKind::kAddVertex: ++vertices; break;
      case ChangeKind::kAddEdge: live[c.edge] = true; break;
      case ChangeKind::kRemoveEdge: live[c.edge] = false; break;
      case ChangeKind::kSetVertexProperty: break;
    }
  }
  EdgeList el(vertices);
  for (EdgeId e = 0; e < live.size(); ++e) {
    if (live[e]) el.Add(edge_endpoints_[e].first, edge_endpoints_[e].second);
  }
  el.EnsureVertices(vertices);
  return el;
}

Result<PropertyGraph> VersionedGraph::MaterializeAt(VersionId version) const {
  UG_RETURN_NOT_OK(CheckVersion(version));
  PropertyGraph g;
  std::vector<bool> live(edge_endpoints_.size(), false);
  std::vector<const Change*> edge_adds(edge_endpoints_.size(), nullptr);
  for (const Change& c : log_) {
    if (c.version > version) break;
    switch (c.kind) {
      case ChangeKind::kAddVertex:
        g.AddVertex(c.text);
        break;
      case ChangeKind::kAddEdge:
        live[c.edge] = true;
        edge_adds[c.edge] = &c;
        break;
      case ChangeKind::kRemoveEdge:
        live[c.edge] = false;
        break;
      case ChangeKind::kSetVertexProperty:
        UG_RETURN_NOT_OK(g.SetVertexProperty(c.vertex, c.text, c.value));
        break;
    }
  }
  for (EdgeId e = 0; e < live.size(); ++e) {
    if (live[e] && edge_adds[e] != nullptr) {
      UG_RETURN_NOT_OK(
          g.AddEdge(edge_adds[e]->vertex, edge_adds[e]->other, edge_adds[e]->text)
              .status());
    }
  }
  return g;
}

Result<VersionedGraph::Diff> VersionedGraph::DiffVersions(VersionId from,
                                                          VersionId to) const {
  UG_RETURN_NOT_OK(CheckVersion(from));
  UG_RETURN_NOT_OK(CheckVersion(to));
  if (from > to) return Status::Invalid("from must be <= to");
  Diff d;
  for (const Change& c : log_) {
    if (c.version <= from || c.version > to) continue;
    switch (c.kind) {
      case ChangeKind::kAddVertex: ++d.vertices_added; break;
      case ChangeKind::kAddEdge: ++d.edges_added; break;
      case ChangeKind::kRemoveEdge: ++d.edges_removed; break;
      case ChangeKind::kSetVertexProperty: ++d.properties_changed; break;
    }
  }
  return d;
}

}  // namespace ubigraph
