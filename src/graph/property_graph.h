// PropertyGraph: labeled vertices and typed edges carrying typed properties.
// The property value types mirror Table 7c of the survey: string, numeric
// (integer + float), date/timestamp, and binary.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph {

/// Millisecond-precision timestamp, a distinct type so date-valued properties
/// are distinguishable from plain integers.
struct Timestamp {
  int64_t millis = 0;
  friend bool operator==(const Timestamp&, const Timestamp&) = default;
  friend auto operator<=>(const Timestamp&, const Timestamp&) = default;
};

using Bytes = std::vector<uint8_t>;

/// A property value. monostate means "absent".
using PropertyValue =
    std::variant<std::monostate, int64_t, double, bool, std::string, Timestamp, Bytes>;

/// Human-readable type name ("int", "string", ...).
const char* PropertyTypeName(const PropertyValue& v);

/// Interns strings to dense 32-bit ids (labels, property keys).
class StringDictionary {
 public:
  uint32_t Intern(std::string_view s);
  std::optional<uint32_t> Lookup(std::string_view s) const;
  const std::string& Name(uint32_t id) const { return names_[id]; }
  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> names_;
};

/// A directed property multigraph: vertices have one label, edges have one
/// type, both carry arbitrary key->value property maps.
class PropertyGraph {
 public:
  PropertyGraph() = default;

  /// Adds a vertex with the given label; returns its id.
  VertexId AddVertex(std::string_view label);

  /// Adds a typed directed edge; parallel edges allowed.
  Result<EdgeId> AddEdge(VertexId src, VertexId dst, std::string_view type);

  VertexId num_vertices() const { return static_cast<VertexId>(vertices_.size()); }
  uint64_t num_edges() const { return edges_.size(); }

  /// Monotone mutation counter, bumped by AddVertex/AddEdge/Set*Property.
  /// Derived snapshots (per-label CSR views, degree statistics, cached query
  /// plans) record the version they were built at and rebuild on mismatch.
  uint64_t version() const { return version_; }

  const std::string& VertexLabel(VertexId v) const;
  const std::string& EdgeType(EdgeId e) const;

  /// Dense interned ids (into labels()) of a vertex's label / an edge's type.
  uint32_t VertexLabelId(VertexId v) const { return vertices_[v].label; }
  uint32_t EdgeTypeId(EdgeId e) const { return edges_[e].type; }
  VertexId EdgeSrc(EdgeId e) const { return edges_[e].src; }
  VertexId EdgeDst(EdgeId e) const { return edges_[e].dst; }

  Status SetVertexProperty(VertexId v, std::string_view key, PropertyValue value);
  Status SetEdgeProperty(EdgeId e, std::string_view key, PropertyValue value);

  /// monostate if the vertex/edge has no such property.
  PropertyValue GetVertexProperty(VertexId v, std::string_view key) const;
  PropertyValue GetEdgeProperty(EdgeId e, std::string_view key) const;

  /// Copy-free property read by interned key id (see keys().Lookup); nullptr
  /// when the vertex has no such property. The hot path of the vectorized
  /// query filters.
  const PropertyValue* FindVertexProperty(VertexId v, uint32_t key_id) const;

  /// All (key, value) pairs of a vertex.
  std::vector<std::pair<std::string, PropertyValue>> VertexProperties(VertexId v) const;

  /// All vertex ids with the given label.
  std::vector<VertexId> VerticesWithLabel(std::string_view label) const;

  /// Out-edge ids of v, optionally filtered by edge type ("" = all).
  std::vector<EdgeId> OutEdges(VertexId v, std::string_view type = {}) const;
  std::vector<EdgeId> InEdges(VertexId v, std::string_view type = {}) const;

  uint64_t OutDegree(VertexId v) const { return vertices_[v].out.size(); }
  uint64_t InDegree(VertexId v) const { return vertices_[v].in.size(); }

  /// Topology-only snapshot (labels/properties dropped, weight from the
  /// "weight" edge property when numeric, else 1.0).
  EdgeList ToEdgeList() const;

  const StringDictionary& labels() const { return labels_; }
  const StringDictionary& keys() const { return keys_; }

 private:
  using PropertyMap = std::vector<std::pair<uint32_t, PropertyValue>>;

  struct VertexRecord {
    uint32_t label;
    PropertyMap props;
    std::vector<EdgeId> out;
    std::vector<EdgeId> in;
  };
  struct EdgeRecord {
    VertexId src;
    VertexId dst;
    uint32_t type;
    PropertyMap props;
  };

  static void SetInMap(PropertyMap* map, uint32_t key, PropertyValue value);
  static PropertyValue GetFromMap(const PropertyMap& map, uint32_t key);

  StringDictionary labels_;  // vertex labels and edge types share one dictionary
  StringDictionary keys_;
  std::vector<VertexRecord> vertices_;
  std::vector<EdgeRecord> edges_;
  uint64_t version_ = 0;
};

}  // namespace ubigraph
