// Vertex-reordering passes for the memory-locality layer (DESIGN.md "Memory
// layout and reordering"). The survey's #1 challenge is memory-bound
// scalability; on power-law graphs most kernel time is random access into
// rank/label arrays whose vertex order is accidental. Each pass here produces
// a permutation `perm` with perm[old_id] = new_id; CsrGraph::Permute(perm)
// relabels the graph and hands back the inverse mapping so callers can
// translate results to original ids.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph {

/// Which reordering pass to run. All passes are deterministic functions of
/// the graph (no RNG), so a given graph always maps to the same permutation.
enum class OrderingKind : uint8_t {
  /// Identity (the accidental input order) — the baseline the others are
  /// measured against.
  kOriginal,
  /// "Hub sort": vertices by descending out-degree, ties by ascending id.
  /// The number of times a kernel reads a vertex's per-vertex state (rank,
  /// label, distance) is proportional to its degree, so packing hubs into
  /// the first cache lines turns the hot part of a power-law working set
  /// into a few hundred KB. Best for gather/scatter kernels (PageRank, CC).
  kDegreeDescending,
  /// Reverse Cuthill-McKee: BFS from a minimum-degree root per component,
  /// neighbors visited in ascending-degree order, final order reversed.
  /// Minimizes bandwidth on mesh-like graphs; the classic choice when the
  /// graph is closer to a road network than a social network.
  kRcm,
  /// Degree-bucketed hub clustering (DBG-style grouping): vertices fall into
  /// power-of-two degree buckets, buckets ordered hot-to-cold, original id
  /// order preserved *within* a bucket. Captures most of hub sort's win
  /// while keeping any locality already present in the input order, and the
  /// bucketing pass is O(V) instead of a full sort.
  kHubCluster,
};

/// Human-readable name ("original", "hub", "rcm", "hub_cluster") for labels.
const char* OrderingKindName(OrderingKind kind);

/// Runs the selected pass; returns perm with perm[old_id] = new_id.
std::vector<VertexId> MakeOrdering(const CsrGraph& g, OrderingKind kind);

/// The individual passes (see OrderingKind for semantics).
std::vector<VertexId> DegreeDescendingOrder(const CsrGraph& g);
std::vector<VertexId> RcmOrder(const CsrGraph& g);
std::vector<VertexId> HubClusterOrder(const CsrGraph& g);

/// OK iff `perm` is a bijection on [0, n).
Status ValidatePermutation(std::span<const VertexId> perm, VertexId n);

/// inverse[perm[v]] == v; callers use the inverse (new_to_old) to translate
/// permuted-kernel output back to original vertex ids.
std::vector<VertexId> InversePermutation(std::span<const VertexId> perm);

/// Translates a per-vertex result computed on a permuted graph back to
/// original ids: out[new_to_old[nv]] = values[nv]. The round trip is exact —
/// values are moved, never recomputed — which is what makes permuted kernel
/// runs differentially testable against the unordered baseline.
template <typename T>
std::vector<T> UnpermuteValues(std::span<const VertexId> new_to_old,
                               const std::vector<T>& values) {
  std::vector<T> out(values.size());
  for (size_t nv = 0; nv < values.size(); ++nv) {
    out[new_to_old[nv]] = values[nv];
  }
  return out;
}

}  // namespace ubigraph
