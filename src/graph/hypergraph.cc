#include "graph/hypergraph.h"

#include <algorithm>

#include "algorithms/connected_components.h"

namespace ubigraph {

VertexId Hypergraph::AddVertex() {
  vertex_edges_.emplace_back();
  return static_cast<VertexId>(vertex_edges_.size() - 1);
}

Result<HyperedgeId> Hypergraph::AddHyperedge(std::span<const VertexId> members,
                                             double weight) {
  if (members.size() < 2) {
    return Status::Invalid("a hyperedge needs at least 2 members");
  }
  Hyperedge e;
  e.members.assign(members.begin(), members.end());
  std::sort(e.members.begin(), e.members.end());
  if (std::adjacent_find(e.members.begin(), e.members.end()) != e.members.end()) {
    return Status::Invalid("hyperedge members must be distinct");
  }
  for (VertexId v : e.members) {
    if (v >= vertex_edges_.size()) {
      return Status::OutOfRange("member vertex " + std::to_string(v) +
                                " out of range");
    }
  }
  e.weight = weight;
  HyperedgeId id = edges_.size();
  for (VertexId v : e.members) vertex_edges_[v].push_back(id);
  edges_.push_back(std::move(e));
  return id;
}

size_t Hypergraph::MaxEdgeSize() const {
  size_t best = 0;
  for (const Hyperedge& e : edges_) best = std::max(best, e.members.size());
  return best;
}

std::vector<VertexId> Hypergraph::Neighbors(VertexId v) const {
  std::vector<VertexId> out;
  for (HyperedgeId e : vertex_edges_[v]) {
    for (VertexId u : edges_[e].members) {
      if (u != v) out.push_back(u);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Result<CsrGraph> Hypergraph::CliqueExpansion() const {
  EdgeList el(num_vertices());
  for (const Hyperedge& e : edges_) {
    double w = e.weight / static_cast<double>(e.members.size() - 1);
    for (size_t i = 0; i < e.members.size(); ++i) {
      for (size_t j = i + 1; j < e.members.size(); ++j) {
        el.Add(e.members[i], e.members[j], w);
      }
    }
  }
  el.EnsureVertices(num_vertices());
  CsrOptions opts;
  opts.directed = false;
  return CsrGraph::FromEdges(std::move(el), opts);
}

Result<CsrGraph> Hypergraph::StarExpansion() const {
  VertexId total = num_vertices() + static_cast<VertexId>(edges_.size());
  EdgeList el(total);
  for (HyperedgeId e = 0; e < edges_.size(); ++e) {
    VertexId mock = num_vertices() + static_cast<VertexId>(e);
    for (VertexId member : edges_[e].members) {
      el.Add(mock, member, edges_[e].weight);
    }
  }
  el.EnsureVertices(total);
  CsrOptions opts;
  opts.directed = false;
  return CsrGraph::FromEdges(std::move(el), opts);
}

std::vector<uint32_t> Hypergraph::ConnectedComponents(
    uint32_t* num_components) const {
  algo::UnionFind uf(num_vertices());
  for (const Hyperedge& e : edges_) {
    for (size_t i = 1; i < e.members.size(); ++i) {
      uf.Union(e.members[0], e.members[i]);
    }
  }
  std::vector<uint32_t> label(num_vertices());
  std::vector<uint32_t> dense(num_vertices(), UINT32_MAX);
  uint32_t next = 0;
  for (VertexId v = 0; v < num_vertices(); ++v) {
    uint32_t root = static_cast<uint32_t>(uf.Find(v));
    if (dense[root] == UINT32_MAX) dense[root] = next++;
    label[v] = dense[root];
  }
  if (num_components != nullptr) *num_components = next;
  return label;
}

}  // namespace ubigraph
