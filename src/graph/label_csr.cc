#include "graph/label_csr.h"

#include <algorithm>

namespace ubigraph {

double LabelCsrView::Stats::LabelCount(uint32_t label_id) const {
  if (label_id == LabelCsrView::kAnyLabel) {
    return static_cast<double>(num_vertices);
  }
  if (label_id >= label_counts.size()) return 0.0;
  return static_cast<double>(label_counts[label_id]);
}

double LabelCsrView::Stats::AvgDegree(uint32_t label_id, uint32_t type_id,
                                      bool out) const {
  const double denom = LabelCount(label_id);
  if (denom <= 0.0) return 0.0;
  uint64_t arcs = 0;
  if (type_id == LabelCsrView::kAnyType) {
    if (label_id == LabelCsrView::kAnyLabel) {
      arcs = total_arcs;
    } else {
      const auto& by_label = out ? out_arcs_by_label : in_arcs_by_label;
      arcs = label_id < by_label.size() ? by_label[label_id] : 0;
    }
  } else {
    const auto& by_type = out ? out_arcs_by_type_label : in_arcs_by_type_label;
    if (type_id >= by_type.size()) return 0.0;
    if (label_id == LabelCsrView::kAnyLabel) {
      arcs = type_id < arcs_by_type.size() ? arcs_by_type[type_id] : 0;
    } else {
      arcs = label_id < by_type[type_id].size() ? by_type[type_id][label_id] : 0;
    }
  }
  return static_cast<double>(arcs) / denom;
}

LabelCsrView::Adjacency LabelCsrView::BuildAdjacency(
    VertexId n, std::vector<std::pair<VertexId, VertexId>> arcs) {
  Adjacency adj;
  std::sort(arcs.begin(), arcs.end());
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  adj.out_offsets.assign(n + 1, 0);
  adj.out_targets.reserve(arcs.size());
  for (const auto& [src, dst] : arcs) ++adj.out_offsets[src + 1];
  for (VertexId v = 0; v < n; ++v) adj.out_offsets[v + 1] += adj.out_offsets[v];
  for (const auto& [src, dst] : arcs) adj.out_targets.push_back(dst);

  std::sort(arcs.begin(), arcs.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second < b.second : a.first < b.first;
  });
  adj.in_offsets.assign(n + 1, 0);
  adj.in_sources.reserve(arcs.size());
  for (const auto& [src, dst] : arcs) ++adj.in_offsets[dst + 1];
  for (VertexId v = 0; v < n; ++v) adj.in_offsets[v + 1] += adj.in_offsets[v];
  for (const auto& [src, dst] : arcs) adj.in_sources.push_back(src);
  return adj;
}

LabelCsrView LabelCsrView::Build(const PropertyGraph& graph) {
  LabelCsrView view;
  view.built_version_ = graph.version();
  const VertexId n = graph.num_vertices();
  view.num_vertices_ = n;
  const size_t dict = graph.labels().size();

  view.by_label_.assign(dict, {});
  for (VertexId v = 0; v < n; ++v) {
    view.by_label_[graph.VertexLabelId(v)].push_back(v);
  }

  std::vector<std::vector<std::pair<VertexId, VertexId>>> arcs_by_type(dict);
  std::vector<std::pair<VertexId, VertexId>> all_arcs;
  all_arcs.reserve(graph.num_edges());
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    const auto arc = std::make_pair(graph.EdgeSrc(e), graph.EdgeDst(e));
    arcs_by_type[graph.EdgeTypeId(e)].push_back(arc);
    all_arcs.push_back(arc);
  }
  view.by_type_.resize(dict);
  for (size_t t = 0; t < dict; ++t) {
    if (!arcs_by_type[t].empty()) {
      view.by_type_[t] = BuildAdjacency(n, std::move(arcs_by_type[t]));
    }
  }
  view.all_ = BuildAdjacency(n, std::move(all_arcs));

  // Statistics: read the dedup'd row lengths straight off the built CSRs so
  // the estimates match the expand operators' actual work.
  Stats& st = view.stats_;
  st.num_vertices = n;
  st.label_counts.assign(dict, 0);
  for (size_t l = 0; l < dict; ++l) st.label_counts[l] = view.by_label_[l].size();
  st.out_arcs_by_type_label.assign(dict, std::vector<uint64_t>(dict, 0));
  st.in_arcs_by_type_label.assign(dict, std::vector<uint64_t>(dict, 0));
  st.arcs_by_type.assign(dict, 0);
  st.out_arcs_by_label.assign(dict, 0);
  st.in_arcs_by_label.assign(dict, 0);
  for (VertexId v = 0; v < n; ++v) {
    const uint32_t label = graph.VertexLabelId(v);
    for (size_t t = 0; t < dict; ++t) {
      const Adjacency& adj = view.by_type_[t];
      if (adj.out_offsets.empty()) continue;
      const uint64_t out_deg = adj.out_offsets[v + 1] - adj.out_offsets[v];
      const uint64_t in_deg = adj.in_offsets[v + 1] - adj.in_offsets[v];
      st.out_arcs_by_type_label[t][label] += out_deg;
      st.in_arcs_by_type_label[t][label] += in_deg;
      st.arcs_by_type[t] += out_deg;
    }
    st.out_arcs_by_label[label] += view.all_.out_offsets[v + 1] - view.all_.out_offsets[v];
    st.in_arcs_by_label[label] += view.all_.in_offsets[v + 1] - view.all_.in_offsets[v];
  }
  st.total_arcs = view.all_.out_targets.size();
  return view;
}

const LabelCsrView::Adjacency* LabelCsrView::AdjacencyFor(uint32_t type_id) const {
  if (type_id == kAnyType) return &all_;
  if (type_id >= by_type_.size()) return nullptr;
  const Adjacency& adj = by_type_[type_id];
  return adj.out_offsets.empty() ? nullptr : &adj;
}

std::span<const VertexId> LabelCsrView::OutNeighbors(VertexId v,
                                                     uint32_t type_id) const {
  const Adjacency* adj = AdjacencyFor(type_id);
  if (adj == nullptr || v >= num_vertices_) return {};
  return {adj->out_targets.data() + adj->out_offsets[v],
          adj->out_targets.data() + adj->out_offsets[v + 1]};
}

std::span<const VertexId> LabelCsrView::InNeighbors(VertexId v,
                                                    uint32_t type_id) const {
  const Adjacency* adj = AdjacencyFor(type_id);
  if (adj == nullptr || v >= num_vertices_) return {};
  return {adj->in_sources.data() + adj->in_offsets[v],
          adj->in_sources.data() + adj->in_offsets[v + 1]};
}

bool LabelCsrView::HasArc(VertexId from, VertexId to, uint32_t type_id) const {
  const auto nbrs = OutNeighbors(from, type_id);
  return std::binary_search(nbrs.begin(), nbrs.end(), to);
}

const std::vector<VertexId>& LabelCsrView::VerticesWithLabel(
    uint32_t label_id) const {
  if (label_id >= by_label_.size()) return no_vertices_;
  return by_label_[label_id];
}

}  // namespace ubigraph
