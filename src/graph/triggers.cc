#include "graph/triggers.h"

#include <algorithm>

namespace ubigraph {

size_t TriggeredGraph::RegisterTrigger(GraphEvent event, Callback callback) {
  size_t id = next_id_++;
  triggers_.push_back(Registration{id, event, std::move(callback)});
  return id;
}

bool TriggeredGraph::UnregisterTrigger(size_t id) {
  auto it = std::find_if(triggers_.begin(), triggers_.end(),
                         [id](const Registration& r) { return r.id == id; });
  if (it == triggers_.end()) return false;
  triggers_.erase(it);
  return true;
}

size_t TriggeredGraph::num_triggers() const { return triggers_.size(); }

void TriggeredGraph::Fire(const TriggerContext& context) {
  if (firing_) return;  // a trigger's own mutations do not cascade
  firing_ = true;
  for (const Registration& r : triggers_) {
    if (r.event == context.event) {
      ++fired_;
      r.callback(*this, context);
    }
  }
  firing_ = false;
}

VertexId TriggeredGraph::AddVertex(std::string_view label) {
  VertexId v = graph_.AddVertex(label);
  TriggerContext ctx;
  ctx.event = GraphEvent::kVertexAdded;
  ctx.vertex = v;
  Fire(ctx);
  return v;
}

Result<EdgeId> TriggeredGraph::AddEdge(VertexId src, VertexId dst,
                                       std::string_view type) {
  UG_ASSIGN_OR_RETURN(EdgeId e, graph_.AddEdge(src, dst, type));
  TriggerContext ctx;
  ctx.event = GraphEvent::kEdgeAdded;
  ctx.vertex = src;
  ctx.edge = e;
  Fire(ctx);
  return e;
}

Status TriggeredGraph::SetVertexProperty(VertexId v, std::string_view key,
                                         PropertyValue value) {
  PropertyValue old_value = graph_.GetVertexProperty(v, key);
  UG_RETURN_NOT_OK(graph_.SetVertexProperty(v, key, value));
  TriggerContext ctx;
  ctx.event = GraphEvent::kVertexPropertySet;
  ctx.vertex = v;
  ctx.key = std::string(key);
  ctx.new_value = &value;
  ctx.old_value = &old_value;
  Fire(ctx);
  return Status::OK();
}

Status TriggeredGraph::SetEdgeProperty(EdgeId e, std::string_view key,
                                       PropertyValue value) {
  UG_RETURN_NOT_OK(graph_.SetEdgeProperty(e, key, value));
  TriggerContext ctx;
  ctx.event = GraphEvent::kEdgePropertySet;
  ctx.edge = e;
  ctx.key = std::string(key);
  ctx.new_value = &value;
  Fire(ctx);
  return Status::OK();
}

namespace {

std::string ValueToText(const PropertyValue& v) {
  switch (v.index()) {
    case 0: return "(unset)";
    case 1: return std::to_string(std::get<int64_t>(v));
    case 2: return std::to_string(std::get<double>(v));
    case 3: return std::get<bool>(v) ? "true" : "false";
    case 4: return std::get<std::string>(v);
    case 5: return "ts:" + std::to_string(std::get<Timestamp>(v).millis);
    case 6: return "<bytes>";
  }
  return "?";
}

}  // namespace

TriggeredGraph::Callback MakeCreatedAtTrigger(std::string key,
                                              const int64_t* clock) {
  return [key, clock](TriggeredGraph& g, const TriggerContext& ctx) {
    g.SetVertexProperty(ctx.vertex, key, Timestamp{*clock}).Abort();
  };
}

TriggeredGraph::Callback MakeAuditTrigger(std::vector<std::string>* audit_log) {
  return [audit_log](TriggeredGraph&, const TriggerContext& ctx) {
    std::string line = "vertex " + std::to_string(ctx.vertex) + " " + ctx.key +
                       ": " +
                       (ctx.old_value ? ValueToText(*ctx.old_value) : "(unset)") +
                       " -> " +
                       (ctx.new_value ? ValueToText(*ctx.new_value) : "(unset)");
    audit_log->push_back(std::move(line));
  };
}

}  // namespace ubigraph
