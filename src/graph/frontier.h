// Frontier: the shared vertex-set representation for direction-optimizing
// kernels (hybrid push/pull BFS, delta PageRank, frontier-based CC). A
// frontier is logically a subset of [0, num_vertices); physically it is held
// either as a *sparse* vertex list (cheap to iterate when small — the push
// regime) or as a *dense* 64-bit-word bitmap (O(1) membership tests from any
// thread — the pull regime). Conversion in both directions is one linear
// pass and kernels flip representation as the Beamer direction heuristic
// switches modes.
//
// Concurrency contract: sparse building (Push/Append) is single-writer;
// parallel producers accumulate into per-chunk thread-local buffers and merge
// them in deterministic chunk order (see ParallelReduce), which is how the
// hybrid BFS builds its next frontier. Dense building supports concurrent
// writers through AtomicTestAndSet (a relaxed fetch_or on the word — setting
// bits is idempotent, so the resulting set is deterministic regardless of
// interleaving).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"

namespace ubigraph {

class Frontier {
 public:
  static constexpr uint64_t kWordBits = 64;

  Frontier() = default;
  explicit Frontier(VertexId num_vertices) { Reset(num_vertices); }

  /// Re-targets the frontier at a universe of `num_vertices` vertices and
  /// clears it (sparse representation). Bitmap storage is kept allocated.
  void Reset(VertexId num_vertices);

  VertexId universe() const { return num_vertices_; }
  uint64_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  bool dense() const { return dense_; }

  // --- sparse building (single writer) ---

  /// Empties the frontier and switches to the sparse representation.
  void Clear();
  /// Appends `v` to the sparse list. Caller guarantees no duplicates.
  void Push(VertexId v);
  /// Appends a batch (e.g. one merged thread-local buffer).
  void Append(std::span<const VertexId> vs);
  /// Takes ownership of a fully-built vertex list (no duplicates).
  void AdoptList(std::vector<VertexId> vs);

  /// The sparse view. Only valid while !dense().
  std::span<const VertexId> Vertices() const { return list_; }

  // --- dense building ---

  /// Empties the frontier and switches to the dense representation.
  void ClearDense();
  /// Dense frontier containing every vertex (the first round of fixpoint
  /// kernels, before any vertex has converged).
  void SetAll();
  /// Membership test (valid only while dense()).
  bool Test(VertexId v) const {
    return (bits_[v / kWordBits] >> (v % kWordBits)) & 1u;
  }
  /// Non-atomic set for single-threaded building; caller must bump the count
  /// via SetCount (bits are not recounted implicitly).
  void Set(VertexId v) { bits_[v / kWordBits] |= uint64_t{1} << (v % kWordBits); }
  /// Thread-safe set; returns true if the bit was newly set. Callers track
  /// counts locally and publish the total via SetCount.
  bool AtomicTestAndSet(VertexId v);
  /// Publishes the cardinality after a bulk dense build.
  void SetCount(uint64_t count) { count_ = count; }
  /// Recomputes the cardinality by popcounting the bitmap (after a dense
  /// build whose writers tracked no total).
  void RecountDense();

  /// Raw bitmap words (valid only while dense()); used by kernels that scan
  /// word-at-a-time.
  std::span<const uint64_t> Words() const { return bits_; }

  // --- conversion ---

  /// Sparse -> dense: scatters the vertex list into the bitmap. No-op when
  /// already dense.
  void ToDense();
  /// Dense -> sparse: rebuilds the vertex list in ascending id order. No-op
  /// when already sparse.
  void ToSparse();

 private:
  VertexId num_vertices_ = 0;
  bool dense_ = false;
  uint64_t count_ = 0;
  std::vector<VertexId> list_;   // sparse representation
  std::vector<uint64_t> bits_;   // dense representation, ceil(n/64) words
};

}  // namespace ubigraph
