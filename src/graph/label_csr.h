// Compact per-edge-type CSR adjacency + label index + degree statistics,
// snapshotted from a PropertyGraph in one pass. This is the data layout the
// vectorized Cypher executor runs on: batched expand operators read sorted,
// deduplicated neighbor ranges instead of filtering the property graph's
// per-vertex edge-id lists edge by edge, and the planner's cost model reads
// the per-(label, type) average degrees collected during the same build.
//
// The view is immutable; it records the PropertyGraph::version() it was built
// at so callers (QueryEngine, tests) can detect staleness and rebuild.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/property_graph.h"

namespace ubigraph {

class LabelCsrView {
 public:
  /// Sentinel type/label ids selecting "no constraint".
  static constexpr uint32_t kAnyType = UINT32_MAX;
  static constexpr uint32_t kAnyLabel = UINT32_MAX;

  /// Degree statistics for the planner's cost model. All arc counts are over
  /// *distinct* (src, dst) pairs per type (parallel edges collapse), matching
  /// the work the expand operators actually do.
  struct Stats {
    uint64_t num_vertices = 0;
    std::vector<uint64_t> label_counts;  // by label id in graph.labels()
    // [type id][label id]: distinct arcs of that type grouped by the label of
    // the src (out) / dst (in) endpoint.
    std::vector<std::vector<uint64_t>> out_arcs_by_type_label;
    std::vector<std::vector<uint64_t>> in_arcs_by_type_label;
    std::vector<uint64_t> arcs_by_type;
    // Any-type arcs (deduplicated across types) grouped by endpoint label.
    std::vector<uint64_t> out_arcs_by_label;
    std::vector<uint64_t> in_arcs_by_label;
    uint64_t total_arcs = 0;

    /// Number of vertices carrying the label (kAnyLabel = all vertices;
    /// out-of-range ids count 0).
    double LabelCount(uint32_t label_id) const;

    /// Average number of distinct out- (or in-) neighbors over `type_id` arcs
    /// of a vertex with the given label. 0 when the label is empty/unknown.
    double AvgDegree(uint32_t label_id, uint32_t type_id, bool out) const;
  };

  static LabelCsrView Build(const PropertyGraph& graph);

  uint64_t built_version() const { return built_version_; }
  VertexId num_vertices() const { return num_vertices_; }

  /// Sorted, deduplicated neighbors of v over arcs of the given type
  /// (kAnyType = any). Unknown/out-of-range type ids yield an empty span.
  std::span<const VertexId> OutNeighbors(VertexId v, uint32_t type_id) const;
  std::span<const VertexId> InNeighbors(VertexId v, uint32_t type_id) const;

  /// Binary-search existence probe: is there an arc from -> to of this type?
  bool HasArc(VertexId from, VertexId to, uint32_t type_id) const;

  /// Ascending vertex ids with the given label; empty for unknown ids.
  const std::vector<VertexId>& VerticesWithLabel(uint32_t label_id) const;

  const Stats& stats() const { return stats_; }

 private:
  struct Adjacency {
    std::vector<uint64_t> out_offsets;  // size V+1, or empty when unbuilt
    std::vector<VertexId> out_targets;  // sorted + dedup'd per row
    std::vector<uint64_t> in_offsets;
    std::vector<VertexId> in_sources;  // sorted + dedup'd per row
  };

  static Adjacency BuildAdjacency(VertexId n,
                                  std::vector<std::pair<VertexId, VertexId>> arcs);

  const Adjacency* AdjacencyFor(uint32_t type_id) const;

  uint64_t built_version_ = 0;
  VertexId num_vertices_ = 0;
  std::vector<Adjacency> by_type_;  // indexed by dictionary id (labels share
                                    // the dict with types; label-only entries
                                    // stay empty)
  Adjacency all_;                   // any-type arcs, dedup'd across types
  std::vector<std::vector<VertexId>> by_label_;
  std::vector<VertexId> no_vertices_;
  Stats stats_;
};

}  // namespace ubigraph
