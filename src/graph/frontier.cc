#include "graph/frontier.h"

#include <algorithm>
#include <atomic>

namespace ubigraph {

namespace {
inline uint64_t NumWords(VertexId n) {
  return (static_cast<uint64_t>(n) + Frontier::kWordBits - 1) /
         Frontier::kWordBits;
}
}  // namespace

void Frontier::Reset(VertexId num_vertices) {
  num_vertices_ = num_vertices;
  bits_.assign(NumWords(num_vertices), 0);
  Clear();
}

void Frontier::Clear() {
  dense_ = false;
  count_ = 0;
  list_.clear();
}

void Frontier::Push(VertexId v) {
  list_.push_back(v);
  ++count_;
}

void Frontier::Append(std::span<const VertexId> vs) {
  list_.insert(list_.end(), vs.begin(), vs.end());
  count_ += vs.size();
}

void Frontier::AdoptList(std::vector<VertexId> vs) {
  dense_ = false;
  list_ = std::move(vs);
  count_ = list_.size();
}

void Frontier::ClearDense() {
  dense_ = true;
  count_ = 0;
  list_.clear();
  bits_.assign(NumWords(num_vertices_), 0);
}

void Frontier::SetAll() {
  ClearDense();
  if (num_vertices_ == 0) return;
  std::fill(bits_.begin(), bits_.end(), ~uint64_t{0});
  // Mask the tail bits past num_vertices_ so ToSparse never yields ghosts.
  const unsigned tail = num_vertices_ % kWordBits;
  if (tail != 0) bits_.back() = (uint64_t{1} << tail) - 1;
  count_ = num_vertices_;
}

bool Frontier::AtomicTestAndSet(VertexId v) {
  const uint64_t mask = uint64_t{1} << (v % kWordBits);
  uint64_t prev = std::atomic_ref<uint64_t>(bits_[v / kWordBits])
                      .fetch_or(mask, std::memory_order_relaxed);
  return (prev & mask) == 0;
}

void Frontier::RecountDense() {
  uint64_t count = 0;
  for (uint64_t word : bits_) count += static_cast<uint64_t>(__builtin_popcountll(word));
  count_ = count;
}

void Frontier::ToDense() {
  if (dense_) return;
  bits_.assign(NumWords(num_vertices_), 0);
  for (VertexId v : list_) Set(v);
  list_.clear();
  dense_ = true;
}

void Frontier::ToSparse() {
  if (!dense_) return;
  list_.clear();
  list_.reserve(count_);
  for (uint64_t w = 0; w < bits_.size(); ++w) {
    uint64_t word = bits_[w];
    while (word != 0) {
      unsigned bit = static_cast<unsigned>(__builtin_ctzll(word));
      list_.push_back(static_cast<VertexId>(w * kWordBits + bit));
      word &= word - 1;
    }
  }
  count_ = list_.size();
  dense_ = false;
}

}  // namespace ubigraph
