#include "graph/csr_graph.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace ubigraph {

Result<CsrGraph> CsrGraph::FromEdges(EdgeList edges, CsrOptions options) {
  UG_RETURN_NOT_OK(edges.Validate());
  if (options.remove_self_loops) edges.RemoveSelfLoops();
  if (options.deduplicate) edges.Deduplicate();
  if (!options.directed) edges = edges.Symmetrized();

  CsrGraph g;
  g.num_vertices_ = edges.num_vertices();
  g.directed_ = options.directed;
  g.sorted_ = options.sort_neighbors;

  const auto& es = edges.edges();
  const size_t m = es.size();
  g.offsets_.assign(static_cast<size_t>(g.num_vertices_) + 1, 0);
  for (const Edge& e : es) ++g.offsets_[e.src + 1];
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  g.dst_.resize(m);
  g.weights_.resize(m);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : es) {
    uint64_t pos = cursor[e.src]++;
    g.dst_[pos] = e.dst;
    g.weights_[pos] = e.weight;
  }

  if (options.sort_neighbors) {
    for (VertexId v = 0; v < g.num_vertices_; ++v) {
      uint64_t lo = g.offsets_[v], hi = g.offsets_[v + 1];
      // Sort (dst, weight) pairs of this adjacency range together.
      std::vector<std::pair<VertexId, double>> adj;
      adj.reserve(hi - lo);
      for (uint64_t i = lo; i < hi; ++i) adj.emplace_back(g.dst_[i], g.weights_[i]);
      std::sort(adj.begin(), adj.end());
      for (uint64_t i = lo; i < hi; ++i) {
        g.dst_[i] = adj[i - lo].first;
        g.weights_[i] = adj[i - lo].second;
      }
    }
  }

  if (options.directed && options.build_in_edges) {
    g.in_offsets_.assign(static_cast<size_t>(g.num_vertices_) + 1, 0);
    for (const Edge& e : es) ++g.in_offsets_[e.dst + 1];
    std::partial_sum(g.in_offsets_.begin(), g.in_offsets_.end(),
                     g.in_offsets_.begin());
    g.in_src_.resize(m);
    std::vector<uint64_t> icursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
    for (const Edge& e : es) g.in_src_[icursor[e.dst]++] = e.src;
    if (options.sort_neighbors) {
      for (VertexId v = 0; v < g.num_vertices_; ++v) {
        std::sort(g.in_src_.begin() + static_cast<ptrdiff_t>(g.in_offsets_[v]),
                  g.in_src_.begin() + static_cast<ptrdiff_t>(g.in_offsets_[v + 1]));
      }
    }
  }

  return g;
}

Result<CsrGraph> CsrGraph::FromPairs(
    VertexId num_vertices, const std::vector<std::pair<VertexId, VertexId>>& pairs,
    CsrOptions options) {
  EdgeList el(num_vertices);
  el.Reserve(pairs.size());
  for (const auto& [s, d] : pairs) el.Add(s, d);
  el.EnsureVertices(num_vertices);
  return FromEdges(std::move(el), options);
}

uint64_t CsrGraph::InDegree(VertexId v) const {
  if (!directed_) return OutDegree(v);
  assert(!in_offsets_.empty() && "build_in_edges was not requested");
  return in_offsets_[v + 1] - in_offsets_[v];
}

std::span<const VertexId> CsrGraph::InNeighbors(VertexId v) const {
  if (!directed_) return OutNeighbors(v);
  assert(!in_offsets_.empty() && "build_in_edges was not requested");
  return {in_src_.data() + in_offsets_[v], in_src_.data() + in_offsets_[v + 1]};
}

bool CsrGraph::HasEdge(VertexId src, VertexId dst) const {
  auto nbrs = OutNeighbors(src);
  if (sorted_) return std::binary_search(nbrs.begin(), nbrs.end(), dst);
  return std::find(nbrs.begin(), nbrs.end(), dst) != nbrs.end();
}

uint64_t CsrGraph::MaxOutDegree() const {
  uint64_t best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) best = std::max(best, OutDegree(v));
  return best;
}

double CsrGraph::OutWeightSum(VertexId v) const {
  double sum = 0.0;
  for (double w : OutWeights(v)) sum += w;
  return sum;
}

EdgeList CsrGraph::ToEdgeList() const {
  EdgeList out(num_vertices_);
  out.Reserve(dst_.size());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (uint64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      out.Add(v, dst_[i], weights_[i]);
    }
  }
  out.EnsureVertices(num_vertices_);
  return out;
}

}  // namespace ubigraph
