#include "graph/csr_graph.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/parallel.h"
#include "obs/metrics.h"

namespace ubigraph {

namespace {

/// Inclusive prefix sum over `a`, block-parallel when a pool is given:
/// per-block partial sums, a serial scan of the block totals, then a
/// parallel add-back of each block's base. Integer sums are
/// order-independent, so the result matches the serial scan exactly.
void InclusiveScan(std::vector<uint64_t>& a, ThreadPool* pool) {
  const uint64_t n = a.size();
  if (pool == nullptr || n < (1u << 14)) {
    std::partial_sum(a.begin(), a.end(), a.begin());
    return;
  }
  const unsigned blocks = pool->size();
  const uint64_t per = (n + blocks - 1) / blocks;
  std::vector<uint64_t> base(blocks + 1, 0);
  for (unsigned b = 0; b < blocks; ++b) {
    const uint64_t lo = std::min<uint64_t>(b * per, n);
    const uint64_t hi = std::min<uint64_t>(lo + per, n);
    if (lo >= hi) continue;
    pool->Submit([&a, &base, b, lo, hi] {
      uint64_t sum = 0;
      for (uint64_t i = lo; i < hi; ++i) {
        sum += a[i];
        a[i] = sum;
      }
      base[b + 1] = sum;
    });
  }
  pool->Wait();
  std::partial_sum(base.begin(), base.end(), base.begin());
  for (unsigned b = 1; b < blocks; ++b) {
    const uint64_t lo = std::min<uint64_t>(b * per, n);
    const uint64_t hi = std::min<uint64_t>(lo + per, n);
    const uint64_t add = base[b];
    if (lo >= hi || add == 0) continue;
    pool->Submit([&a, lo, hi, add] {
      for (uint64_t i = lo; i < hi; ++i) a[i] += add;
    });
  }
  pool->Wait();
}

/// Shared CSR index builder. Scatters `es` into (offsets, targets[, weights])
/// keyed on src (or dst when `reverse`); `sym` additionally scatters the
/// reverse arc of every non-loop edge, which is how undirected graphs are
/// built without materializing a doubled edge list first. The output is
/// bitwise-identical at any thread count: the unsorted scatter is stable
/// (chunk-local counting sort), and the sorted path canonicalizes each
/// adjacency range after an unordered atomic scatter.
void BuildIndex(std::span<const Edge> es, VertexId n, bool sym, bool reverse,
                bool sort_lists, ThreadPool* pool,
                std::vector<uint64_t>& offsets, std::vector<VertexId>& targets,
                std::vector<double>* weights) {
  assert(!(sym && reverse) && "undirected graphs alias the out index");
  const size_t m = es.size();
  auto key = [reverse](const Edge& e) { return reverse ? e.dst : e.src; };
  auto val = [reverse](const Edge& e) { return reverse ? e.src : e.dst; };

  // Degree count. Counts are exact under relaxed atomic increments, so the
  // parallel path needs no per-thread histograms here.
  offsets.assign(static_cast<size_t>(n) + 1, 0);
  if (pool == nullptr) {
    for (const Edge& e : es) {
      ++offsets[key(e) + 1];
      if (sym && e.src != e.dst) ++offsets[e.dst + 1];
    }
  } else {
    ParallelForChunks(
        *pool, 0, m,
        [&](uint64_t b, uint64_t e) {
          for (uint64_t i = b; i < e; ++i) {
            const Edge& ed = es[i];
            std::atomic_ref<uint64_t>(offsets[key(ed) + 1])
                .fetch_add(1, std::memory_order_relaxed);
            if (sym && ed.src != ed.dst) {
              std::atomic_ref<uint64_t>(offsets[ed.dst + 1])
                  .fetch_add(1, std::memory_order_relaxed);
            }
          }
        },
        Schedule::kStatic);
  }
  InclusiveScan(offsets, pool);

  const uint64_t total = offsets[n];
  targets.resize(total);
  if (weights != nullptr) weights->resize(total);

  auto place = [&](uint64_t pos, VertexId t, double w) {
    targets[pos] = t;
    if (weights != nullptr) (*weights)[pos] = w;
  };

  if (pool == nullptr) {
    // Stable serial scatter in edge-list order (for undirected inputs the
    // reverse arc lands immediately after its forward twin, matching the
    // order a pre-symmetrized list would have produced).
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (const Edge& e : es) {
      place(cursor[key(e)]++, val(e), e.weight);
      if (sym && e.src != e.dst) place(cursor[e.dst]++, e.src, e.weight);
    }
  } else if (sort_lists) {
    // Order within each adjacency range is about to be canonicalized by the
    // sort, so a cheap unordered atomic scatter suffices.
    std::vector<uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    ParallelForChunks(
        *pool, 0, m,
        [&](uint64_t b, uint64_t e) {
          for (uint64_t i = b; i < e; ++i) {
            const Edge& ed = es[i];
            uint64_t pos = std::atomic_ref<uint64_t>(cursor[key(ed)])
                               .fetch_add(1, std::memory_order_relaxed);
            place(pos, val(ed), ed.weight);
            if (sym && ed.src != ed.dst) {
              pos = std::atomic_ref<uint64_t>(cursor[ed.dst])
                        .fetch_add(1, std::memory_order_relaxed);
              place(pos, ed.src, ed.weight);
            }
          }
        },
        Schedule::kStatic);
  } else {
    // Unsorted lists must preserve edge-list order, so run a chunked stable
    // counting sort: each worker-chunk counts its per-vertex degrees, the
    // counts are turned into per-chunk cursors, and each chunk scatters into
    // its own disjoint slots. Costs workers x V words of cursor space —
    // only paid on parallel builds of unsorted graphs.
    const unsigned chunks = pool->size();
    const uint64_t per = (m + chunks - 1) / chunks;
    std::vector<std::vector<uint64_t>> chunk_count(chunks);
    for (unsigned c = 0; c < chunks; ++c) {
      pool->Submit([&, c] {
        auto& count = chunk_count[c];
        count.assign(n, 0);
        const uint64_t lo = std::min<uint64_t>(c * per, m);
        const uint64_t hi = std::min<uint64_t>(lo + per, m);
        for (uint64_t i = lo; i < hi; ++i) {
          ++count[key(es[i])];
          if (sym && es[i].src != es[i].dst) ++count[es[i].dst];
        }
      });
    }
    pool->Wait();
    // Turn counts into absolute cursors: chunk c starts where chunk c-1's
    // share of each vertex's range ends.
    ParallelFor(*pool, 0, n, [&](uint64_t v) {
      uint64_t run = offsets[v];
      for (unsigned c = 0; c < chunks; ++c) {
        uint64_t cnt = chunk_count[c][v];
        chunk_count[c][v] = run;
        run += cnt;
      }
    });
    for (unsigned c = 0; c < chunks; ++c) {
      pool->Submit([&, c] {
        auto& cursor = chunk_count[c];
        const uint64_t lo = std::min<uint64_t>(c * per, m);
        const uint64_t hi = std::min<uint64_t>(lo + per, m);
        for (uint64_t i = lo; i < hi; ++i) {
          const Edge& ed = es[i];
          place(cursor[key(ed)]++, val(ed), ed.weight);
          if (sym && ed.src != ed.dst) place(cursor[ed.dst]++, ed.src, ed.weight);
        }
      });
    }
    pool->Wait();
  }

  if (!sort_lists) return;

  // Per-vertex neighbor sort. When every weight is identical (the common
  // unweighted case) the value array carries no information and the target
  // ranges sort directly; otherwise (dst, weight) pairs sort through a
  // per-worker scratch buffer reused across vertices instead of a fresh
  // allocation per vertex.
  bool uniform_weights = true;
  if (weights != nullptr && total > 0) {
    const double w0 = (*weights)[0];
    for (uint64_t i = 1; i < total && uniform_weights; ++i) {
      uniform_weights = (*weights)[i] == w0;
    }
  }
  auto sort_range = [&](VertexId v,
                        std::vector<std::pair<VertexId, double>>& scratch) {
    const uint64_t lo = offsets[v], hi = offsets[v + 1];
    if (hi - lo < 2) return;
    if (weights == nullptr || uniform_weights) {
      std::sort(targets.begin() + static_cast<ptrdiff_t>(lo),
                targets.begin() + static_cast<ptrdiff_t>(hi));
      return;
    }
    scratch.clear();
    for (uint64_t i = lo; i < hi; ++i) {
      scratch.emplace_back(targets[i], (*weights)[i]);
    }
    std::sort(scratch.begin(), scratch.end());
    for (uint64_t i = lo; i < hi; ++i) {
      targets[i] = scratch[i - lo].first;
      (*weights)[i] = scratch[i - lo].second;
    }
  };
  if (pool == nullptr) {
    std::vector<std::pair<VertexId, double>> scratch;
    for (VertexId v = 0; v < n; ++v) sort_range(v, scratch);
  } else {
    // Dynamic chunks load-balance the skewed per-vertex sort cost.
    ParallelForChunks(
        *pool, 0, n,
        [&](uint64_t b, uint64_t e) {
          std::vector<std::pair<VertexId, double>> scratch;
          for (uint64_t v = b; v < e; ++v) {
            sort_range(static_cast<VertexId>(v), scratch);
          }
        },
        Schedule::kDynamic);
  }
}

}  // namespace

Result<CsrGraph> CsrGraph::FromEdges(EdgeList edges, CsrOptions options) {
  UG_RETURN_NOT_OK(edges.Validate());
  if (options.remove_self_loops) edges.RemoveSelfLoops();
  if (options.deduplicate) edges.Deduplicate();

  CsrGraph g;
  g.num_vertices_ = edges.num_vertices();
  g.directed_ = options.directed;
  g.sorted_ = options.sort_neighbors;

  unsigned threads = ResolveNumThreads(options.num_threads);
  // Pool startup plus atomic scatter traffic beats the serial build only on
  // inputs large enough to amortize it, and never on a single-core host;
  // min_parallel_edges == 0 opts out of the cutoff (tests/benches that must
  // exercise the parallel path itself).
  if (threads > 1 && options.min_parallel_edges != 0 &&
      (std::thread::hardware_concurrency() < 2 ||
       edges.edges().size() < options.min_parallel_edges)) {
    threads = 1;
  }
  obs::AddCounter(
      threads > 1 ? "csr.build.path.parallel" : "csr.build.path.serial", 1);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  // Undirected graphs scatter both arc directions straight from the
  // half-edge list instead of materializing a doubled copy first.
  const std::span<const Edge> es(edges.edges());
  BuildIndex(es, g.num_vertices_, /*sym=*/!options.directed, /*reverse=*/false,
             options.sort_neighbors, pool_ptr, g.offsets_, g.dst_, &g.weights_);
  if (options.directed && options.build_in_edges) {
    BuildIndex(es, g.num_vertices_, /*sym=*/false, /*reverse=*/true,
               options.sort_neighbors, pool_ptr, g.in_offsets_, g.in_src_,
               /*weights=*/nullptr);
  }
  return g;
}

Result<CsrGraph> CsrGraph::FromPairs(
    VertexId num_vertices, const std::vector<std::pair<VertexId, VertexId>>& pairs,
    CsrOptions options) {
  // Build the edge vector directly and move it into the list (one reserve,
  // no per-edge vertex-count bookkeeping) before handing it off by move.
  std::vector<Edge> edges;
  edges.reserve(pairs.size());
  VertexId hi = num_vertices;
  for (const auto& [s, d] : pairs) {
    edges.push_back(Edge{s, d, 1.0});
    hi = std::max({hi, static_cast<VertexId>(s + 1), static_cast<VertexId>(d + 1)});
  }
  return FromEdges(EdgeList(hi, std::move(edges)), options);
}

uint64_t CsrGraph::InDegree(VertexId v) const {
  if (!directed_) return OutDegree(v);
  assert(!in_offsets_.empty() && "build_in_edges was not requested");
  return in_offsets_[v + 1] - in_offsets_[v];
}

std::span<const VertexId> CsrGraph::InNeighbors(VertexId v) const {
  if (!directed_) return OutNeighbors(v);
  assert(!in_offsets_.empty() && "build_in_edges was not requested");
  return {in_src_.data() + in_offsets_[v], in_src_.data() + in_offsets_[v + 1]};
}

Status CsrGraph::RequireInEdges(std::string_view caller) const {
  if (!directed_ || !in_offsets_.empty()) return Status::OK();
  return Status::Invalid(
      std::string(caller) +
      " requires the in-edge index on directed graphs; rebuild the CsrGraph "
      "with CsrOptions::build_in_edges = true, or force a push-only mode");
}

bool CsrGraph::HasEdge(VertexId src, VertexId dst) const {
  auto nbrs = OutNeighbors(src);
  if (sorted_) return std::binary_search(nbrs.begin(), nbrs.end(), dst);
  return std::find(nbrs.begin(), nbrs.end(), dst) != nbrs.end();
}

uint64_t CsrGraph::MaxOutDegree() const {
  uint64_t best = 0;
  for (VertexId v = 0; v < num_vertices_; ++v) best = std::max(best, OutDegree(v));
  return best;
}

double CsrGraph::OutWeightSum(VertexId v) const {
  double sum = 0.0;
  for (double w : OutWeights(v)) sum += w;
  return sum;
}

Result<PermutedCsr> CsrGraph::Permute(std::span<const VertexId> perm,
                                      PermuteOptions options) const {
  const VertexId n = num_vertices_;
  if (perm.size() != n) {
    return Status::Invalid("Permute: permutation size does not match num_vertices");
  }
  // Build the inverse while checking bijectivity in one pass.
  std::vector<VertexId> new_to_old(n);
  std::vector<uint8_t> seen(n, 0);
  for (VertexId ov = 0; ov < n; ++ov) {
    const VertexId nv = perm[ov];
    if (nv >= n || seen[nv]) {
      return Status::Invalid("Permute: permutation is not a bijection on [0, num_vertices)");
    }
    seen[nv] = 1;
    new_to_old[nv] = ov;
  }

  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  PermutedCsr out;
  CsrGraph& g = out.graph;
  g.num_vertices_ = n;
  g.directed_ = directed_;
  g.sorted_ = options.sort_neighbors;

  // Relabels one CSR index: new vertex nv inherits old vertex
  // new_to_old[nv]'s adjacency with every target rewritten through perm. The
  // per-vertex copy preserves relative neighbor order (the bitwise-
  // reproducibility contract in the header) unless a re-sort was requested.
  auto relabel_index = [&](const std::vector<uint64_t>& src_off,
                           const std::vector<VertexId>& src_tgt,
                           const std::vector<double>* src_w,
                           std::vector<uint64_t>& off,
                           std::vector<VertexId>& tgt, std::vector<double>* w) {
    off.assign(static_cast<size_t>(n) + 1, 0);
    for (VertexId nv = 0; nv < n; ++nv) {
      const VertexId ov = new_to_old[nv];
      off[nv + 1] = src_off[ov + 1] - src_off[ov];
    }
    InclusiveScan(off, pool_ptr);
    tgt.resize(src_tgt.size());
    if (w != nullptr) w->resize(src_w->size());
    auto copy_rows = [&](uint64_t b, uint64_t e) {
      std::vector<std::pair<VertexId, double>> scratch;
      for (uint64_t nv = b; nv < e; ++nv) {
        const VertexId ov = new_to_old[nv];
        const uint64_t lo = off[nv];
        uint64_t dpos = lo;
        for (uint64_t i = src_off[ov]; i < src_off[ov + 1]; ++i, ++dpos) {
          tgt[dpos] = perm[src_tgt[i]];
          if (w != nullptr) (*w)[dpos] = (*src_w)[i];
        }
        if (!options.sort_neighbors || dpos - lo < 2) continue;
        if (w == nullptr) {
          std::sort(tgt.begin() + static_cast<ptrdiff_t>(lo),
                    tgt.begin() + static_cast<ptrdiff_t>(dpos));
          continue;
        }
        scratch.clear();
        for (uint64_t i = lo; i < dpos; ++i) scratch.emplace_back(tgt[i], (*w)[i]);
        std::sort(scratch.begin(), scratch.end());
        for (uint64_t i = lo; i < dpos; ++i) {
          tgt[i] = scratch[i - lo].first;
          (*w)[i] = scratch[i - lo].second;
        }
      }
    };
    if (pool_ptr == nullptr) {
      copy_rows(0, n);
    } else {
      // Dynamic chunks load-balance the skewed per-vertex copy cost.
      ParallelForChunks(*pool_ptr, 0, n, copy_rows, Schedule::kDynamic);
    }
  };

  relabel_index(offsets_, dst_, &weights_, g.offsets_, g.dst_, &g.weights_);
  if (directed_ && !in_offsets_.empty()) {
    relabel_index(in_offsets_, in_src_, /*src_w=*/nullptr, g.in_offsets_,
                  g.in_src_, /*w=*/nullptr);
  }
  out.new_to_old = std::move(new_to_old);
  return out;
}

EdgeList CsrGraph::ToEdgeList() const {
  EdgeList out(num_vertices_);
  out.Reserve(dst_.size());
  for (VertexId v = 0; v < num_vertices_; ++v) {
    for (uint64_t i = offsets_[v]; i < offsets_[v + 1]; ++i) {
      out.Add(v, dst_[i], weights_[i]);
    }
  }
  out.EnsureVertices(num_vertices_);
  return out;
}

}  // namespace ubigraph
