// Edge and EdgeList: the construction-time representation shared by
// generators, IO readers, and graph builders.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"

namespace ubigraph {

/// Vertex identifier. 32-bit: the in-memory workbench targets graphs up to a
/// few billion edges / ~4B vertices; the binary format stores 64-bit counts so
/// the format outlives the in-memory limit.
using VertexId = uint32_t;
using EdgeId = uint64_t;

inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// A weighted directed edge (for undirected graphs, stored once; CSR
/// symmetrizes on build).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
  }
};

/// A growable list of edges plus the implied vertex-count.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}
  EdgeList(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  void Reserve(size_t n) { edges_.reserve(n); }

  /// Appends an edge, growing the vertex count to cover both endpoints.
  void Add(VertexId src, VertexId dst, double weight = 1.0);

  /// Ensures the graph has at least `n` vertices.
  void EnsureVertices(VertexId n) {
    if (n > num_vertices_) num_vertices_ = n;
  }

  VertexId num_vertices() const { return num_vertices_; }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& mutable_edges() { return edges_; }

  /// Sorts edges by (src, dst, weight) — canonical order for comparisons.
  void Sort();

  /// Removes exact duplicate (src, dst) pairs, keeping the first weight.
  /// Sorts as a side effect.
  void Deduplicate();

  /// Removes self-loops (src == dst).
  void RemoveSelfLoops();

  /// Returns a copy with src/dst swapped on every edge.
  EdgeList Reversed() const;

  /// Returns a copy with both (u,v) and (v,u) for every edge (self-loops kept
  /// once). Useful to feed an undirected graph into directed-only algorithms.
  EdgeList Symmetrized() const;

  /// Fails if any endpoint is >= num_vertices().
  Status Validate() const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace ubigraph
