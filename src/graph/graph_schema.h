// Schema & constraints — a §6.2 graph-database request (Table 19: 10): users
// want DTD/XSD-style schemas over property graphs, "e.g. enforcing that the
// graph is acyclic or that some vertices always have a certain property".
// A GraphSchema is a set of declarative rules validated against a
// PropertyGraph, reporting every violation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/property_graph.h"

namespace ubigraph {

/// What kind of property value a schema rule requires.
enum class PropertyType : uint8_t {
  kInt,
  kDouble,
  kBool,
  kString,
  kTimestamp,
  kBytes,
  kAny,  // must exist, any type
};

/// One constraint violation found during validation.
struct SchemaViolation {
  std::string rule;     // human-readable rule description
  std::string detail;   // what exactly failed
  VertexId vertex = kInvalidVertex;  // offending vertex (if applicable)
  EdgeId edge = kInvalidEdge;        // offending edge (if applicable)
};

class GraphSchema {
 public:
  /// Vertices with `label` must carry property `key` of `type`.
  GraphSchema& RequireVertexProperty(std::string label, std::string key,
                                     PropertyType type = PropertyType::kAny);

  /// Edges of `edge_type` must go from a `src_label` vertex to a `dst_label`
  /// vertex (empty = any label on that side).
  GraphSchema& RequireEdgeEndpoints(std::string edge_type, std::string src_label,
                                    std::string dst_label);

  /// Edges of `edge_type` (or all edges when empty) must form an acyclic
  /// subgraph.
  GraphSchema& RequireAcyclic(std::string edge_type = {});

  /// Vertices with `label` may have at most `max_out` outgoing edges.
  GraphSchema& LimitOutDegree(std::string label, uint64_t max_out);

  /// Property `key` must be unique among vertices with `label`.
  GraphSchema& RequireUniqueProperty(std::string label, std::string key);

  size_t num_rules() const { return rules_.size(); }

  /// Runs all rules; returns every violation (empty = conforming graph).
  std::vector<SchemaViolation> Validate(const PropertyGraph& graph) const;

  /// Convenience: true iff Validate() is empty.
  bool Conforms(const PropertyGraph& graph) const {
    return Validate(graph).empty();
  }

 private:
  enum class RuleKind : uint8_t {
    kVertexProperty,
    kEdgeEndpoints,
    kAcyclic,
    kOutDegree,
    kUniqueProperty,
  };
  struct Rule {
    RuleKind kind;
    std::string label;      // vertex label or edge type, per kind
    std::string key;        // property key / src label
    std::string extra;      // dst label
    PropertyType type = PropertyType::kAny;
    uint64_t limit = 0;
  };
  std::vector<Rule> rules_;
};

/// True if the value matches the declared type (monostate never matches).
bool MatchesPropertyType(const PropertyValue& value, PropertyType type);

}  // namespace ubigraph
