#include "gen/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace ubigraph::gen {

namespace {

uint64_t PairKey(VertexId a, VertexId b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace

Result<EdgeList> ErdosRenyi(VertexId n, uint64_t m, Rng* rng) {
  if (n < 2) return Status::Invalid("need at least 2 vertices");
  uint64_t max_edges = static_cast<uint64_t>(n) * (n - 1);
  if (m > max_edges) return Status::Invalid("too many edges requested");
  EdgeList el(n);
  el.Reserve(m);
  std::unordered_set<uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    VertexId u = static_cast<VertexId>(rng->NextBounded(n));
    VertexId v = static_cast<VertexId>(rng->NextBounded(n));
    if (u == v) continue;
    if (seen.insert(PairKey(u, v)).second) el.Add(u, v);
  }
  el.EnsureVertices(n);
  return el;
}

Result<EdgeList> ErdosRenyiGnp(VertexId n, double p, Rng* rng) {
  if (n < 2) return Status::Invalid("need at least 2 vertices");
  if (p < 0.0 || p > 1.0) return Status::Invalid("p must be in [0, 1]");
  EdgeList el(n);
  if (p == 0.0) {
    el.EnsureVertices(n);
    return el;
  }
  // Geometric skipping over the n*(n-1) ordered non-loop pairs.
  const double log1mp = std::log(1.0 - p);
  uint64_t total = static_cast<uint64_t>(n) * (n - 1);
  uint64_t idx = 0;
  bool dense = p >= 1.0;
  while (true) {
    if (!dense) {
      double r = rng->NextDouble();
      uint64_t skip = static_cast<uint64_t>(std::floor(std::log(1.0 - r) / log1mp));
      idx += skip;
    }
    if (idx >= total) break;
    VertexId u = static_cast<VertexId>(idx / (n - 1));
    VertexId rem = static_cast<VertexId>(idx % (n - 1));
    VertexId v = rem < u ? rem : rem + 1;  // skip the diagonal
    el.Add(u, v);
    ++idx;
  }
  el.EnsureVertices(n);
  return el;
}

Result<EdgeList> Rmat(uint32_t scale, uint64_t num_edges, Rng* rng,
                      RmatOptions options) {
  if (scale == 0 || scale > 30) return Status::Invalid("scale must be in [1, 30]");
  double d = 1.0 - options.a - options.b - options.c;
  if (options.a < 0 || options.b < 0 || options.c < 0 || d < 0) {
    return Status::Invalid("RMAT probabilities must be non-negative and sum <= 1");
  }
  const VertexId n = static_cast<VertexId>(1u) << scale;
  EdgeList el(n);
  el.Reserve(num_edges);

  std::vector<VertexId> perm(n);
  for (VertexId i = 0; i < n; ++i) perm[i] = i;
  if (options.scramble_ids) rng->Shuffle(&perm);

  for (uint64_t e = 0; e < num_edges; ++e) {
    VertexId src = 0, dst = 0;
    for (uint32_t bit = 0; bit < scale; ++bit) {
      double r = rng->NextDouble();
      uint32_t quadrant;
      if (r < options.a) quadrant = 0;
      else if (r < options.a + options.b) quadrant = 1;
      else if (r < options.a + options.b + options.c) quadrant = 2;
      else quadrant = 3;
      src = (src << 1) | (quadrant >> 1);
      dst = (dst << 1) | (quadrant & 1);
    }
    el.Add(perm[src], perm[dst]);
  }
  el.EnsureVertices(n);
  return el;
}

Result<EdgeList> BarabasiAlbert(VertexId n, uint32_t m, Rng* rng) {
  if (m == 0) return Status::Invalid("edges_per_vertex must be positive");
  if (n <= m) return Status::Invalid("need n > edges_per_vertex");
  EdgeList el(n);
  // Repeated-endpoint list: sampling a uniform element is sampling
  // proportionally to degree.
  std::vector<VertexId> endpoints;
  // Seed: star among the first m+1 vertices (guarantees every seed vertex has
  // degree >= 1).
  for (VertexId v = 1; v <= m; ++v) {
    el.Add(0, v);
    endpoints.push_back(0);
    endpoints.push_back(v);
  }
  for (VertexId v = m + 1; v < n; ++v) {
    std::unordered_set<VertexId> chosen;
    while (chosen.size() < m) {
      VertexId t = endpoints[rng->NextBounded(endpoints.size())];
      chosen.insert(t);
    }
    for (VertexId t : chosen) {
      el.Add(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  el.EnsureVertices(n);
  return el;
}

Result<EdgeList> WattsStrogatz(VertexId n, uint32_t k, double beta, Rng* rng) {
  if (k % 2 != 0) return Status::Invalid("k must be even");
  if (k == 0 || k >= n) return Status::Invalid("need 0 < k < n");
  if (beta < 0.0 || beta > 1.0) return Status::Invalid("beta must be in [0, 1]");
  // Ring lattice edges (u, u+j) for j in 1..k/2.
  std::unordered_set<uint64_t> edges;
  auto key = [](VertexId a, VertexId b) {
    return PairKey(std::min(a, b), std::max(a, b));
  };
  for (VertexId u = 0; u < n; ++u) {
    for (uint32_t j = 1; j <= k / 2; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      edges.insert(key(u, v));
    }
  }
  // Rewire.
  std::vector<uint64_t> all(edges.begin(), edges.end());
  for (uint64_t e : all) {
    if (!rng->NextBool(beta)) continue;
    VertexId u = static_cast<VertexId>(e >> 32);
    for (int attempt = 0; attempt < 32; ++attempt) {
      VertexId w = static_cast<VertexId>(rng->NextBounded(n));
      if (w == u) continue;
      uint64_t nk = key(u, w);
      if (edges.count(nk)) continue;
      edges.erase(e);
      edges.insert(nk);
      break;
    }
  }
  EdgeList el(n);
  el.Reserve(edges.size());
  for (uint64_t e : edges) {
    el.Add(static_cast<VertexId>(e >> 32), static_cast<VertexId>(e & 0xFFFFFFFFu));
  }
  el.EnsureVertices(n);
  return el;
}

Result<EdgeList> KRegular(VertexId n, uint32_t k, Rng* rng) {
  if (k >= n) return Status::Invalid("need k < n");
  if ((static_cast<uint64_t>(n) * k) % 2 != 0) {
    return Status::Invalid("n * k must be even");
  }
  // Pairing model: k stubs per vertex, repeatedly shuffle and pair; retry on
  // self-loop or duplicate. Converges quickly for modest k.
  std::vector<VertexId> stubs;
  stubs.reserve(static_cast<size_t>(n) * k);
  for (int attempt = 0; attempt < 200; ++attempt) {
    stubs.clear();
    for (VertexId v = 0; v < n; ++v) {
      for (uint32_t i = 0; i < k; ++i) stubs.push_back(v);
    }
    rng->Shuffle(&stubs);
    std::unordered_set<uint64_t> seen;
    bool ok = true;
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      VertexId a = stubs[i], b = stubs[i + 1];
      if (a == b) {
        ok = false;
        break;
      }
      uint64_t keyv = PairKey(std::min(a, b), std::max(a, b));
      if (!seen.insert(keyv).second) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    EdgeList el(n);
    el.Reserve(stubs.size() / 2);
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      el.Add(stubs[i], stubs[i + 1]);
    }
    el.EnsureVertices(n);
    return el;
  }
  return Status::ResourceExhausted(
      "pairing model failed to produce a simple k-regular graph");
}

Result<EdgeList> PowerLawDirected(VertexId n, double exponent, uint32_t max_degree,
                                  Rng* rng) {
  if (n < 2) return Status::Invalid("need at least 2 vertices");
  if (exponent <= 1.0) return Status::Invalid("exponent must be > 1");
  if (max_degree == 0 || max_degree >= n) {
    return Status::Invalid("need 0 < max_degree < n");
  }
  // Zipf over degrees 1..max_degree via inverse-CDF on precomputed weights.
  std::vector<double> weights(max_degree);
  for (uint32_t d = 1; d <= max_degree; ++d) {
    weights[d - 1] = std::pow(static_cast<double>(d), -exponent);
  }
  EdgeList el(n);
  for (VertexId u = 0; u < n; ++u) {
    uint32_t degree = static_cast<uint32_t>(rng->SampleWeighted(weights)) + 1;
    std::unordered_set<VertexId> targets;
    while (targets.size() < degree) {
      VertexId v = static_cast<VertexId>(rng->NextBounded(n));
      if (v != u) targets.insert(v);
    }
    for (VertexId v : targets) el.Add(u, v);
  }
  el.EnsureVertices(n);
  return el;
}

EdgeList Path(VertexId n) {
  EdgeList el(n);
  for (VertexId v = 0; v + 1 < n; ++v) el.Add(v, v + 1);
  el.EnsureVertices(n);
  return el;
}

EdgeList Cycle(VertexId n) {
  EdgeList el(n);
  for (VertexId v = 0; v < n; ++v) el.Add(v, (v + 1) % n);
  el.EnsureVertices(n);
  return el;
}

EdgeList Star(VertexId leaves) {
  EdgeList el(leaves + 1);
  for (VertexId v = 1; v <= leaves; ++v) el.Add(0, v);
  el.EnsureVertices(leaves + 1);
  return el;
}

EdgeList Complete(VertexId n) {
  EdgeList el(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) el.Add(u, v);
  }
  el.EnsureVertices(n);
  return el;
}

EdgeList Grid(VertexId rows, VertexId cols) {
  EdgeList el(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) el.Add(id(r, c), id(r, c + 1));
      if (r + 1 < rows) el.Add(id(r, c), id(r + 1, c));
    }
  }
  el.EnsureVertices(rows * cols);
  return el;
}

Result<EdgeList> RandomTree(VertexId n, Rng* rng) {
  if (n == 0) return Status::Invalid("need at least 1 vertex");
  EdgeList el(n);
  for (VertexId v = 1; v < n; ++v) {
    VertexId parent = static_cast<VertexId>(rng->NextBounded(v));
    el.Add(parent, v);
  }
  el.EnsureVertices(n);
  return el;
}

namespace {

/// Inverse-CDF sample from a power law over {lo..hi} with the given positive
/// exponent (probability ~ x^-exponent). Cumulative weights are precomputed
/// once by the caller via PowerLawCdf.
std::vector<double> PowerLawCdf(uint32_t lo, uint32_t hi, double exponent) {
  std::vector<double> cdf(hi - lo + 1);
  double total = 0.0;
  for (uint32_t x = lo; x <= hi; ++x) {
    total += std::pow(static_cast<double>(x), -exponent);
    cdf[x - lo] = total;
  }
  return cdf;
}

uint32_t SampleCdf(const std::vector<double>& cdf, uint32_t lo, Rng* rng) {
  double r = rng->NextDouble() * cdf.back();
  auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
  return lo + static_cast<uint32_t>(it - cdf.begin());
}

}  // namespace

Result<LfrGraph> LfrCommunity(VertexId n, const LfrOptions& options, Rng* rng) {
  if (n < 4) return Status::Invalid("need at least 4 vertices");
  if (options.mu < 0.0 || options.mu > 1.0) {
    return Status::Invalid("mu must be in [0, 1]");
  }
  if (options.degree_exponent <= 1.0 || options.community_exponent <= 1.0) {
    return Status::Invalid("power-law exponents must be > 1");
  }
  if (options.avg_degree < 1.0) return Status::Invalid("avg_degree must be >= 1");
  const uint32_t max_degree =
      options.max_degree != 0
          ? options.max_degree
          : std::max<uint32_t>(4, n / 8);
  if (max_degree >= n) return Status::Invalid("max_degree must be < n");
  uint32_t min_comm = std::max<uint32_t>(2, options.min_community);
  uint32_t max_comm = options.max_community != 0
                          ? options.max_community
                          : std::max<uint32_t>(min_comm, n / 4);
  if (min_comm > max_comm || min_comm > n) {
    return Status::Invalid("community size bounds are infeasible");
  }

  // Degree sequence: power-law draw, then a global rescale toward the
  // requested mean (the raw power-law mean depends on the exponent).
  std::vector<double> deg_cdf = PowerLawCdf(1, max_degree, options.degree_exponent);
  std::vector<uint32_t> degree(n);
  double raw_sum = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = SampleCdf(deg_cdf, 1, rng);
    raw_sum += degree[v];
  }
  const double scale = options.avg_degree * n / raw_sum;
  for (VertexId v = 0; v < n; ++v) {
    double d = std::floor(degree[v] * scale + 0.5);
    degree[v] = static_cast<uint32_t>(
        std::min<double>(max_degree, std::max(1.0, d)));
  }

  // Power-law community sizes covering all n vertices; the tail community is
  // merged into its predecessor when it would fall under min_comm.
  std::vector<double> comm_cdf =
      PowerLawCdf(min_comm, max_comm, options.community_exponent);
  std::vector<uint32_t> comm_size;
  uint64_t assigned = 0;
  while (assigned < n) {
    uint32_t s = SampleCdf(comm_cdf, min_comm, rng);
    if (assigned + s > n) s = static_cast<uint32_t>(n - assigned);
    comm_size.push_back(s);
    assigned += s;
  }
  if (comm_size.size() > 1 && comm_size.back() < min_comm) {
    comm_size[comm_size.size() - 2] += comm_size.back();
    comm_size.pop_back();
  }

  LfrGraph out;
  out.community.resize(n);
  std::vector<VertexId> comm_start(comm_size.size());
  {
    VertexId v = 0;
    for (size_t c = 0; c < comm_size.size(); ++c) {
      comm_start[c] = v;
      for (uint32_t i = 0; i < comm_size[c]; ++i) {
        out.community[v++] = static_cast<uint32_t>(c);
      }
    }
  }

  // Split each vertex's stubs into intra- and inter-community halves. The
  // intra share is capped by the community size (a simple graph cannot hold
  // more than |C|-1 intra neighbors).
  std::vector<uint32_t> intra_deg(n), inter_deg(n);
  for (VertexId v = 0; v < n; ++v) {
    uint32_t cap = comm_size[out.community[v]] - 1;
    uint32_t intra = static_cast<uint32_t>(
        std::floor((1.0 - options.mu) * degree[v] + 0.5));
    intra_deg[v] = std::min(intra, cap);
    inter_deg[v] = degree[v] - intra_deg[v];
  }

  EdgeList& el = out.edges;
  el.EnsureVertices(n);
  std::unordered_set<uint64_t> seen;
  auto add_edge = [&](VertexId a, VertexId b) {
    if (a == b) return;
    if (a > b) std::swap(a, b);
    if (seen.insert(PairKey(a, b)).second) el.Add(a, b);
  };

  // Intra-community edges: per-community stub pairing (configuration model;
  // clashing pairs are dropped rather than retried, so realized degrees are
  // approximate — standard for benchmark generators).
  std::vector<VertexId> stubs;
  for (size_t c = 0; c < comm_size.size(); ++c) {
    stubs.clear();
    for (uint32_t i = 0; i < comm_size[c]; ++i) {
      VertexId v = comm_start[c] + i;
      for (uint32_t s = 0; s < intra_deg[v]; ++s) stubs.push_back(v);
    }
    rng->Shuffle(&stubs);
    for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
      add_edge(stubs[i], stubs[i + 1]);
    }
  }

  // Inter-community edges: global stub pairing, skipping same-community
  // pairs (those would silently raise the realized 1-mu).
  stubs.clear();
  for (VertexId v = 0; v < n; ++v) {
    for (uint32_t s = 0; s < inter_deg[v]; ++s) stubs.push_back(v);
  }
  rng->Shuffle(&stubs);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (out.community[stubs[i]] == out.community[stubs[i + 1]]) continue;
    add_edge(stubs[i], stubs[i + 1]);
  }

  el.EnsureVertices(n);
  return out;
}

Result<EdgeList> BipartiteSkewed(VertexId left, VertexId right,
                                 uint64_t num_edges, double skew, Rng* rng) {
  if (left == 0 || right == 0) return Status::Invalid("both sides must be non-empty");
  if (skew < 0.0) return Status::Invalid("skew must be >= 0");
  const uint64_t max_edges = static_cast<uint64_t>(left) * right;
  if (num_edges > max_edges) return Status::Invalid("too many edges requested");
  const VertexId n = left + right;
  EdgeList el(n);
  el.Reserve(num_edges);
  // Zipf-over-rank cumulative weights per side (rank == vertex id; feed the
  // result through CsrGraph::Permute when id-order locality must be broken).
  std::vector<double> left_cdf(left), right_cdf(right);
  double total = 0.0;
  for (VertexId i = 0; i < left; ++i) {
    total += skew == 0.0 ? 1.0 : std::pow(static_cast<double>(i + 1), -skew);
    left_cdf[i] = total;
  }
  total = 0.0;
  for (VertexId i = 0; i < right; ++i) {
    total += skew == 0.0 ? 1.0 : std::pow(static_cast<double>(i + 1), -skew);
    right_cdf[i] = total;
  }
  auto sample = [&](const std::vector<double>& cdf) {
    double r = rng->NextDouble() * cdf.back();
    return static_cast<VertexId>(
        std::lower_bound(cdf.begin(), cdf.end(), r) - cdf.begin());
  };
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  // Bounded attempts so skewed dense requests terminate; the realized edge
  // count may then undershoot num_edges (documented in the header).
  for (uint64_t attempts = 0;
       el.num_edges() < num_edges && attempts < 20 * num_edges + 100; ++attempts) {
    VertexId u = sample(left_cdf);
    VertexId v = left + sample(right_cdf);
    if (seen.insert(PairKey(u, v)).second) el.Add(u, v);
  }
  el.EnsureVertices(n);
  return el;
}

Result<EdgeList> RoadLike(VertexId rows, VertexId cols,
                          const RoadLikeOptions& options, Rng* rng) {
  if (rows < 2 || cols < 2) return Status::Invalid("need at least a 2x2 lattice");
  if (options.keep_prob < 0.0 || options.keep_prob > 1.0 ||
      options.diagonal_prob < 0.0 || options.diagonal_prob > 1.0) {
    return Status::Invalid("probabilities must be in [0, 1]");
  }
  const uint64_t cells = static_cast<uint64_t>(rows) * cols;
  if (cells > UINT32_MAX) return Status::Invalid("lattice too large");
  EdgeList el(static_cast<VertexId>(cells));
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols && rng->NextBool(options.keep_prob)) {
        el.Add(id(r, c), id(r, c + 1));
      }
      if (r + 1 < rows && rng->NextBool(options.keep_prob)) {
        el.Add(id(r, c), id(r + 1, c));
      }
      if (r + 1 < rows && c + 1 < cols && rng->NextBool(options.diagonal_prob)) {
        el.Add(id(r, c), id(r + 1, c + 1));
      }
    }
  }
  el.EnsureVertices(static_cast<VertexId>(cells));
  return el;
}

Result<EdgeList> PlantedPartition(VertexId n, uint32_t num_communities, double p_in,
                                  double p_out, Rng* rng) {
  if (num_communities == 0 || num_communities > n) {
    return Status::Invalid("invalid community count");
  }
  if (p_in < 0 || p_in > 1 || p_out < 0 || p_out > 1) {
    return Status::Invalid("probabilities must be in [0, 1]");
  }
  const VertexId group = n / num_communities;
  EdgeList el(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      uint32_t cu = std::min(static_cast<uint32_t>(u / group), num_communities - 1);
      uint32_t cv = std::min(static_cast<uint32_t>(v / group), num_communities - 1);
      double p = cu == cv ? p_in : p_out;
      if (rng->NextBool(p)) el.Add(u, v);
    }
  }
  el.EnsureVertices(n);
  return el;
}

}  // namespace ubigraph::gen
