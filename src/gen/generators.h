// Synthetic graph generators. The survey found generators to be a valued
// non-query tool (Table 13) and §6.2 records explicit user requests for
// k-regular and random directed power-law generators — both implemented here,
// alongside the Graph500-style R-MAT generator used by the scalability bench.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::gen {

/// G(n, m): m distinct directed edges chosen uniformly (no self-loops).
Result<EdgeList> ErdosRenyi(VertexId n, uint64_t m, Rng* rng);

/// G(n, p) via geometric skipping, directed, no self-loops.
Result<EdgeList> ErdosRenyiGnp(VertexId n, double p, Rng* rng);

struct RmatOptions {
  double a = 0.57;  // Graph500 defaults
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
  bool scramble_ids = true;  // permute vertex ids to break locality
};

/// R-MAT/Kronecker generator: 2^scale vertices, `num_edges` directed edges
/// (duplicates possible, as in Graph500).
Result<EdgeList> Rmat(uint32_t scale, uint64_t num_edges, Rng* rng,
                      RmatOptions options = {});

/// Barabási-Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `edges_per_vertex` existing vertices with
/// probability proportional to degree. Undirected edge list (stored once).
Result<EdgeList> BarabasiAlbert(VertexId n, uint32_t edges_per_vertex, Rng* rng);

/// Watts-Strogatz small world: ring of n vertices, each joined to k nearest
/// neighbors, each edge rewired with probability beta. Undirected.
Result<EdgeList> WattsStrogatz(VertexId n, uint32_t k, double beta, Rng* rng);

/// Random k-regular graph via pairing-model with retry (undirected, simple).
/// Requires n*k even and k < n.
Result<EdgeList> KRegular(VertexId n, uint32_t k, Rng* rng);

/// Random *directed* power-law graph (the §6.2 user request): out-degrees
/// drawn from a Zipf distribution with the given exponent, targets uniform.
Result<EdgeList> PowerLawDirected(VertexId n, double exponent, uint32_t max_degree,
                                  Rng* rng);

/// Deterministic shapes for tests and layouts.
EdgeList Path(VertexId n);
EdgeList Cycle(VertexId n);
EdgeList Star(VertexId leaves);
EdgeList Complete(VertexId n);
EdgeList Grid(VertexId rows, VertexId cols);
Result<EdgeList> RandomTree(VertexId n, Rng* rng);

/// A planted-partition graph: `num_communities` equal groups, intra-group
/// edge probability p_in, inter-group p_out. Ground-truth labels returned via
/// out param (vertex / group_size). Undirected.
Result<EdgeList> PlantedPartition(VertexId n, uint32_t num_communities, double p_in,
                                  double p_out, Rng* rng);

// ---------------------------------------------------------------------------
// Real-world-shaped corpus generators (ROADMAP item 5 / "SoK: The Faults in
// our Graph Benchmarks"). Each is driven entirely by the caller's Rng, never
// touches the thread pool, and produces a bitwise-identical edge list for a
// fixed seed — the corpus differential and seed-stability tests depend on
// that.
// ---------------------------------------------------------------------------

struct LfrOptions {
  /// Mean of the (truncated) power-law degree sequence.
  double avg_degree = 8.0;
  /// Degree cap; 0 derives n/8. Also caps community size from below (a
  /// vertex must fit its intra-community stubs inside its community).
  uint32_t max_degree = 0;
  /// Exponent of the degree power law (tau1 in LFR; typically 2-3).
  double degree_exponent = 2.5;
  /// Exponent of the community-size power law (tau2; typically 1-2).
  double community_exponent = 1.5;
  /// Community size bounds; max 0 derives n/4.
  uint32_t min_community = 16;
  uint32_t max_community = 0;
  /// Mixing parameter: expected fraction of each vertex's edges that leave
  /// its community. 0 = pure communities, 1 = no community structure.
  double mu = 0.1;
};

/// LFR-style benchmark graph (Lancichinetti-Fortunato-Radicchi): power-law
/// degrees AND power-law community sizes with a tunable mixing fraction mu —
/// the "skewed community" shape real social/web graphs show and uniform
/// planted partitions miss. Undirected simple edge list (each edge stored
/// once) plus ground-truth community labels.
struct LfrGraph {
  EdgeList edges;
  std::vector<uint32_t> community;  // per vertex, dense ids from 0
};
Result<LfrGraph> LfrCommunity(VertexId n, const LfrOptions& options, Rng* rng);

/// Bipartite graph with Zipf-skewed degrees on both sides (user-item /
/// author-paper shape, Table 7's "bipartite" topology). Left vertices are
/// [0, left), right vertices [left, left+right); every edge goes left ->
/// right. `skew` is the Zipf exponent over per-side popularity ranks
/// (0 = uniform); duplicate picks are dropped, so the result is simple and
/// may hold slightly fewer than `num_edges` edges on dense requests.
Result<EdgeList> BipartiteSkewed(VertexId left, VertexId right,
                                 uint64_t num_edges, double skew, Rng* rng);

struct RoadLikeOptions {
  /// Probability an axis edge of the lattice is kept (roads have holes).
  double keep_prob = 0.95;
  /// Probability each cell gains one diagonal shortcut.
  double diagonal_prob = 0.05;
};

/// Road-network-like graph: a rows x cols lattice with randomly omitted
/// segments and sparse diagonal shortcuts. Bounded degree (<= 8), huge
/// diameter, no skew — the structural opposite of RMAT, and the shape where
/// direction-optimizing tricks historically lose. Undirected simple edge
/// list (each edge stored once).
Result<EdgeList> RoadLike(VertexId rows, VertexId cols,
                          const RoadLikeOptions& options, Rng* rng);

}  // namespace ubigraph::gen
