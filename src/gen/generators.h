// Synthetic graph generators. The survey found generators to be a valued
// non-query tool (Table 13) and §6.2 records explicit user requests for
// k-regular and random directed power-law generators — both implemented here,
// alongside the Graph500-style R-MAT generator used by the scalability bench.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::gen {

/// G(n, m): m distinct directed edges chosen uniformly (no self-loops).
Result<EdgeList> ErdosRenyi(VertexId n, uint64_t m, Rng* rng);

/// G(n, p) via geometric skipping, directed, no self-loops.
Result<EdgeList> ErdosRenyiGnp(VertexId n, double p, Rng* rng);

struct RmatOptions {
  double a = 0.57;  // Graph500 defaults
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
  bool scramble_ids = true;  // permute vertex ids to break locality
};

/// R-MAT/Kronecker generator: 2^scale vertices, `num_edges` directed edges
/// (duplicates possible, as in Graph500).
Result<EdgeList> Rmat(uint32_t scale, uint64_t num_edges, Rng* rng,
                      RmatOptions options = {});

/// Barabási-Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `edges_per_vertex` existing vertices with
/// probability proportional to degree. Undirected edge list (stored once).
Result<EdgeList> BarabasiAlbert(VertexId n, uint32_t edges_per_vertex, Rng* rng);

/// Watts-Strogatz small world: ring of n vertices, each joined to k nearest
/// neighbors, each edge rewired with probability beta. Undirected.
Result<EdgeList> WattsStrogatz(VertexId n, uint32_t k, double beta, Rng* rng);

/// Random k-regular graph via pairing-model with retry (undirected, simple).
/// Requires n*k even and k < n.
Result<EdgeList> KRegular(VertexId n, uint32_t k, Rng* rng);

/// Random *directed* power-law graph (the §6.2 user request): out-degrees
/// drawn from a Zipf distribution with the given exponent, targets uniform.
Result<EdgeList> PowerLawDirected(VertexId n, double exponent, uint32_t max_degree,
                                  Rng* rng);

/// Deterministic shapes for tests and layouts.
EdgeList Path(VertexId n);
EdgeList Cycle(VertexId n);
EdgeList Star(VertexId leaves);
EdgeList Complete(VertexId n);
EdgeList Grid(VertexId rows, VertexId cols);
Result<EdgeList> RandomTree(VertexId n, Rng* rng);

/// A planted-partition graph: `num_communities` equal groups, intra-group
/// edge probability p_in, inter-group p_out. Ground-truth labels returned via
/// out param (vertex / group_size). Undirected.
Result<EdgeList> PlantedPartition(VertexId n, uint32_t num_communities, double p_in,
                                  double p_out, Rng* rng);

}  // namespace ubigraph::gen
