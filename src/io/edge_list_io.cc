#include "io/edge_list_io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "io/parse_metrics.h"

namespace ubigraph::io {

namespace {

Result<EdgeList> ParseEdgeListTextImpl(const std::string& text) {
  EdgeList el;
  size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::vector<std::string> fields = SplitWhitespace(sv);
    if (fields.size() < 2 || fields.size() > 3) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected 'src dst [weight]'");
    }
    int64_t src = 0, dst = 0;
    if (!ParseInt64(fields[0], &src) || !ParseInt64(fields[1], &dst) ||
        src < 0 || dst < 0 || src > UINT32_MAX || dst > UINT32_MAX) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": invalid vertex id");
    }
    double weight = 1.0;
    if (fields.size() == 3 && !ParseDouble(fields[2], &weight)) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": invalid weight");
    }
    el.Add(static_cast<VertexId>(src), static_cast<VertexId>(dst), weight);
  }
  return el;
}

}  // namespace

Result<EdgeList> ParseEdgeListText(const std::string& text) {
  Result<EdgeList> result = ParseEdgeListTextImpl(text);
  internal::FlushParseStats("edge_list", text.size(), result.ok(),
                            result.ok() ? result->num_edges() : 0);
  return result;
}

std::string WriteEdgeListText(const EdgeList& edges) {
  std::string out;
  out += "# ubigraph edge list: " + std::to_string(edges.num_vertices()) +
         " vertices, " + std::to_string(edges.num_edges()) + " edges\n";
  for (const Edge& e : edges.edges()) {
    out += std::to_string(e.src);
    out += ' ';
    out += std::to_string(e.dst);
    if (e.weight != 1.0) {
      out += ' ';
      out += FormatDouble(e.weight, 17);
    }
    out += '\n';
  }
  return out;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return ss.str();
}

Status WriteStringToFile(const std::string& content, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadEdgeListFile(const std::string& path) {
  UG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseEdgeListText(text);
}

Status WriteEdgeListFile(const EdgeList& edges, const std::string& path) {
  return WriteStringToFile(WriteEdgeListText(edges), path);
}

}  // namespace ubigraph::io
