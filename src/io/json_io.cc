#include "io/json_io.h"

#include <map>

#include "common/strings.h"
#include "io/edge_list_io.h"
#include "io/json_value.h"

namespace ubigraph::io {

namespace {

Result<VertexId> NodeIdOf(const JsonValue& v,
                          std::map<std::string, VertexId>* id_map,
                          EdgeList* edges) {
  std::string key;
  if (v.kind == JsonValue::kNumber) key = FormatDouble(v.number, 17);
  else if (v.kind == JsonValue::kString) key = v.string;
  else return Status::ParseError("node id must be number or string");
  auto [it, inserted] = id_map->emplace(key, static_cast<VertexId>(id_map->size()));
  if (inserted) edges->EnsureVertices(static_cast<VertexId>(id_map->size()));
  return it->second;
}

}  // namespace

Result<JsonGraphDocument> ParseJsonGraph(const std::string& text) {
  UG_ASSIGN_OR_RETURN(auto root, ParseJsonValue(text));
  if (root->kind != JsonValue::kObject) {
    return Status::ParseError("top-level JSON must be an object");
  }
  JsonGraphDocument doc;
  std::map<std::string, VertexId> id_map;

  const JsonValue* dir = root->Get("directed");
  if (dir != nullptr && dir->kind == JsonValue::kBool) {
    doc.directed = dir->boolean;
  }
  const JsonValue* nodes = root->Get("nodes");
  if (nodes != nullptr && nodes->kind == JsonValue::kArray) {
    for (const auto& node : nodes->array) {
      if (node->kind != JsonValue::kObject) continue;
      const JsonValue* id = node->Get("id");
      if (id == nullptr) return Status::ParseError("node without id");
      UG_RETURN_NOT_OK(NodeIdOf(*id, &id_map, &doc.edges).status());
    }
  }
  const JsonValue* links = root->Get("links");
  if (links == nullptr) links = root->Get("edges");
  if (links != nullptr && links->kind == JsonValue::kArray) {
    for (const auto& link : links->array) {
      if (link->kind != JsonValue::kObject) {
        return Status::ParseError("link must be an object");
      }
      const JsonValue* s = link->Get("source");
      const JsonValue* t = link->Get("target");
      if (s == nullptr || t == nullptr) {
        return Status::ParseError("link without source/target");
      }
      UG_ASSIGN_OR_RETURN(VertexId src, NodeIdOf(*s, &id_map, &doc.edges));
      UG_ASSIGN_OR_RETURN(VertexId dst, NodeIdOf(*t, &id_map, &doc.edges));
      double weight = 1.0;
      const JsonValue* w = link->Get("weight");
      if (w != nullptr && w->kind == JsonValue::kNumber) weight = w->number;
      doc.edges.Add(src, dst, weight);
    }
  }
  return doc;
}

std::string WriteJsonGraph(const EdgeList& edges, bool directed) {
  std::string out = "{\n  \"directed\": ";
  out += directed ? "true" : "false";
  out += ",\n  \"nodes\": [";
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (v) out += ", ";
    out += "{\"id\": " + std::to_string(v) + "}";
  }
  out += "],\n  \"links\": [\n";
  bool first = true;
  for (const Edge& e : edges.edges()) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"source\": " + std::to_string(e.src) +
           ", \"target\": " + std::to_string(e.dst) +
           ", \"weight\": " + FormatDouble(e.weight, 17) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

Result<JsonGraphDocument> ReadJsonGraphFile(const std::string& path) {
  UG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseJsonGraph(text);
}

Status WriteJsonGraphFile(const EdgeList& edges, const std::string& path,
                          bool directed) {
  return WriteStringToFile(WriteJsonGraph(edges, directed), path);
}

}  // namespace ubigraph::io
