// GML (Graph Modelling Language) IO — Table 17's "JGF / GML / GraphML" class.
// Handles the standard graph [ node [ id N ] edge [ source A target B ] ]
// structure with optional value/weight and label attributes.
#pragma once

#include <string>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::io {

struct GmlDocument {
  EdgeList edges;
  bool directed = false;  // GML default is undirected
};

Result<GmlDocument> ParseGml(const std::string& text);
std::string WriteGml(const EdgeList& edges, bool directed = true);

Result<GmlDocument> ReadGmlFile(const std::string& path);
Status WriteGmlFile(const EdgeList& edges, const std::string& path,
                    bool directed = true);

}  // namespace ubigraph::io
