// Shared flush helper for reader instrumentation: every text parser reports
// io.<format>.bytes, io.<format>.records (on success), and
// io.<format>.parse_errors (on failure) to the global metrics registry.
// Called once per parse — no per-line overhead.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace ubigraph::io::internal {

inline void FlushParseStats(std::string_view format, size_t bytes, bool ok,
                            int64_t records) {
  if (!obs::Enabled()) return;
  std::string prefix = "io.";
  prefix += format;
  obs::AddCounter(prefix + ".bytes", static_cast<int64_t>(bytes));
  if (ok) {
    obs::AddCounter(prefix + ".records", records);
  } else {
    obs::AddCounter(prefix + ".parse_errors", 1);
  }
}

}  // namespace ubigraph::io::internal
