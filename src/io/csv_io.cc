#include "io/csv_io.h"

#include <sstream>

#include "common/strings.h"
#include "io/edge_list_io.h"
#include "io/parse_metrics.h"

namespace ubigraph::io {

Result<std::vector<std::string>> SplitCsvRecord(const std::string& line,
                                                char separator) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      if (!cur.empty()) {
        return Status::ParseError("quote in the middle of an unquoted field");
      }
      in_quotes = true;
    } else if (c == separator) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  fields.push_back(std::move(cur));
  return fields;
}

namespace {

Result<EdgeList> ParseCsvEdgesImpl(const std::string& text, CsvOptions options) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) return Status::ParseError("empty CSV document");
  if (!line.empty() && line.back() == '\r') line.pop_back();

  UG_ASSIGN_OR_RETURN(std::vector<std::string> header,
                      SplitCsvRecord(line, options.separator));
  int src_col = -1, dst_col = -1, w_col = -1;
  for (size_t i = 0; i < header.size(); ++i) {
    std::string name = ToLower(Trim(header[i]));
    if (name == ToLower(options.source_column)) src_col = static_cast<int>(i);
    else if (name == ToLower(options.target_column)) dst_col = static_cast<int>(i);
    else if (name == ToLower(options.weight_column)) w_col = static_cast<int>(i);
  }
  if (src_col < 0 || dst_col < 0) {
    return Status::ParseError("CSV header missing source/target columns");
  }

  EdgeList el;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    UG_ASSIGN_OR_RETURN(std::vector<std::string> fields,
                        SplitCsvRecord(line, options.separator));
    if (static_cast<int>(fields.size()) <= std::max(src_col, dst_col)) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": too few fields");
    }
    int64_t src = 0, dst = 0;
    if (!ParseInt64(fields[src_col], &src) || !ParseInt64(fields[dst_col], &dst) ||
        src < 0 || dst < 0 || src > UINT32_MAX || dst > UINT32_MAX) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": invalid vertex id");
    }
    double weight = 1.0;
    if (w_col >= 0 && w_col < static_cast<int>(fields.size()) &&
        !Trim(fields[w_col]).empty()) {
      if (!ParseDouble(fields[w_col], &weight)) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": invalid weight");
      }
    }
    el.Add(static_cast<VertexId>(src), static_cast<VertexId>(dst), weight);
  }
  return el;
}

}  // namespace

Result<EdgeList> ParseCsvEdges(const std::string& text, CsvOptions options) {
  Result<EdgeList> result = ParseCsvEdgesImpl(text, std::move(options));
  internal::FlushParseStats("csv", text.size(), result.ok(),
                            result.ok() ? result->num_edges() : 0);
  return result;
}

std::string WriteCsvEdges(const EdgeList& edges, CsvOptions options) {
  std::string out = options.source_column;
  out += options.separator;
  out += options.target_column;
  out += options.separator;
  out += options.weight_column;
  out += '\n';
  for (const Edge& e : edges.edges()) {
    out += std::to_string(e.src);
    out += options.separator;
    out += std::to_string(e.dst);
    out += options.separator;
    out += FormatDouble(e.weight, 17);
    out += '\n';
  }
  return out;
}

Result<EdgeList> ReadCsvFile(const std::string& path, CsvOptions options) {
  UG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCsvEdges(text, options);
}

Status WriteCsvFile(const EdgeList& edges, const std::string& path,
                    CsvOptions options) {
  return WriteStringToFile(WriteCsvEdges(edges, options), path);
}

}  // namespace ubigraph::io
