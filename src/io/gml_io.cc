#include "io/gml_io.h"

#include <unordered_map>

#include "common/strings.h"
#include "io/edge_list_io.h"
#include "io/parse_metrics.h"

namespace ubigraph::io {

namespace {

/// GML token: a bare word, a number, a quoted string, or a bracket.
struct Token {
  enum Kind { kWord, kNumber, kString, kOpen, kClose, kEnd } kind = kEnd;
  std::string text;
  double number = 0.0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<Token> Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return Token{Token::kEnd, "", 0.0};
    char c = text_[pos_];
    if (c == '[') {
      ++pos_;
      return Token{Token::kOpen, "[", 0.0};
    }
    if (c == ']') {
      ++pos_;
      return Token{Token::kClose, "]", 0.0};
    }
    if (c == '"') {
      size_t end = text_.find('"', pos_ + 1);
      if (end == std::string::npos) return Status::ParseError("unterminated string");
      Token t{Token::kString, text_.substr(pos_ + 1, end - pos_ - 1), 0.0};
      pos_ = end + 1;
      return t;
    }
    if (c == '#') {  // comment to end of line
      size_t end = text_.find('\n', pos_);
      pos_ = end == std::string::npos ? text_.size() : end + 1;
      return Next();
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_])) &&
           text_[pos_] != '[' && text_[pos_] != ']') {
      ++pos_;
    }
    std::string word = text_.substr(start, pos_ - start);
    double num = 0.0;
    if (ParseDouble(word, &num)) return Token{Token::kNumber, word, num};
    return Token{Token::kWord, word, 0.0};
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

/// Skips a balanced [...] block (the opening bracket already consumed).
Status SkipBlock(Lexer* lex) {
  int depth = 1;
  while (depth > 0) {
    UG_ASSIGN_OR_RETURN(Token t, lex->Next());
    if (t.kind == Token::kEnd) return Status::ParseError("unterminated block");
    if (t.kind == Token::kOpen) ++depth;
    if (t.kind == Token::kClose) --depth;
  }
  return Status::OK();
}

Result<GmlDocument> ParseGmlImpl(const std::string& text) {
  Lexer lex(text);
  GmlDocument doc;
  std::unordered_map<int64_t, VertexId> id_map;
  auto intern = [&](int64_t id) {
    auto [it, inserted] = id_map.emplace(id, static_cast<VertexId>(id_map.size()));
    if (inserted) doc.edges.EnsureVertices(static_cast<VertexId>(id_map.size()));
    return it->second;
  };

  // Find "graph [".
  bool found_graph = false;
  while (!found_graph) {
    UG_ASSIGN_OR_RETURN(Token t, lex.Next());
    if (t.kind == Token::kEnd) return Status::ParseError("no graph block");
    if (t.kind == Token::kWord && ToLower(t.text) == "graph") {
      UG_ASSIGN_OR_RETURN(Token open, lex.Next());
      if (open.kind != Token::kOpen) return Status::ParseError("expected [ after graph");
      found_graph = true;
    }
  }

  while (true) {
    UG_ASSIGN_OR_RETURN(Token t, lex.Next());
    if (t.kind == Token::kClose) break;
    if (t.kind == Token::kEnd) return Status::ParseError("unterminated graph block");
    if (t.kind != Token::kWord) continue;
    std::string keyword = ToLower(t.text);
    if (keyword == "directed") {
      UG_ASSIGN_OR_RETURN(Token v, lex.Next());
      doc.directed = v.kind == Token::kNumber && v.number != 0;
    } else if (keyword == "node") {
      UG_ASSIGN_OR_RETURN(Token open, lex.Next());
      if (open.kind != Token::kOpen) return Status::ParseError("expected [ after node");
      int64_t id = -1;
      int depth = 1;
      while (depth > 0) {
        UG_ASSIGN_OR_RETURN(Token nt, lex.Next());
        if (nt.kind == Token::kEnd) return Status::ParseError("unterminated node");
        if (nt.kind == Token::kOpen) { ++depth; continue; }
        if (nt.kind == Token::kClose) { --depth; continue; }
        if (depth == 1 && nt.kind == Token::kWord && ToLower(nt.text) == "id") {
          UG_ASSIGN_OR_RETURN(Token v, lex.Next());
          if (v.kind != Token::kNumber) return Status::ParseError("node id not numeric");
          id = static_cast<int64_t>(v.number);
        }
      }
      if (id < 0) return Status::ParseError("node without id");
      intern(id);
    } else if (keyword == "edge") {
      UG_ASSIGN_OR_RETURN(Token open, lex.Next());
      if (open.kind != Token::kOpen) return Status::ParseError("expected [ after edge");
      int64_t source = -1, target = -1;
      double weight = 1.0;
      int depth = 1;
      while (depth > 0) {
        UG_ASSIGN_OR_RETURN(Token et, lex.Next());
        if (et.kind == Token::kEnd) return Status::ParseError("unterminated edge");
        if (et.kind == Token::kOpen) { ++depth; continue; }
        if (et.kind == Token::kClose) { --depth; continue; }
        if (depth != 1 || et.kind != Token::kWord) continue;
        std::string field = ToLower(et.text);
        UG_ASSIGN_OR_RETURN(Token v, lex.Next());
        if (field == "source" && v.kind == Token::kNumber) {
          source = static_cast<int64_t>(v.number);
        } else if (field == "target" && v.kind == Token::kNumber) {
          target = static_cast<int64_t>(v.number);
        } else if ((field == "value" || field == "weight") &&
                   v.kind == Token::kNumber) {
          weight = v.number;
        } else if (v.kind == Token::kOpen) {
          UG_RETURN_NOT_OK(SkipBlock(&lex));
        }
      }
      if (source < 0 || target < 0) {
        return Status::ParseError("edge without source/target");
      }
      doc.edges.Add(intern(source), intern(target), weight);
    } else {
      // Unknown attribute: consume its value (scalar or block).
      UG_ASSIGN_OR_RETURN(Token v, lex.Next());
      if (v.kind == Token::kOpen) UG_RETURN_NOT_OK(SkipBlock(&lex));
    }
  }
  return doc;
}

}  // namespace

Result<GmlDocument> ParseGml(const std::string& text) {
  Result<GmlDocument> result = ParseGmlImpl(text);
  internal::FlushParseStats("gml", text.size(), result.ok(),
                            result.ok() ? result->edges.num_edges() : 0);
  return result;
}

std::string WriteGml(const EdgeList& edges, bool directed) {
  std::string out = "graph [\n";
  out += "  directed " + std::string(directed ? "1" : "0") + "\n";
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    out += "  node [ id " + std::to_string(v) + " ]\n";
  }
  for (const Edge& e : edges.edges()) {
    out += "  edge [ source " + std::to_string(e.src) + " target " +
           std::to_string(e.dst);
    if (e.weight != 1.0) out += " value " + FormatDouble(e.weight, 17);
    out += " ]\n";
  }
  out += "]\n";
  return out;
}

Result<GmlDocument> ReadGmlFile(const std::string& path) {
  UG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseGml(text);
}

Status WriteGmlFile(const EdgeList& edges, const std::string& path, bool directed) {
  return WriteStringToFile(WriteGml(edges, directed), path);
}

}  // namespace ubigraph::io
