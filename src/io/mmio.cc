#include "io/mmio.h"

#include <cctype>
#include <sstream>

#include "common/strings.h"
#include "io/edge_list_io.h"
#include "io/parse_metrics.h"

namespace ubigraph::io {

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

Status ParseErrorAt(size_t line_no, const std::string& what) {
  return Status::ParseError("line " + std::to_string(line_no) + ": " + what);
}

Result<EdgeList> ParseMatrixMarketImpl(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;

  // Banner.
  if (!std::getline(in, line)) return Status::ParseError("empty document");
  ++line_no;
  std::vector<std::string> banner = SplitWhitespace(Trim(line));
  if (banner.size() < 4 || Lower(banner[0]) != "%%matrixmarket") {
    return ParseErrorAt(line_no, "expected '%%MatrixMarket' banner");
  }
  if (Lower(banner[1]) != "matrix" || Lower(banner[2]) != "coordinate") {
    return ParseErrorAt(line_no, "only 'matrix coordinate' files are supported");
  }
  const std::string field = Lower(banner[3]);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer" && field != "double") {
    return ParseErrorAt(line_no, "unsupported field type '" + banner[3] + "'");
  }
  const std::string symmetry = banner.size() >= 5 ? Lower(banner[4]) : "general";
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    return ParseErrorAt(line_no, "unsupported symmetry '" + symmetry + "'");
  }

  // Size line: first non-comment, non-blank line.
  int64_t rows = 0, cols = 0, nnz = 0;
  bool have_size = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '%') continue;
    std::vector<std::string> fields = SplitWhitespace(sv);
    if (fields.size() != 3 || !ParseInt64(fields[0], &rows) ||
        !ParseInt64(fields[1], &cols) || !ParseInt64(fields[2], &nnz)) {
      return ParseErrorAt(line_no, "expected size line 'rows cols nnz'");
    }
    have_size = true;
    break;
  }
  if (!have_size) return Status::ParseError("missing size line");
  if (rows < 0 || cols < 0 || nnz < 0) {
    return ParseErrorAt(line_no, "negative dimension");
  }
  if (symmetric && rows != cols) {
    return ParseErrorAt(line_no, "symmetric matrix must be square");
  }
  const bool bipartite = rows != cols;
  const int64_t num_vertices = bipartite ? rows + cols : rows;
  if (num_vertices > UINT32_MAX) return ParseErrorAt(line_no, "dimensions overflow");
  if (nnz > 0 && (rows == 0 || cols == 0)) {
    return ParseErrorAt(line_no, "entries declared for an empty matrix");
  }

  EdgeList el(static_cast<VertexId>(num_vertices));
  el.Reserve(static_cast<size_t>(symmetric ? 2 * nnz : nnz));
  int64_t read = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '%') continue;
    if (read == nnz) return ParseErrorAt(line_no, "more entries than declared nnz");
    std::vector<std::string> fields = SplitWhitespace(sv);
    const size_t want = pattern ? 2 : 3;
    if (fields.size() != want) {
      return ParseErrorAt(line_no, pattern ? "expected 'i j'" : "expected 'i j value'");
    }
    int64_t i = 0, j = 0;
    if (!ParseInt64(fields[0], &i) || !ParseInt64(fields[1], &j)) {
      return ParseErrorAt(line_no, "invalid index");
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      return ParseErrorAt(line_no, "index out of range");
    }
    double value = 1.0;
    if (!pattern && !ParseDouble(fields[2], &value)) {
      return ParseErrorAt(line_no, "invalid value");
    }
    const VertexId src = static_cast<VertexId>(i - 1);
    const VertexId dst =
        static_cast<VertexId>(bipartite ? rows + (j - 1) : j - 1);
    el.Add(src, dst, value);
    if (symmetric && src != dst) el.Add(dst, src, value);
    ++read;
  }
  if (read != nnz) {
    return Status::ParseError("truncated: " + std::to_string(read) + " of " +
                              std::to_string(nnz) + " declared entries");
  }
  el.EnsureVertices(static_cast<VertexId>(num_vertices));
  return el;
}

Result<EdgeList> ParseTsvTriplesImpl(const std::string& text) {
  EdgeList el;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty()) continue;
    std::vector<std::string> fields = SplitWhitespace(sv);
    if (fields.size() != 3) {
      return ParseErrorAt(line_no, "expected 'src\\tdst\\tweight'");
    }
    int64_t src = 0, dst = 0;
    double weight = 1.0;
    if (!ParseInt64(fields[0], &src) || !ParseInt64(fields[1], &dst) ||
        !ParseDouble(fields[2], &weight)) {
      return ParseErrorAt(line_no, "invalid triple");
    }
    if (src < 1 || dst < 1 || src > UINT32_MAX || dst > UINT32_MAX) {
      return ParseErrorAt(line_no, "vertex id out of range (ids are 1-based)");
    }
    el.Add(static_cast<VertexId>(src - 1), static_cast<VertexId>(dst - 1), weight);
  }
  return el;
}

}  // namespace

Result<EdgeList> ParseMatrixMarket(const std::string& text) {
  Result<EdgeList> result = ParseMatrixMarketImpl(text);
  internal::FlushParseStats("mmio", text.size(), result.ok(),
                            result.ok() ? result->num_edges() : 0);
  return result;
}

std::string WriteMatrixMarket(const EdgeList& edges, bool pattern) {
  std::string out = "%%MatrixMarket matrix coordinate ";
  out += pattern ? "pattern" : "real";
  out += " general\n";
  out += "% written by ubigraph\n";
  const std::string n = std::to_string(edges.num_vertices());
  out += n + ' ' + n + ' ' + std::to_string(edges.num_edges()) + '\n';
  for (const Edge& e : edges.edges()) {
    out += std::to_string(e.src + 1);
    out += ' ';
    out += std::to_string(e.dst + 1);
    if (!pattern) {
      out += ' ';
      out += FormatDouble(e.weight, 17);
    }
    out += '\n';
  }
  return out;
}

Result<EdgeList> ParseTsvTriples(const std::string& text) {
  Result<EdgeList> result = ParseTsvTriplesImpl(text);
  internal::FlushParseStats("tsv", text.size(), result.ok(),
                            result.ok() ? result->num_edges() : 0);
  return result;
}

std::string WriteTsvTriples(const EdgeList& edges) {
  std::string out;
  for (const Edge& e : edges.edges()) {
    out += std::to_string(e.src + 1);
    out += '\t';
    out += std::to_string(e.dst + 1);
    out += '\t';
    out += FormatDouble(e.weight, 17);
    out += '\n';
  }
  return out;
}

Result<EdgeList> ReadMatrixMarketFile(const std::string& path) {
  UG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseMatrixMarket(text);
}

Status WriteMatrixMarketFile(const EdgeList& edges, const std::string& path,
                             bool pattern) {
  return WriteStringToFile(WriteMatrixMarket(edges, pattern), path);
}

}  // namespace ubigraph::io
