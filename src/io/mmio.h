// Matrix Market / GraphChallenge ingest ("MMIO-style triples"). The
// GraphChallenge datasets (graphchallenge.org, PAPERS.md) ship each graph as
// a MatrixMarket coordinate file (.mmio) and an equivalent bare
// tab-separated triple file (.tsv); both are parsed here into the shared
// EdgeList representation so every kernel and test can run on public
// datasets end-to-end.
//
// Supported MatrixMarket subset (the family graph datasets actually use):
//   %%MatrixMarket matrix coordinate <real|integer|pattern> <general|symmetric>
// '%' comment lines, one "rows cols nnz" size line, then nnz data lines
// "i j [value]" with 1-based indices. Square matrices map to vertex ids
// [0, rows); rectangular matrices are read as bipartite graphs (column j
// becomes vertex rows + j - 1). Symmetric files mirror every off-diagonal
// entry. Anything else — complex/array banners, out-of-range or non-positive
// ids, missing values, too few/many data lines — is a clean ParseError
// (never a crash; wired into tests/fuzz_smoke_test.cc).
#pragma once

#include <string>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::io {

/// Parses MatrixMarket coordinate text into an edge list (entry (i, j, v)
/// becomes edge i-1 -> j-1 with weight v; pattern files get weight 1).
Result<EdgeList> ParseMatrixMarket(const std::string& text);

/// Serializes an edge list as a general coordinate file (1-based ids,
/// "real" field; `pattern` drops the values). Square by construction:
/// rows = cols = num_vertices.
std::string WriteMatrixMarket(const EdgeList& edges, bool pattern = false);

/// GraphChallenge TSV triples: one "src<TAB>dst<TAB>weight" line per edge,
/// 1-based ids, no header or comments. (Spaces are tolerated as separators;
/// the official files are tab-separated.)
Result<EdgeList> ParseTsvTriples(const std::string& text);

/// Serializes an edge list in GraphChallenge TSV form (1-based, weight
/// column always present, 1 for unweighted edges).
std::string WriteTsvTriples(const EdgeList& edges);

/// File wrappers.
Result<EdgeList> ReadMatrixMarketFile(const std::string& path);
Status WriteMatrixMarketFile(const EdgeList& edges, const std::string& path,
                             bool pattern = false);

}  // namespace ubigraph::io
