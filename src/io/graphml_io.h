// GraphML IO (Table 17 "JGF / GML / GraphML"): a pragmatic reader/writer for
// the GraphML subset produced by the survey's tools (node/edge elements,
// a weight key, directed/undirected attribute). Not a validating XML parser.
#pragma once

#include <string>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::io {

struct GraphMlDocument {
  EdgeList edges;
  bool directed = true;
};

/// Parses a GraphML document (the <node>/<edge> subset; ids may be arbitrary
/// strings, mapped to dense vertex ids in first-appearance order).
Result<GraphMlDocument> ParseGraphMl(const std::string& text);

/// Serializes as GraphML with a weight key on edges.
std::string WriteGraphMl(const EdgeList& edges, bool directed = true);

Result<GraphMlDocument> ReadGraphMlFile(const std::string& path);
Status WriteGraphMlFile(const EdgeList& edges, const std::string& path,
                        bool directed = true);

}  // namespace ubigraph::io
