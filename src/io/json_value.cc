#include "io/json_value.h"

#include <cctype>

#include "common/strings.h"

namespace ubigraph::io {

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind != kObject) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : it->second.get();
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<std::shared_ptr<JsonValue>> Parse() {
    UG_ASSIGN_OR_RETURN(auto v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing content");
    return v;
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::ParseError("JSON at offset " + std::to_string(pos_) + ": " + why);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<std::shared_ptr<JsonValue>> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    char c = text_[pos_];
    auto v = std::make_shared<JsonValue>();
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      UG_ASSIGN_OR_RETURN(v->string, ParseString());
      v->kind = JsonValue::kString;
      return v;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v->kind = JsonValue::kBool;
      v->boolean = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v->kind = JsonValue::kBool;
      v->boolean = false;
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      v->kind = JsonValue::kNull;
      return v;
    }
    size_t start = pos_;
    if (c == '-' || c == '+') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    double num = 0.0;
    if (pos_ == start || !ParseDouble(text_.substr(start, pos_ - start), &num)) {
      return Fail("invalid number");
    }
    v->kind = JsonValue::kNumber;
    v->number = num;
    return v;
  }

  Result<std::string> ParseString() {
    if (text_[pos_] != '"') return Fail("expected string");
    ++pos_;
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("bad escape");
        char esc = text_[pos_];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("bad unicode escape");
            unsigned value = 0;
            for (int k = 1; k <= 4; ++k) {
              char h = text_[pos_ + k];
              value <<= 4;
              if (h >= '0' && h <= '9') value |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') value |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') value |= static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad unicode escape");
            }
            out += value < 128 ? static_cast<char>(value) : '?';
            pos_ += 4;
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++pos_;
      } else {
        out += c;
        ++pos_;
      }
    }
    if (pos_ >= text_.size()) return Fail("unterminated string");
    ++pos_;
    return out;
  }

  Result<std::shared_ptr<JsonValue>> ParseObject() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::kObject;
    ++pos_;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWs();
      UG_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      UG_ASSIGN_OR_RETURN(auto val, ParseValue());
      v->object[key] = val;
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return v;
      }
      return Fail("expected ',' or '}'");
    }
  }

  Result<std::shared_ptr<JsonValue>> ParseArray() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::kArray;
    ++pos_;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      UG_ASSIGN_OR_RETURN(auto elem, ParseValue());
      v->array.push_back(elem);
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return v;
      }
      return Fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::shared_ptr<JsonValue>> ParseJsonValue(const std::string& text) {
  JsonParser parser(text);
  return parser.Parse();
}

}  // namespace ubigraph::io
