// A small JSON document model + recursive-descent parser shared by the JSON
// node-link and JGF readers. Not a general-purpose JSON library: good enough
// for graph interchange documents, no external dependencies.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"

namespace ubigraph::io {

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  JsonArray array;
  JsonObject object;

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const;
};

/// Parses a complete JSON document.
Result<std::shared_ptr<JsonValue>> ParseJsonValue(const std::string& text);

}  // namespace ubigraph::io
