#include "io/graphml_io.h"

#include <unordered_map>

#include "common/strings.h"
#include "io/edge_list_io.h"
#include "io/parse_metrics.h"

namespace ubigraph::io {

namespace {

/// Minimal XML tag scanner: yields (tag_name, attributes, is_closing,
/// self_closing, body_until_close) for the tags we care about.
struct TagScanner {
  const std::string& text;
  size_t pos = 0;

  /// Finds the next tag; returns false at end of input.
  bool Next(std::string* name, std::unordered_map<std::string, std::string>* attrs,
            bool* closing, bool* self_closing) {
    size_t open = text.find('<', pos);
    while (open != std::string::npos &&
           (text.compare(open, 4, "<!--") == 0 || text.compare(open, 2, "<?") == 0)) {
      // Skip comments and processing instructions.
      size_t end = text.compare(open, 4, "<!--") == 0 ? text.find("-->", open)
                                                      : text.find("?>", open);
      if (end == std::string::npos) return false;
      open = text.find('<', end);
    }
    if (open == std::string::npos) return false;
    size_t close = text.find('>', open);
    if (close == std::string::npos) return false;
    std::string_view inner(text.data() + open + 1, close - open - 1);
    pos = close + 1;

    *closing = !inner.empty() && inner[0] == '/';
    if (*closing) inner.remove_prefix(1);
    *self_closing = !inner.empty() && inner.back() == '/';
    if (*self_closing) inner.remove_suffix(1);

    size_t name_end = 0;
    while (name_end < inner.size() &&
           !std::isspace(static_cast<unsigned char>(inner[name_end]))) {
      ++name_end;
    }
    *name = std::string(inner.substr(0, name_end));
    attrs->clear();
    size_t i = name_end;
    while (i < inner.size()) {
      while (i < inner.size() && std::isspace(static_cast<unsigned char>(inner[i]))) {
        ++i;
      }
      size_t eq = inner.find('=', i);
      if (eq == std::string_view::npos) break;
      std::string key(Trim(inner.substr(i, eq - i)));
      size_t q1 = inner.find_first_of("\"'", eq);
      if (q1 == std::string_view::npos) break;
      char quote = inner[q1];
      size_t q2 = inner.find(quote, q1 + 1);
      if (q2 == std::string_view::npos) break;
      (*attrs)[key] = std::string(inner.substr(q1 + 1, q2 - q1 - 1));
      i = q2 + 1;
    }
    return true;
  }

  /// Text between the current position and the next '<'.
  std::string BodyText() {
    size_t next = text.find('<', pos);
    if (next == std::string::npos) next = text.size();
    std::string out = text.substr(pos, next - pos);
    return out;
  }
};

std::string XmlUnescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out += s[i];
      continue;
    }
    if (s.compare(i, 5, "&amp;") == 0) { out += '&'; i += 4; }
    else if (s.compare(i, 4, "&lt;") == 0) { out += '<'; i += 3; }
    else if (s.compare(i, 4, "&gt;") == 0) { out += '>'; i += 3; }
    else if (s.compare(i, 6, "&quot;") == 0) { out += '"'; i += 5; }
    else if (s.compare(i, 6, "&apos;") == 0) { out += '\''; i += 5; }
    else out += s[i];
  }
  return out;
}

Result<GraphMlDocument> ParseGraphMlImpl(const std::string& text) {
  GraphMlDocument doc;
  std::unordered_map<std::string, VertexId> id_map;
  auto intern = [&](const std::string& id) {
    auto [it, inserted] = id_map.emplace(id, static_cast<VertexId>(id_map.size()));
    if (inserted) doc.edges.EnsureVertices(static_cast<VertexId>(id_map.size()));
    return it->second;
  };

  // The weight key id (e.g. <key id="w" attr.name="weight" for="edge"/>).
  std::string weight_key;
  TagScanner scanner{text};
  std::string name;
  std::unordered_map<std::string, std::string> attrs;
  bool closing = false, self_closing = false;
  bool in_edge = false;
  VertexId cur_src = 0, cur_dst = 0;
  double cur_weight = 1.0;
  bool saw_graph = false;
  std::string pending_data_key;

  while (scanner.Next(&name, &attrs, &closing, &self_closing)) {
    if (closing) {
      if (name == "edge" && in_edge) {
        doc.edges.Add(cur_src, cur_dst, cur_weight);
        in_edge = false;
      }
      continue;
    }
    if (name == "key") {
      auto an = attrs.find("attr.name");
      auto id = attrs.find("id");
      if (an != attrs.end() && id != attrs.end() &&
          ToLower(an->second) == "weight") {
        weight_key = id->second;
      }
    } else if (name == "graph") {
      saw_graph = true;
      auto ed = attrs.find("edgedefault");
      if (ed != attrs.end()) doc.directed = ed->second != "undirected";
    } else if (name == "node") {
      auto id = attrs.find("id");
      if (id == attrs.end()) return Status::ParseError("node without id");
      intern(XmlUnescape(id->second));
    } else if (name == "edge") {
      auto s = attrs.find("source");
      auto t = attrs.find("target");
      if (s == attrs.end() || t == attrs.end()) {
        return Status::ParseError("edge without source/target");
      }
      cur_src = intern(XmlUnescape(s->second));
      cur_dst = intern(XmlUnescape(t->second));
      cur_weight = 1.0;
      if (self_closing) {
        doc.edges.Add(cur_src, cur_dst, cur_weight);
      } else {
        in_edge = true;
      }
    } else if (name == "data" && in_edge && !self_closing) {
      auto key = attrs.find("key");
      pending_data_key = key != attrs.end() ? key->second : "";
      if (pending_data_key == weight_key || weight_key.empty()) {
        std::string body = scanner.BodyText();
        double w = 1.0;
        if (ParseDouble(Trim(body), &w) && pending_data_key == weight_key) {
          cur_weight = w;
        }
      }
    }
  }
  if (!saw_graph) return Status::ParseError("no <graph> element found");
  return doc;
}

}  // namespace

Result<GraphMlDocument> ParseGraphMl(const std::string& text) {
  Result<GraphMlDocument> result = ParseGraphMlImpl(text);
  internal::FlushParseStats("graphml", text.size(), result.ok(),
                            result.ok() ? result->edges.num_edges() : 0);
  return result;
}

std::string WriteGraphMl(const EdgeList& edges, bool directed) {
  std::string out;
  out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n";
  out += "  <key id=\"w\" for=\"edge\" attr.name=\"weight\" attr.type=\"double\"/>\n";
  out += "  <graph id=\"G\" edgedefault=\"";
  out += directed ? "directed" : "undirected";
  out += "\">\n";
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    out += "    <node id=\"n" + std::to_string(v) + "\"/>\n";
  }
  for (const Edge& e : edges.edges()) {
    out += "    <edge source=\"n" + std::to_string(e.src) + "\" target=\"n" +
           std::to_string(e.dst) + "\">";
    out += "<data key=\"w\">" + FormatDouble(e.weight, 17) + "</data>";
    out += "</edge>\n";
  }
  out += "  </graph>\n</graphml>\n";
  return out;
}

Result<GraphMlDocument> ReadGraphMlFile(const std::string& path) {
  UG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseGraphMl(text);
}

Status WriteGraphMlFile(const EdgeList& edges, const std::string& path,
                        bool directed) {
  return WriteStringToFile(WriteGraphMl(edges, directed), path);
}

}  // namespace ubigraph::io
