#include "io/binary_io.h"

#include <cstring>

#include "common/crc32.h"
#include "io/edge_list_io.h"

namespace ubigraph::io {

namespace {

constexpr char kMagic[4] = {'U', 'B', 'G', 'F'};
constexpr uint8_t kFlagWeights = 1;

template <typename T>
void AppendPod(std::string* out, T value) {
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  out->append(buf, sizeof(T));
}

template <typename T>
bool ReadPod(const std::string& data, size_t* pos, T* out) {
  if (*pos + sizeof(T) > data.size()) return false;
  std::memcpy(out, data.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

}  // namespace

std::string WriteBinaryGraph(const EdgeList& edges, BinaryWriteOptions options) {
  bool all_unit = true;
  for (const Edge& e : edges.edges()) {
    if (e.weight != 1.0) {
      all_unit = false;
      break;
    }
  }
  bool write_weights = !(options.elide_unit_weights && all_unit);

  std::string out;
  out.append(kMagic, 4);
  AppendPod<uint32_t>(&out, kBinaryFormatVersion);
  AppendPod<uint64_t>(&out, edges.num_vertices());
  AppendPod<uint64_t>(&out, edges.num_edges());
  AppendPod<uint8_t>(&out, write_weights ? kFlagWeights : 0);
  for (const Edge& e : edges.edges()) {
    AppendPod<uint32_t>(&out, e.src);
    AppendPod<uint32_t>(&out, e.dst);
    if (write_weights) AppendPod<double>(&out, e.weight);
  }
  AppendPod<uint32_t>(&out, Crc32(out.data(), out.size()));
  return out;
}

Result<EdgeList> ParseBinaryGraph(const std::string& data) {
  if (data.size() < 4 + 4 + 8 + 8 + 1 + 4) {
    return Status::Corruption("binary graph too short");
  }
  if (std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::Corruption("bad magic; not a ubigraph binary file");
  }
  // Verify checksum over everything but the trailing CRC.
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, data.data() + data.size() - 4, 4);
  uint32_t actual_crc = Crc32(data.data(), data.size() - 4);
  if (stored_crc != actual_crc) {
    return Status::Corruption("checksum mismatch: file corrupted");
  }

  size_t pos = 4;
  uint32_t version = 0;
  uint64_t num_vertices = 0, num_edges = 0;
  uint8_t flags = 0;
  if (!ReadPod(data, &pos, &version)) return Status::Corruption("truncated header");
  if (version != kBinaryFormatVersion) {
    return Status::Invalid("unsupported format version " + std::to_string(version));
  }
  if (!ReadPod(data, &pos, &num_vertices) || !ReadPod(data, &pos, &num_edges) ||
      !ReadPod(data, &pos, &flags)) {
    return Status::Corruption("truncated header");
  }
  if (num_vertices > UINT32_MAX) {
    return Status::Invalid("vertex count exceeds in-memory 32-bit limit");
  }
  bool has_weights = (flags & kFlagWeights) != 0;
  size_t edge_size = has_weights ? 16 : 8;
  if (pos + num_edges * edge_size + 4 != data.size()) {
    return Status::Corruption("edge payload size mismatch");
  }

  EdgeList el(static_cast<VertexId>(num_vertices));
  el.Reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t src = 0, dst = 0;
    double weight = 1.0;
    ReadPod(data, &pos, &src);
    ReadPod(data, &pos, &dst);
    if (has_weights) ReadPod(data, &pos, &weight);
    if (src >= num_vertices || dst >= num_vertices) {
      return Status::Corruption("edge endpoint out of declared range");
    }
    el.Add(src, dst, weight);
  }
  el.EnsureVertices(static_cast<VertexId>(num_vertices));
  return el;
}

Result<EdgeList> ReadBinaryFile(const std::string& path) {
  UG_ASSIGN_OR_RETURN(std::string data, ReadFileToString(path));
  return ParseBinaryGraph(data);
}

Status WriteBinaryFile(const EdgeList& edges, const std::string& path,
                       BinaryWriteOptions options) {
  return WriteStringToFile(WriteBinaryGraph(edges, options), path);
}

}  // namespace ubigraph::io
