// CSV edge IO (Table 17): RFC-4180-ish parsing with quoted fields, a header
// row, and configurable column names.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::io {

struct CsvOptions {
  std::string source_column = "source";
  std::string target_column = "target";
  std::string weight_column = "weight";  // optional in the data
  char separator = ',';
};

/// Parses a CSV document with a header row into an edge list.
Result<EdgeList> ParseCsvEdges(const std::string& text, CsvOptions options = {});

/// Serializes edges as CSV with a header row.
std::string WriteCsvEdges(const EdgeList& edges, CsvOptions options = {});

/// Low-level: splits one CSV record honoring quotes. Exposed for tests.
Result<std::vector<std::string>> SplitCsvRecord(const std::string& line,
                                                char separator);

Result<EdgeList> ReadCsvFile(const std::string& path, CsvOptions options = {});
Status WriteCsvFile(const EdgeList& edges, const std::string& path,
                    CsvOptions options = {});

}  // namespace ubigraph::io
