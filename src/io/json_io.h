// JSON graph IO (Table 17 "XML / JSON"): the node-link format used by
// NetworkX/d3 — {"directed": bool, "nodes": [{"id": N}], "links":
// [{"source": A, "target": B, "weight": W}]}.
#pragma once

#include <string>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::io {

struct JsonGraphDocument {
  EdgeList edges;
  bool directed = true;
};

Result<JsonGraphDocument> ParseJsonGraph(const std::string& text);
std::string WriteJsonGraph(const EdgeList& edges, bool directed = true);

Result<JsonGraphDocument> ReadJsonGraphFile(const std::string& path);
Status WriteJsonGraphFile(const EdgeList& edges, const std::string& path,
                          bool directed = true);

}  // namespace ubigraph::io
