#include "io/jgf_io.h"

#include <map>

#include "common/strings.h"
#include "io/edge_list_io.h"
#include "io/json_value.h"
#include "io/parse_metrics.h"

namespace ubigraph::io {

namespace {

Result<JgfDocument> ParseJgfImpl(const std::string& text) {
  UG_ASSIGN_OR_RETURN(auto root, ParseJsonValue(text));
  const JsonValue* graph = root->Get("graph");
  if (graph == nullptr || graph->kind != JsonValue::kObject) {
    return Status::ParseError("JGF document must contain a \"graph\" object");
  }
  JgfDocument doc;
  const JsonValue* dir = graph->Get("directed");
  if (dir != nullptr && dir->kind == JsonValue::kBool) doc.directed = dir->boolean;
  const JsonValue* label = graph->Get("label");
  if (label != nullptr && label->kind == JsonValue::kString) {
    doc.label = label->string;
  }

  std::map<std::string, VertexId> id_map;
  auto intern = [&](const std::string& id) {
    auto [it, inserted] = id_map.emplace(id, static_cast<VertexId>(id_map.size()));
    if (inserted) doc.edges.EnsureVertices(static_cast<VertexId>(id_map.size()));
    return it->second;
  };

  // JGF nodes are an object keyed by node id.
  const JsonValue* nodes = graph->Get("nodes");
  if (nodes != nullptr) {
    if (nodes->kind != JsonValue::kObject) {
      return Status::ParseError("JGF \"nodes\" must be an object keyed by id");
    }
    for (const auto& [id, body] : nodes->object) {
      (void)body;
      intern(id);
    }
  }

  const JsonValue* edges = graph->Get("edges");
  if (edges != nullptr) {
    if (edges->kind != JsonValue::kArray) {
      return Status::ParseError("JGF \"edges\" must be an array");
    }
    for (const auto& edge : edges->array) {
      if (edge->kind != JsonValue::kObject) {
        return Status::ParseError("JGF edge must be an object");
      }
      const JsonValue* s = edge->Get("source");
      const JsonValue* t = edge->Get("target");
      if (s == nullptr || t == nullptr || s->kind != JsonValue::kString ||
          t->kind != JsonValue::kString) {
        return Status::ParseError("JGF edge needs string source/target");
      }
      double weight = 1.0;
      const JsonValue* meta = edge->Get("metadata");
      if (meta != nullptr) {
        const JsonValue* w = meta->Get("weight");
        if (w != nullptr && w->kind == JsonValue::kNumber) weight = w->number;
      }
      doc.edges.Add(intern(s->string), intern(t->string), weight);
    }
  }
  return doc;
}

}  // namespace

Result<JgfDocument> ParseJgf(const std::string& text) {
  Result<JgfDocument> result = ParseJgfImpl(text);
  internal::FlushParseStats("jgf", text.size(), result.ok(),
                            result.ok() ? result->edges.num_edges() : 0);
  return result;
}

std::string WriteJgf(const EdgeList& edges, bool directed,
                     const std::string& label) {
  // Node ids are zero-padded so the JGF nodes object (which readers iterate
  // in lexicographic key order) round-trips to the same dense numbering.
  int width = 1;
  for (VertexId n = edges.num_vertices(); n >= 10; n /= 10) ++width;
  auto node_id = [width](VertexId v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "n%0*u", width, v);
    return std::string(buf);
  };
  std::string out = "{\n  \"graph\": {\n    \"directed\": ";
  out += directed ? "true" : "false";
  out += ",\n    \"label\": \"" + JsonEscape(label) + "\",\n    \"nodes\": {";
  for (VertexId v = 0; v < edges.num_vertices(); ++v) {
    if (v) out += ", ";
    out += "\"" + node_id(v) + "\": {}";
  }
  out += "},\n    \"edges\": [\n";
  bool first = true;
  for (const Edge& e : edges.edges()) {
    if (!first) out += ",\n";
    first = false;
    out += "      {\"source\": \"" + node_id(e.src) + "\", \"target\": \"" +
           node_id(e.dst) + "\"";
    if (e.weight != 1.0) {
      out += ", \"metadata\": {\"weight\": " + FormatDouble(e.weight, 17) + "}";
    }
    out += "}";
  }
  out += "\n    ]\n  }\n}\n";
  return out;
}

Result<JgfDocument> ReadJgfFile(const std::string& path) {
  UG_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseJgf(text);
}

Status WriteJgfFile(const EdgeList& edges, const std::string& path,
                    bool directed) {
  return WriteStringToFile(WriteJgf(edges, directed), path);
}

}  // namespace ubigraph::io
