// Versioned binary graph format (Table 17 "Binary") with CRC32 integrity:
//
//   [magic "UBGF"] [u32 version] [u64 num_vertices] [u64 num_edges]
//   [u8 flags] [edges: (u32 src, u32 dst, f64 weight) * num_edges]
//   [u32 crc32 of everything above]
//
// All integers little-endian. flags bit 0: weights present (when clear,
// edges are (u32, u32) pairs and weight 1.0 is implied).
#pragma once

#include <string>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::io {

inline constexpr uint32_t kBinaryFormatVersion = 1;

struct BinaryWriteOptions {
  /// Omit weights when every edge weighs 1.0 (smaller files).
  bool elide_unit_weights = true;
};

/// Serializes to the binary format.
std::string WriteBinaryGraph(const EdgeList& edges, BinaryWriteOptions options = {});

/// Parses the binary format, verifying magic, version, and checksum.
Result<EdgeList> ParseBinaryGraph(const std::string& data);

Result<EdgeList> ReadBinaryFile(const std::string& path);
Status WriteBinaryFile(const EdgeList& edges, const std::string& path,
                       BinaryWriteOptions options = {});

}  // namespace ubigraph::io
