// Plain-text edge list IO ("CSV / Text files" in Table 17): one edge per
// line, "src dst [weight]", '#' comments, blank lines ignored.
#pragma once

#include <string>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::io {

/// Parses edge-list text. Vertex ids must be non-negative integers.
Result<EdgeList> ParseEdgeListText(const std::string& text);

/// Serializes an edge list (weights written only when != 1).
std::string WriteEdgeListText(const EdgeList& edges);

/// File wrappers.
Result<EdgeList> ReadEdgeListFile(const std::string& path);
Status WriteEdgeListFile(const EdgeList& edges, const std::string& path);

/// Shared helpers for the other IO modules.
Result<std::string> ReadFileToString(const std::string& path);
Status WriteStringToFile(const std::string& content, const std::string& path);

}  // namespace ubigraph::io
