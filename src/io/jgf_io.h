// JGF (JSON Graph Format) IO — the remaining member of Table 17's
// "JGF / GML / GraphML" class:
//   {"graph": {"directed": bool, "label": "...",
//              "nodes": {"<id>": {"label": "..."}, ...},
//              "edges": [{"source": "<id>", "target": "<id>"}, ...]}}
#pragma once

#include <string>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::io {

struct JgfDocument {
  EdgeList edges;
  bool directed = true;
  std::string label;
};

Result<JgfDocument> ParseJgf(const std::string& text);
std::string WriteJgf(const EdgeList& edges, bool directed = true,
                     const std::string& label = "graph");

Result<JgfDocument> ReadJgfFile(const std::string& path);
Status WriteJgfFile(const EdgeList& edges, const std::string& path,
                    bool directed = true);

}  // namespace ubigraph::io
