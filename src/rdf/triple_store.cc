#include "rdf/triple_store.h"

#include <algorithm>
#include <functional>
#include <map>

namespace ubigraph::rdf {

namespace {

bool SpoLess(const Triple& a, const Triple& b) {
  if (a.subject != b.subject) return a.subject < b.subject;
  if (a.predicate != b.predicate) return a.predicate < b.predicate;
  return a.object < b.object;
}
bool PosLess(const Triple& a, const Triple& b) {
  if (a.predicate != b.predicate) return a.predicate < b.predicate;
  if (a.object != b.object) return a.object < b.object;
  return a.subject < b.subject;
}
bool OspLess(const Triple& a, const Triple& b) {
  if (a.object != b.object) return a.object < b.object;
  if (a.subject != b.subject) return a.subject < b.subject;
  return a.predicate < b.predicate;
}

bool IsVariable(const std::string& term) {
  return !term.empty() && term[0] == '?';
}

}  // namespace

TermId TripleStore::Intern(std::string_view term) {
  auto it = term_index_.find(std::string(term));
  if (it != term_index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  term_index_.emplace(terms_.back(), id);
  return id;
}

std::optional<TermId> TripleStore::Lookup(std::string_view term) const {
  auto it = term_index_.find(std::string(term));
  if (it == term_index_.end()) return std::nullopt;
  return it->second;
}

void TripleStore::EnsureSorted() const {
  if (sorted_) return;
  std::sort(spo_.begin(), spo_.end(), SpoLess);
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess);
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess);
  sorted_ = true;
}

bool TripleStore::AddIds(TermId s, TermId p, TermId o) {
  EnsureSorted();
  Triple t{s, p, o};
  auto it = std::lower_bound(spo_.begin(), spo_.end(), t, SpoLess);
  if (it != spo_.end() && *it == t) return false;
  spo_.push_back(t);
  pos_.push_back(t);
  osp_.push_back(t);
  sorted_ = false;
  ++size_;
  return true;
}

bool TripleStore::Add(std::string_view s, std::string_view p, std::string_view o) {
  return AddIds(Intern(s), Intern(p), Intern(o));
}

bool TripleStore::Remove(std::string_view s, std::string_view p,
                         std::string_view o) {
  auto si = Lookup(s);
  auto pi = Lookup(p);
  auto oi = Lookup(o);
  if (!si || !pi || !oi) return false;
  EnsureSorted();
  Triple t{*si, *pi, *oi};
  auto match = [&](std::vector<Triple>* vec, auto less) {
    auto it = std::lower_bound(vec->begin(), vec->end(), t, less);
    if (it != vec->end() && *it == t) {
      vec->erase(it);
      return true;
    }
    return false;
  };
  bool removed = match(&spo_, SpoLess);
  if (removed) {
    match(&pos_, PosLess);
    match(&osp_, OspLess);
    --size_;
  }
  return removed;
}

bool TripleStore::Contains(std::string_view s, std::string_view p,
                           std::string_view o) const {
  auto si = Lookup(s);
  auto pi = Lookup(p);
  auto oi = Lookup(o);
  if (!si || !pi || !oi) return false;
  EnsureSorted();
  Triple t{*si, *pi, *oi};
  auto it = std::lower_bound(spo_.begin(), spo_.end(), t, SpoLess);
  return it != spo_.end() && *it == t;
}

std::vector<Triple> TripleStore::Match(const TriplePattern& pattern) const {
  EnsureSorted();
  const bool s = pattern.subject != kInvalidTerm;
  const bool p = pattern.predicate != kInvalidTerm;
  const bool o = pattern.object != kInvalidTerm;

  auto scan_range = [&](const std::vector<Triple>& index, const Triple& lo_key,
                        auto less) {
    std::vector<Triple> out;
    auto it = std::lower_bound(index.begin(), index.end(), lo_key, less);
    for (; it != index.end(); ++it) {
      if (s && it->subject != pattern.subject && (&index == &spo_)) break;
      if (p && it->predicate != pattern.predicate && (&index == &pos_)) break;
      if (o && it->object != pattern.object && (&index == &osp_)) break;
      if (s && it->subject != pattern.subject) continue;
      if (p && it->predicate != pattern.predicate) continue;
      if (o && it->object != pattern.object) continue;
      out.push_back(*it);
    }
    return out;
  };

  if (s) {
    // SPO index: prefix (s) or (s, p).
    Triple lo{pattern.subject, p ? pattern.predicate : 0, 0};
    return scan_range(spo_, lo, SpoLess);
  }
  if (p) {
    Triple lo{0, pattern.predicate, o ? pattern.object : 0};
    return scan_range(pos_, lo, PosLess);
  }
  if (o) {
    Triple lo{0, 0, pattern.object};
    return scan_range(osp_, lo, OspLess);
  }
  return spo_;  // full scan
}

Result<std::vector<std::vector<TermId>>> TripleStore::Query(
    const std::vector<PatternAtom>& atoms,
    std::vector<std::string>* variables_out) const {
  if (atoms.empty()) return Status::Invalid("empty pattern");
  EnsureSorted();

  // Collect variables in first-appearance order.
  std::vector<std::string> variables;
  auto var_index = [&](const std::string& name) -> size_t {
    for (size_t i = 0; i < variables.size(); ++i) {
      if (variables[i] == name) return i;
    }
    variables.push_back(name);
    return variables.size() - 1;
  };

  struct CompiledAtom {
    // For each position: either a constant TermId or a variable slot.
    TermId constant[3] = {kInvalidTerm, kInvalidTerm, kInvalidTerm};
    int variable[3] = {-1, -1, -1};
    size_t estimated = 0;  // selectivity estimate (matching triples unbound)
  };
  std::vector<CompiledAtom> compiled(atoms.size());
  for (size_t i = 0; i < atoms.size(); ++i) {
    const std::string* fields[3] = {&atoms[i].subject, &atoms[i].predicate,
                                    &atoms[i].object};
    TriplePattern probe;
    TermId* probe_slots[3] = {&probe.subject, &probe.predicate, &probe.object};
    for (int k = 0; k < 3; ++k) {
      if (IsVariable(*fields[k])) {
        compiled[i].variable[k] = static_cast<int>(var_index(*fields[k]));
      } else {
        auto id = Lookup(*fields[k]);
        // Unknown constant: no solutions at all.
        if (!id) {
          if (variables_out) *variables_out = variables;
          return std::vector<std::vector<TermId>>{};
        }
        compiled[i].constant[k] = *id;
        *probe_slots[k] = *id;
      }
    }
    compiled[i].estimated = Match(probe).size();
  }

  // Greedy join order: most selective first, then prefer atoms sharing a
  // bound variable.
  std::vector<size_t> order;
  std::vector<bool> used(atoms.size(), false);
  std::vector<bool> bound(variables.size(), false);
  for (size_t step = 0; step < atoms.size(); ++step) {
    size_t best = SIZE_MAX;
    bool best_connected = false;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      bool connected = false;
      for (int k = 0; k < 3; ++k) {
        if (compiled[i].variable[k] >= 0 && bound[compiled[i].variable[k]]) {
          connected = true;
        }
      }
      if (best == SIZE_MAX ||
          (connected && !best_connected) ||
          (connected == best_connected &&
           compiled[i].estimated < compiled[best].estimated)) {
        best = i;
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (int k = 0; k < 3; ++k) {
      if (compiled[best].variable[k] >= 0) bound[compiled[best].variable[k]] = true;
    }
  }

  // Nested-loop evaluation.
  std::vector<std::vector<TermId>> results;
  std::vector<TermId> binding(variables.size(), kInvalidTerm);

  std::function<void(size_t)> eval = [&](size_t depth) {
    if (depth == order.size()) {
      results.push_back(binding);
      return;
    }
    const CompiledAtom& atom = compiled[order[depth]];
    TriplePattern probe;
    TermId* probe_slots[3] = {&probe.subject, &probe.predicate, &probe.object};
    for (int k = 0; k < 3; ++k) {
      if (atom.variable[k] >= 0) {
        TermId b = binding[atom.variable[k]];
        if (b != kInvalidTerm) *probe_slots[k] = b;
      } else {
        *probe_slots[k] = atom.constant[k];
      }
    }
    for (const Triple& t : Match(probe)) {
      TermId values[3] = {t.subject, t.predicate, t.object};
      // Bind free variables; check repeated-variable consistency.
      int newly_bound[3] = {-1, -1, -1};
      bool ok = true;
      for (int k = 0; k < 3 && ok; ++k) {
        if (atom.variable[k] < 0) continue;
        TermId& slot = binding[atom.variable[k]];
        if (slot == kInvalidTerm) {
          slot = values[k];
          newly_bound[k] = atom.variable[k];
        } else if (slot != values[k]) {
          ok = false;
        }
      }
      if (ok) eval(depth + 1);
      for (int k = 0; k < 3; ++k) {
        if (newly_bound[k] >= 0) binding[newly_bound[k]] = kInvalidTerm;
      }
    }
  };
  eval(0);

  if (variables_out) *variables_out = variables;
  return results;
}

std::vector<TermId> TripleStore::DistinctPredicates() const {
  EnsureSorted();
  std::vector<TermId> out;
  for (const Triple& t : pos_) {
    if (out.empty() || out.back() != t.predicate) out.push_back(t.predicate);
  }
  return out;
}

}  // namespace ubigraph::rdf
