#include "rdf/ntriples.h"

#include <sstream>

#include "common/strings.h"
#include "io/edge_list_io.h"

namespace ubigraph::rdf {

namespace {

/// Reads one term starting at *pos; returns the raw term text (IRI without
/// brackets, literal without quotes).
Result<std::string> ReadTerm(const std::string& line, size_t* pos, size_t line_no) {
  while (*pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[*pos]))) {
    ++*pos;
  }
  if (*pos >= line.size()) {
    return Status::ParseError("line " + std::to_string(line_no) + ": missing term");
  }
  char c = line[*pos];
  if (c == '<') {
    size_t end = line.find('>', *pos);
    if (end == std::string::npos) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": unterminated IRI");
    }
    std::string term = line.substr(*pos + 1, end - *pos - 1);
    *pos = end + 1;
    return term;
  }
  if (c == '"') {
    std::string out;
    size_t i = *pos + 1;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        char esc = line[i + 1];
        switch (esc) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          default: out += esc;
        }
        i += 2;
      } else {
        out += line[i];
        ++i;
      }
    }
    if (i >= line.size()) {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": unterminated literal");
    }
    *pos = i + 1;
    // Skip optional datatype/lang suffix (^^<...> or @lang).
    while (*pos < line.size() && line[*pos] != ' ' && line[*pos] != '\t' &&
           line[*pos] != '.') {
      ++*pos;
    }
    return "\"" + out + "\"";
  }
  // Bare token (blank node _:x or plain word).
  size_t start = *pos;
  while (*pos < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[*pos]))) {
    ++*pos;
  }
  std::string tok = line.substr(start, *pos - start);
  if (tok == ".") {
    return Status::ParseError("line " + std::to_string(line_no) + ": missing term");
  }
  return tok;
}

}  // namespace

Result<size_t> ParseNTriples(const std::string& text, TripleStore* store) {
  if (store == nullptr) return Status::Invalid("store must not be null");
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  size_t added = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    size_t pos = 0;
    UG_ASSIGN_OR_RETURN(std::string s, ReadTerm(line, &pos, line_no));
    UG_ASSIGN_OR_RETURN(std::string p, ReadTerm(line, &pos, line_no));
    UG_ASSIGN_OR_RETURN(std::string o, ReadTerm(line, &pos, line_no));
    // Require the trailing dot.
    std::string_view rest = Trim(std::string_view(line).substr(pos));
    if (rest.empty() || rest[0] != '.') {
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected terminating '.'");
    }
    if (store->Add(s, p, o)) ++added;
  }
  return added;
}

std::string WriteNTriples(const TripleStore& store) {
  std::string out;
  auto write_term = [&](TermId id) {
    const std::string& t = store.TermName(id);
    if (!t.empty() && t[0] == '"') {
      out += t;  // literal already quoted
    } else {
      out += '<';
      out += t;
      out += '>';
    }
  };
  for (const Triple& t : store.Match(TriplePattern{})) {
    write_term(t.subject);
    out += ' ';
    write_term(t.predicate);
    out += ' ';
    write_term(t.object);
    out += " .\n";
  }
  return out;
}

Result<size_t> LoadNTriplesFile(const std::string& path, TripleStore* store) {
  UG_ASSIGN_OR_RETURN(std::string text, io::ReadFileToString(path));
  return ParseNTriples(text, store);
}

Status SaveNTriplesFile(const TripleStore& store, const std::string& path) {
  return io::WriteStringToFile(WriteNTriples(store), path);
}

}  // namespace ubigraph::rdf
