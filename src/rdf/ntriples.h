// N-Triples-style parsing/serialization for the TripleStore:
//   <subject> <predicate> <object> .
//   <subject> <predicate> "literal" .
// Comments (#) and blank lines allowed. This is the line-oriented subset
// sufficient for data exchange with the survey's RDF engines.
#pragma once

#include <string>

#include "common/result.h"
#include "rdf/triple_store.h"

namespace ubigraph::rdf {

/// Parses N-Triples text into the store. Returns number of triples added
/// (duplicates not counted).
Result<size_t> ParseNTriples(const std::string& text, TripleStore* store);

/// Serializes the full store as N-Triples. IRIs are terms starting with a
/// scheme-ish prefix or wrapped in <>; everything else becomes a literal.
std::string WriteNTriples(const TripleStore& store);

Result<size_t> LoadNTriplesFile(const std::string& path, TripleStore* store);
Status SaveNTriplesFile(const TripleStore& store, const std::string& path);

}  // namespace ubigraph::rdf
