// In-memory RDF triple store — the survey's "RDF engine" product class
// (Table 1: Jena, Virtuoso, Sparksee; Table 12: 16 participants query RDF).
// Dictionary-encoded terms with SPO/POS/OSP sorted indexes, single-pattern
// lookups, and multi-pattern (SPARQL basic-graph-pattern) join queries.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace ubigraph::rdf {

/// Dense id of a dictionary-encoded RDF term (IRI or literal).
using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = UINT32_MAX;

struct Triple {
  TermId subject;
  TermId predicate;
  TermId object;
  friend bool operator==(const Triple&, const Triple&) = default;
};

/// A triple pattern: kInvalidTerm means "variable".
struct TriplePattern {
  TermId subject = kInvalidTerm;
  TermId predicate = kInvalidTerm;
  TermId object = kInvalidTerm;
};

/// A basic-graph-pattern atom with named variables. Terms starting with '?'
/// are variables; anything else is a constant term.
struct PatternAtom {
  std::string subject;
  std::string predicate;
  std::string object;
};

class TripleStore {
 public:
  TripleStore() = default;

  /// Interns a term string; idempotent.
  TermId Intern(std::string_view term);
  std::optional<TermId> Lookup(std::string_view term) const;
  const std::string& TermName(TermId id) const { return terms_[id]; }
  size_t num_terms() const { return terms_.size(); }

  /// Adds a triple (terms interned on the fly). Duplicates ignored.
  /// Returns true if the triple was new.
  bool Add(std::string_view s, std::string_view p, std::string_view o);
  bool AddIds(TermId s, TermId p, TermId o);

  /// Removes a triple if present; returns true if removed.
  bool Remove(std::string_view s, std::string_view p, std::string_view o);

  size_t num_triples() const { return size_; }
  bool Contains(std::string_view s, std::string_view p, std::string_view o) const;

  /// All triples matching the pattern, using the best index for the bound
  /// positions. Results in index order.
  std::vector<Triple> Match(const TriplePattern& pattern) const;

  /// Basic-graph-pattern query: returns one row per solution, each row maps
  /// the variable order in `variables_out` to term ids. Nested-loop join with
  /// pattern reordering by estimated selectivity.
  Result<std::vector<std::vector<TermId>>> Query(
      const std::vector<PatternAtom>& atoms,
      std::vector<std::string>* variables_out) const;

  /// All distinct subjects / predicates / objects.
  std::vector<TermId> DistinctPredicates() const;

 private:
  enum IndexKind { kSpo, kPos, kOsp };

  /// Rebuilds sort order lazily before reads if needed.
  void EnsureSorted() const;

  std::vector<std::string> terms_;
  std::unordered_map<std::string, TermId> term_index_;

  // Three orderings of the same triple set, lazily sorted.
  mutable std::vector<Triple> spo_;
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  mutable bool sorted_ = true;
  size_t size_ = 0;
};

}  // namespace ubigraph::rdf
