// Result<T>: a value-or-Status, the return type of fallible factories.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace ubigraph {

/// Holds either a T or a non-OK Status. Construction from an OK status is a
/// programming error (there would be no value to return).
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; OK() when this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// The contained value; must only be called when ok().
  const T& ValueUnsafe() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& ValueUnsafe() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& ValueUnsafe() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value or aborts with the status message.
  T ValueOrDie() && {
    if (!ok()) status().Abort();
    return std::get<T>(std::move(repr_));
  }
  const T& ValueOrDie() const& {
    if (!ok()) status().Abort();
    return std::get<T>(repr_);
  }

  const T& operator*() const& { return ValueUnsafe(); }
  T& operator*() & { return ValueUnsafe(); }
  const T* operator->() const { return &ValueUnsafe(); }
  T* operator->() { return &ValueUnsafe(); }

  /// Returns the value, or `alternative` on error.
  T ValueOr(T alternative) const& { return ok() ? ValueUnsafe() : std::move(alternative); }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace ubigraph
