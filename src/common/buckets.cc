#include "common/buckets.h"

#include <algorithm>

namespace ubigraph {

void BucketStructure::Insert(uint64_t b, VertexId v) {
  b = std::max(b, cursor_);
  if (b >= buckets_.size()) buckets_.resize(b + 1);
  buckets_[b].push_back(v);
  ++live_;
  ++stats_.items_inserted;
  stats_.max_bucket = std::max(stats_.max_bucket, b);
}

void BucketStructure::InsertBatch(std::span<const BucketItem> items) {
  for (const auto& [b, v] : items) Insert(b, v);
}

uint64_t BucketStructure::PopNextBucket(std::vector<VertexId>* out) {
  if (live_ == 0) return kNoBucket;
  while (cursor_ < buckets_.size() && buckets_[cursor_].empty()) ++cursor_;
  if (cursor_ >= buckets_.size()) return kNoBucket;  // unreachable if live_ > 0
  out->clear();
  out->swap(buckets_[cursor_]);
  live_ -= out->size();
  ++stats_.buckets_popped;
  stats_.items_popped += out->size();
  return cursor_;
}

bool BucketStructure::PopSame(uint64_t b, std::vector<VertexId>* out) {
  if (b != cursor_ || b >= buckets_.size() || buckets_[b].empty()) return false;
  out->clear();
  out->swap(buckets_[b]);
  live_ -= out->size();
  ++stats_.buckets_popped;
  stats_.items_popped += out->size();
  return true;
}

}  // namespace ubigraph
