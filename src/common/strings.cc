#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace ubigraph {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  auto lower = [](unsigned char c) { return std::tolower(c); };
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    size_t j = 0;
    while (j < needle.size() &&
           lower(haystack[i + j]) == lower(needle[j])) {
      ++j;
    }
    if (j == needle.size()) return true;
  }
  return false;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string CsvEscape(std::string_view s) {
  bool needs_quote = s.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(s);
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is not universally available; strtod needs a
  // NUL-terminated buffer.
  std::string buf(s);
  char* end = nullptr;
  *out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

}  // namespace ubigraph
