// Deterministic, seedable random number generation. All stochastic components
// of the library (generators, samplers, Monte Carlo estimators) take an
// explicit Rng so results are reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ubigraph {

/// SplitMix64 — used to expand a single seed into generator state.
uint64_t SplitMix64(uint64_t* state);

/// Xoshiro256** PRNG. Fast, high-quality, and deterministic across platforms
/// (unlike std::mt19937 + std::uniform_int_distribution, whose outputs are
/// implementation-defined for distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli(p).
  bool NextBool(double p = 0.5);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = NextBounded(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (reservoir when k << n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Samples an index proportionally to non-negative weights. Returns
  /// weights.size() if all weights are zero.
  size_t SampleWeighted(const std::vector<double>& weights);

 private:
  uint64_t s_[4];
  bool has_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace ubigraph
