// Banded histogram, matching the paper's bucketed size questions
// (e.g. Table 5: <10K, 10K-100K, ..., >1B edges).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ubigraph {

/// A histogram over half-open value bands [b0, b1), [b1, b2), ... with
/// implicit (-inf, b0) and [bk, +inf) end bands.
class BandedHistogram {
 public:
  /// `boundaries` must be strictly increasing.
  explicit BandedHistogram(std::vector<int64_t> boundaries);

  /// A histogram with powers-of-ten bands covering [10^lo, 10^hi].
  static BandedHistogram PowersOfTen(int lo_exponent, int hi_exponent);

  void Add(int64_t value, int64_t count = 1);

  size_t num_bands() const { return counts_.size(); }
  int64_t band_count(size_t band) const { return counts_[band]; }
  int64_t total() const;

  /// Index of the band containing `value`.
  size_t BandOf(int64_t value) const;

  /// Human-readable label like "10K - 100K" or ">1B".
  std::string BandLabel(size_t band) const;

 private:
  std::vector<int64_t> boundaries_;
  std::vector<int64_t> counts_;
};

/// Formats 1500000 as "1.5M", 2000 as "2K", etc.
std::string HumanCount(int64_t value);

/// Streaming mean/variance/min/max accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ubigraph
