// ASCII / CSV / Markdown table rendering, used by the survey tabulator and the
// per-table bench binaries to print paper-vs-reproduced comparisons.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ubigraph {

/// A simple row/column text table with a header row.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row. Rows shorter than the header are right-padded with "".
  void AddRow(std::vector<std::string> row);

  /// Convenience: first cell is a label, rest are integers.
  void AddCountRow(const std::string& label, const std::vector<int64_t>& counts);

  size_t num_rows() const { return rows_.size(); }
  size_t num_cols() const { return header_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::string>& row(size_t i) const { return rows_[i]; }

  /// Box-drawing ASCII rendering with aligned columns.
  std::string RenderAscii() const;

  /// RFC-4180-style CSV.
  std::string RenderCsv() const;

  /// GitHub-flavored markdown.
  std::string RenderMarkdown() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ubigraph
