#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace ubigraph {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnknown:
      return "Unknown";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

void Status::Abort() const {
  if (ok()) return;
  std::fprintf(stderr, "fatal status: %s\n", ToString().c_str());
  std::abort();
}

}  // namespace ubigraph
