// Small string helpers shared across parsers, formatters, and the miner.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ubigraph {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any whitespace run; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view s);

std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive substring containment.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// XML-escapes &, <, >, ", '.
std::string XmlEscape(std::string_view s);

/// Escapes a CSV field (quotes it when it contains separator/quote/newline).
std::string CsvEscape(std::string_view s);

/// Escapes a JSON string body (without surrounding quotes).
std::string JsonEscape(std::string_view s);

/// Parses a signed integer; returns false on any non-numeric garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a double; returns false on any non-numeric garbage.
bool ParseDouble(std::string_view s, double* out);

/// Formats with %.*g-style compactness, e.g. for table cells.
std::string FormatDouble(double v, int precision = 6);

}  // namespace ubigraph
