#include "common/parallel.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace ubigraph {

unsigned ResolveNumThreads(unsigned requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  tasks_submitted_ = reg.GetCounter("pool.tasks_submitted");
  tasks_completed_ = reg.GetCounter("pool.tasks_completed");
  busy_ns_ = reg.GetCounter("pool.busy_ns");
  queue_depth_max_ = reg.GetGauge("pool.queue_depth_max");
  num_threads = std::max(1u, num_threads);
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
    depth = queue_.size();
  }
  if (obs::Enabled()) {
    tasks_submitted_->Increment();
    queue_depth_max_->UpdateMax(static_cast<int64_t>(depth));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::WorkerLoop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain queued work even when stopping so Submit-then-destruct never
      // drops tasks.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Tasks are chunk-granularity (see ParallelForChunks), so two clock
    // reads per task are noise relative to the task body.
    const bool record = obs::Enabled();
    Clock::time_point start;
    if (record) start = Clock::now();
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    if (record) {
      busy_ns_->Add(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start)
              .count());
      tasks_completed_->Increment();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (err && !first_error_) first_error_ = err;
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace ubigraph
