#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ubigraph {

BandedHistogram::BandedHistogram(std::vector<int64_t> boundaries)
    : boundaries_(std::move(boundaries)), counts_(boundaries_.size() + 1, 0) {
  assert(std::is_sorted(boundaries_.begin(), boundaries_.end()));
}

BandedHistogram BandedHistogram::PowersOfTen(int lo_exponent, int hi_exponent) {
  std::vector<int64_t> b;
  int64_t v = 1;
  for (int e = 0; e <= hi_exponent; ++e) {
    if (e >= lo_exponent) b.push_back(v);
    v *= 10;
  }
  return BandedHistogram(std::move(b));
}

size_t BandedHistogram::BandOf(int64_t value) const {
  // First boundary strictly greater than value determines the band.
  auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  return static_cast<size_t>(it - boundaries_.begin());
}

void BandedHistogram::Add(int64_t value, int64_t count) {
  counts_[BandOf(value)] += count;
}

int64_t BandedHistogram::total() const {
  int64_t t = 0;
  for (int64_t c : counts_) t += c;
  return t;
}

std::string HumanCount(int64_t value) {
  if (value < 0) return "-" + HumanCount(-value);
  struct Unit {
    int64_t scale;
    const char* suffix;
  };
  static const Unit kUnits[] = {
      {1000000000000LL, "T"}, {1000000000LL, "B"}, {1000000LL, "M"}, {1000LL, "K"}};
  for (const Unit& u : kUnits) {
    if (value >= u.scale) {
      double scaled = static_cast<double>(value) / static_cast<double>(u.scale);
      char buf[32];
      if (scaled >= 100 || scaled == std::floor(scaled)) {
        std::snprintf(buf, sizeof(buf), "%.0f%s", scaled, u.suffix);
      } else {
        std::snprintf(buf, sizeof(buf), "%.1f%s", scaled, u.suffix);
      }
      return buf;
    }
  }
  return std::to_string(value);
}

std::string BandedHistogram::BandLabel(size_t band) const {
  if (boundaries_.empty()) return "all";
  if (band == 0) return "<" + HumanCount(boundaries_.front());
  if (band == boundaries_.size()) return ">" + HumanCount(boundaries_.back());
  return HumanCount(boundaries_[band - 1]) + " - " + HumanCount(boundaries_[band]);
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace ubigraph
