// Shared-memory parallel runtime: the substrate for the "software that can
// process larger graphs" challenge (§6.1, the survey's #1 reported problem).
// Provides a fixed-size ThreadPool, ParallelFor with static and dynamic
// chunked scheduling over vertex/edge ranges, and a deterministic tree
// ParallelReduce whose floating-point result is bitwise-identical at any
// thread count (chunk boundaries depend only on the grain, and partials are
// combined in a fixed binary-tree order).
//
// Convention used by every kernel option struct in src/algorithms:
//   num_threads == 0  -> std::thread::hardware_concurrency()
//   num_threads == 1  -> the exact serial code path (the default)
//   num_threads >= 2  -> the parallel path on that many workers
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ubigraph {

namespace obs {
class Counter;
class Gauge;
}  // namespace obs

/// Resolves a user-facing `num_threads` option: 0 means hardware concurrency
/// (at least 1), anything else is used as-is.
unsigned ResolveNumThreads(unsigned requested);

/// How ParallelFor distributes a range over workers.
enum class Schedule : uint8_t {
  /// One contiguous block per worker, decided up front. Lowest overhead;
  /// best when per-index cost is uniform.
  kStatic,
  /// Grain-sized chunks claimed from an atomic counter. Load-balances
  /// skewed per-index cost (power-law degree distributions).
  kDynamic,
};

/// Default indices per dynamically-scheduled chunk and per reduce chunk.
inline constexpr uint64_t kDefaultGrain = 1024;

/// Fixed-size worker pool. Tasks are arbitrary callables; the first
/// exception thrown by any task is captured and rethrown from Wait().
/// Destruction drains all queued tasks, then joins the workers.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the first
  /// exception any task raised (clearing it, so the pool stays usable).
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or stopping
  std::condition_variable done_cv_;  // Wait(): pending_ reached zero
  std::deque<std::function<void()>> queue_;
  uint64_t pending_ = 0;  // queued + currently running tasks
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;

  // Observability handles (global registry; see src/obs/metrics.h). Cached
  // at construction so the per-task hot path is a relaxed shard add; the
  // pool.busy_ns counter's per-thread shards are the per-worker busy-time
  // breakdown exported by StatsSnapshot. All recording is skipped while the
  // registry is disabled.
  obs::Counter* tasks_submitted_ = nullptr;
  obs::Counter* tasks_completed_ = nullptr;
  obs::Counter* busy_ns_ = nullptr;
  obs::Gauge* queue_depth_max_ = nullptr;
};

/// Number of grain-sized chunks covering [begin, end).
inline uint64_t NumChunks(uint64_t begin, uint64_t end, uint64_t grain) {
  if (end <= begin || grain == 0) return 0;
  return (end - begin + grain - 1) / grain;
}

/// Runs fn(chunk_begin, chunk_end) over disjoint chunks that exactly cover
/// [begin, end). kStatic issues one contiguous block per worker; kDynamic
/// issues grain-sized chunks from a shared counter. Blocks until done;
/// rethrows the first task exception.
template <typename Fn>
void ParallelForChunks(ThreadPool& pool, uint64_t begin, uint64_t end, Fn fn,
                       Schedule schedule = Schedule::kStatic,
                       uint64_t grain = kDefaultGrain) {
  if (end <= begin) return;
  const uint64_t n = end - begin;
  const unsigned workers = pool.size() == 0 ? 1 : pool.size();
  if (schedule == Schedule::kStatic) {
    const uint64_t per = n / workers, extra = n % workers;
    uint64_t b = begin;
    for (unsigned w = 0; w < workers && b < end; ++w) {
      uint64_t e = b + per + (w < extra ? 1 : 0);
      pool.Submit([fn, b, e] { fn(b, e); });
      b = e;
    }
  } else {
    auto next = std::make_shared<std::atomic<uint64_t>>(begin);
    for (unsigned w = 0; w < workers; ++w) {
      pool.Submit([fn, next, end, grain] {
        for (;;) {
          uint64_t b = next->fetch_add(grain, std::memory_order_relaxed);
          if (b >= end) return;
          fn(b, std::min(b + grain, end));
        }
      });
    }
  }
  pool.Wait();
}

/// Runs fn(i) for every i in [begin, end), scheduled per ParallelForChunks.
template <typename Fn>
void ParallelFor(ThreadPool& pool, uint64_t begin, uint64_t end, Fn fn,
                 Schedule schedule = Schedule::kStatic,
                 uint64_t grain = kDefaultGrain) {
  ParallelForChunks(
      pool, begin, end,
      [fn](uint64_t b, uint64_t e) {
        for (uint64_t i = b; i < e; ++i) fn(i);
      },
      schedule, grain);
}

/// Deterministic chunked tree reduction. The range is split into grain-sized
/// chunks (independently of the worker count); `map(chunk_begin, chunk_end)`
/// produces each chunk's partial serially, and partials are folded pairwise
/// in a fixed binary tree. Floating-point results are therefore
/// bitwise-identical for any pool size given the same grain.
///
/// Partials live in a plain T[] rather than std::vector<T>: the
/// vector<bool> specialization bit-packs neighbors into one word, which
/// turns independent per-chunk writes into a data race (found by TSan).
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(ThreadPool& pool, uint64_t begin, uint64_t end, T identity,
                 MapFn map, CombineFn combine, uint64_t grain = kDefaultGrain) {
  const uint64_t chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return identity;
  auto partials = std::make_unique<T[]>(chunks);
  T* slots = partials.get();
  const unsigned workers = pool.size() == 0 ? 1 : pool.size();
  auto next = std::make_shared<std::atomic<uint64_t>>(0);
  for (unsigned w = 0; w < std::min<uint64_t>(workers, chunks); ++w) {
    pool.Submit([slots, next, map, begin, end, grain, chunks] {
      for (;;) {
        uint64_t c = next->fetch_add(1, std::memory_order_relaxed);
        if (c >= chunks) return;
        uint64_t b = begin + c * grain;
        slots[c] = map(b, std::min(b + grain, end));
      }
    });
  }
  pool.Wait();
  // Fixed pairwise tree over chunk partials: stride 1 folds (0,1)(2,3)...,
  // stride 2 folds (0,2)(4,6)..., and so on up to the root at slot 0.
  for (uint64_t stride = 1; stride < chunks; stride *= 2) {
    for (uint64_t i = 0; i + stride < chunks; i += 2 * stride) {
      slots[i] = combine(std::move(slots[i]), std::move(slots[i + stride]));
    }
  }
  return std::move(slots[0]);
}

/// ParallelReduce's exact chunk decomposition and pairwise combine tree, run
/// inline on the calling thread: the serial path (num_threads == 1) of
/// kernels whose parallel path is ParallelReduce, guaranteeing
/// bitwise-identical floating-point results with no pool at all. Same
/// caveat as ParallelReduce regarding T = bool (irrelevant here, single
/// writer) — partials simply live in a std::vector.
template <typename T, typename MapFn, typename CombineFn>
T SerialChunkReduce(uint64_t begin, uint64_t end, T identity, MapFn map,
                    CombineFn combine, uint64_t grain = kDefaultGrain) {
  const uint64_t chunks = NumChunks(begin, end, grain);
  if (chunks == 0) return identity;
  std::vector<T> slots;
  slots.reserve(chunks);
  for (uint64_t c = 0; c < chunks; ++c) {
    uint64_t b = begin + c * grain;
    slots.push_back(map(b, std::min(b + grain, end)));
  }
  for (uint64_t stride = 1; stride < chunks; stride *= 2) {
    for (uint64_t i = 0; i + stride < chunks; i += 2 * stride) {
      slots[i] = combine(std::move(slots[i]), std::move(slots[i + stride]));
    }
  }
  return std::move(slots[0]);
}

}  // namespace ubigraph
