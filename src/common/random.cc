#include "common/random.h"

#include <cassert>
#include <cmath>

namespace ubigraph {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded sampling with rejection.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  gauss_ = r * std::sin(theta);
  has_gauss_ = true;
  return r * std::cos(theta);
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Reservoir sampling: O(n) but no allocation of the full index set when the
  // caller wants a small sample; for k close to n a shuffle would be similar.
  std::vector<size_t> reservoir(k);
  for (size_t i = 0; i < k; ++i) reservoir[i] = i;
  for (size_t i = k; i < n; ++i) {
    size_t j = NextBounded(i + 1);
    if (j < k) reservoir[j] = i;
  }
  return reservoir;
}

size_t Rng::SampleWeighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace ubigraph
