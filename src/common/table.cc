#include "common/table.h"

#include <algorithm>

#include "common/strings.h"

namespace ubigraph {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddCountRow(const std::string& label,
                            const std::vector<int64_t>& counts) {
  std::vector<std::string> row;
  row.reserve(counts.size() + 1);
  row.push_back(label);
  for (int64_t c : counts) row.push_back(std::to_string(c));
  AddRow(std::move(row));
}

namespace {

std::vector<size_t> ColumnWidths(const std::vector<std::string>& header,
                                 const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> w(header.size());
  for (size_t c = 0; c < header.size(); ++c) w[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < w.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  return w;
}

void AppendAsciiRow(std::string* out, const std::vector<std::string>& cells,
                    const std::vector<size_t>& widths) {
  *out += '|';
  for (size_t c = 0; c < widths.size(); ++c) {
    const std::string& cell = c < cells.size() ? cells[c] : std::string();
    *out += ' ';
    *out += cell;
    out->append(widths[c] - cell.size() + 1, ' ');
    *out += '|';
  }
  *out += '\n';
}

void AppendAsciiRule(std::string* out, const std::vector<size_t>& widths) {
  *out += '+';
  for (size_t w : widths) {
    out->append(w + 2, '-');
    *out += '+';
  }
  *out += '\n';
}

}  // namespace

std::string TextTable::RenderAscii() const {
  std::vector<size_t> widths = ColumnWidths(header_, rows_);
  std::string out;
  AppendAsciiRule(&out, widths);
  AppendAsciiRow(&out, header_, widths);
  AppendAsciiRule(&out, widths);
  for (const auto& row : rows_) AppendAsciiRow(&out, row, widths);
  AppendAsciiRule(&out, widths);
  return out;
}

std::string TextTable::RenderCsv() const {
  std::string out;
  auto append = [&out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c) out += ',';
      out += CsvEscape(cells[c]);
    }
    out += '\n';
  };
  append(header_);
  for (const auto& row : rows_) append(row);
  return out;
}

std::string TextTable::RenderMarkdown() const {
  std::string out = "|";
  for (const auto& h : header_) {
    out += ' ';
    out += h;
    out += " |";
  }
  out += "\n|";
  for (size_t c = 0; c < header_.size(); ++c) out += "---|";
  out += '\n';
  for (const auto& row : rows_) {
    out += '|';
    for (size_t c = 0; c < header_.size(); ++c) {
      out += ' ';
      out += c < row.size() ? row[c] : std::string();
      out += " |";
    }
    out += '\n';
  }
  return out;
}

}  // namespace ubigraph
