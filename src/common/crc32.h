// CRC32 (IEEE 802.3 polynomial) for binary file-format integrity checks.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ubigraph {

/// Computes or extends a CRC32 checksum. Start with crc = 0.
uint32_t Crc32(const void* data, size_t len, uint32_t crc = 0);

}  // namespace ubigraph
