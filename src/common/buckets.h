// Open-bucket priority structure (Julienne-style) shared by the
// priority-ordered kernels: delta-stepping SSSP buckets vertices by
// floor(dist / delta), bucketed k-core peeling buckets them by remaining
// degree. The structure is deliberately *lazy*: entries are never deleted or
// moved when a vertex's priority improves — the kernel simply inserts a fresh
// entry into the better bucket and filters stale entries with a recheck when
// they are popped ("relaxed-write + recheck"). This keeps insertion a plain
// vector push and makes the contents a pure function of the insertion
// sequence, which the kernels keep deterministic by merging per-chunk
// insertion buffers in ascending chunk order (the same discipline as the
// frontier builders and ParallelReduce).
//
// The extraction cursor is monotone: PopNextBucket only moves forward.
// Inserts targeting a bucket below the cursor are clamped *to* the cursor —
// exactly the semantics bucketed peeling needs (a vertex whose degree drops
// below the level currently being peeled belongs to that level's core).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/edge_list.h"

namespace ubigraph {

/// Cheap local tallies the owning kernel folds into the obs registry at the
/// end of a run (flush-at-end discipline; see DESIGN.md "Observability").
struct BucketStats {
  uint64_t items_inserted = 0;  // entries added, including re-insertions
  uint64_t items_popped = 0;    // entries handed back, including stale ones
  uint64_t buckets_popped = 0;  // non-empty pops (sub-rounds included)
  uint64_t max_bucket = 0;      // highest bucket index ever populated
};

/// An entry destined for bucket `first` holding vertex `second`. Kernels
/// accumulate these in per-chunk buffers and merge via InsertBatch.
using BucketItem = std::pair<uint64_t, VertexId>;

class BucketStructure {
 public:
  static constexpr uint64_t kNoBucket = UINT64_MAX;

  BucketStructure() = default;
  /// Pre-sizes the bucket array (e.g. max degree + 1 for peeling); purely an
  /// allocation hint, buckets grow on demand.
  explicit BucketStructure(uint64_t bucket_hint) { buckets_.reserve(bucket_hint); }

  bool empty() const { return live_ == 0; }
  uint64_t size() const { return live_; }
  /// The bucket the cursor points at (the one PopSame would re-pop).
  uint64_t current_bucket() const { return cursor_; }
  const BucketStats& stats() const { return stats_; }

  /// Inserts `v` into bucket `b` (clamped up to the cursor). Never displaces
  /// older entries for `v`; the caller's pop-time recheck skips them.
  void Insert(uint64_t b, VertexId v);

  /// Appends one chunk's insertion buffer. Callers merge buffers in ascending
  /// chunk index so the structure's contents — and therefore pop order — are
  /// independent of which worker produced which buffer.
  void InsertBatch(std::span<const BucketItem> items);

  /// Drains the lowest non-empty bucket at or above the cursor into *out
  /// (replacing its contents) and returns its index, or kNoBucket when the
  /// structure is empty. Entries are in insertion order and may be stale.
  uint64_t PopNextBucket(std::vector<VertexId>* out);

  /// Re-drains bucket `b` if entries landed in it since it was popped (the
  /// within-bucket sub-round of delta-stepping light relaxations and k-core
  /// cascades). Returns false — leaving *out untouched — once bucket `b` has
  /// settled and the caller should move on.
  bool PopSame(uint64_t b, std::vector<VertexId>* out);

 private:
  std::vector<std::vector<VertexId>> buckets_;
  uint64_t cursor_ = 0;
  uint64_t live_ = 0;  // entries not yet handed back
  BucketStats stats_;
};

}  // namespace ubigraph
