// Status / Result error model, following the Arrow / RocksDB idiom: library
// functions that can fail return a Status (or Result<T>) instead of throwing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace ubigraph {

/// Machine-readable error category carried by a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIOError,
  kCorruption,
  kNotImplemented,
  kAlreadyExists,
  kParseError,
  kResourceExhausted,
  kUnknown,
};

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A cheap, movable success/error outcome. An OK status stores no heap state.
class Status {
 public:
  Status() = default;  // OK

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalid() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK. For callers that
  /// have already established the operation cannot fail.
  void Abort() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // null == OK
};

}  // namespace ubigraph

/// Propagates a non-OK Status to the caller.
#define UG_RETURN_NOT_OK(expr)                \
  do {                                        \
    ::ubigraph::Status _st = (expr);          \
    if (!_st.ok()) return _st;                \
  } while (0)

#define UG_CONCAT_IMPL(a, b) a##b
#define UG_CONCAT(a, b) UG_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// moves the value into `lhs` (which may be a declaration).
#define UG_ASSIGN_OR_RETURN(lhs, rexpr)                         \
  auto UG_CONCAT(_ug_result_, __LINE__) = (rexpr);              \
  if (!UG_CONCAT(_ug_result_, __LINE__).ok())                   \
    return UG_CONCAT(_ug_result_, __LINE__).status();           \
  lhs = std::move(UG_CONCAT(_ug_result_, __LINE__)).ValueUnsafe()
