// StatsSnapshot: a point-in-time copy of every registered metric, exportable
// as JSON (machine-readable perf trajectory, e.g. bench/BENCH_obs.json) or an
// ASCII table (human dumps via common/table.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.h"
#include "obs/metrics.h"

namespace ubigraph::obs {

struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
  /// (shard slot, value) for non-zero shards — the per-thread breakdown
  /// (e.g. per-worker busy time for pool.busy_ns).
  std::vector<std::pair<int, int64_t>> shards;
};

struct GaugeSnapshot {
  std::string name;
  int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  int64_t p50 = 0;
  int64_t p90 = 0;
  int64_t p99 = 0;
};

/// All metrics from a registry at one instant, in name order.
struct StatsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Captures the global registry (or an explicit one).
  static StatsSnapshot Capture(const MetricsRegistry* registry = nullptr);

  const CounterSnapshot* FindCounter(const std::string& name) const;
  const GaugeSnapshot* FindGauge(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;

  /// {"counters": {name: {"value": v, "shards": {tid: v, ...}}, ...},
  ///  "gauges": {name: v, ...},
  ///  "histograms": {name: {"count": ..., "sum": ..., ...}, ...}}
  std::string ToJson() const;

  /// Aligned ASCII tables (one per metric kind), via common/table.h.
  std::string RenderAscii() const;
};

/// Captures the global registry and writes ToJson() to `path`. Returns false
/// (and leaves no partial file guarantees) if the file cannot be written.
bool DumpGlobalStatsJson(const std::string& path);

}  // namespace ubigraph::obs
