#include "obs/metrics.h"

#include <bit>

namespace ubigraph::obs {

namespace {

std::atomic<int> g_next_thread_id{0};

struct ThreadSlot {
  int id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
};

ThreadSlot& ThisThreadSlot() {
  thread_local ThreadSlot slot;
  return slot;
}

}  // namespace

size_t ThisThreadShard() {
  return static_cast<size_t>(ThisThreadSlot().id) % kNumShards;
}

int ThisThreadId() { return ThisThreadSlot().id; }

int64_t Counter::Value() const {
  int64_t total = 0;
  for (const Shard& s : shards_) total += s.value.load(std::memory_order_relaxed);
  return total;
}

std::vector<int64_t> Counter::ShardValues() const {
  std::vector<int64_t> out(kNumShards);
  for (size_t i = 0; i < kNumShards; ++i) {
    out[i] = shards_[i].value.load(std::memory_order_relaxed);
  }
  return out;
}

void Gauge::UpdateMax(int64_t v) {
  int64_t cur = value_.load(std::memory_order_relaxed);
  while (v > cur &&
         !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

size_t LatencyHistogram::BucketOf(int64_t value) {
  if (value <= 0) return 0;
  return static_cast<size_t>(std::bit_width(static_cast<uint64_t>(value)));
}

int64_t LatencyHistogram::Snapshot::BucketUpperBound(size_t b) {
  if (b == 0) return 0;
  if (b >= 63) return INT64_MAX;
  return (int64_t{1} << b) - 1;
}

void LatencyHistogram::Record(int64_t value) {
  Shard& s = shards_[ThisThreadShard()];
  s.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
  // CAS min/max: contention is bounded to same-shard threads.
  int64_t cur = s.min.load(std::memory_order_relaxed);
  while (value < cur &&
         !s.min.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = s.max.load(std::memory_order_relaxed);
  while (value > cur &&
         !s.max.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

LatencyHistogram::Snapshot LatencyHistogram::Merge() const {
  Snapshot snap;
  snap.bucket_counts.assign(kNumBuckets, 0);
  int64_t min = INT64_MAX, max = INT64_MIN;
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      snap.bucket_counts[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
    min = std::min(min, s.min.load(std::memory_order_relaxed));
    max = std::max(max, s.max.load(std::memory_order_relaxed));
  }
  for (int64_t c : snap.bucket_counts) snap.count += c;
  if (snap.count > 0) {
    snap.min = min;
    snap.max = max;
  }
  return snap;
}

int64_t LatencyHistogram::Snapshot::Percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Rank of the percentile observation (1-based, ceil).
  int64_t rank = static_cast<int64_t>(p * static_cast<double>(count - 1)) + 1;
  int64_t seen = 0;
  for (size_t b = 0; b < bucket_counts.size(); ++b) {
    seen += bucket_counts[b];
    if (seen >= rank) return std::min(BucketUpperBound(b), max);
  }
  return max;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();  // never destroyed
  return *instance;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return it->second.get();
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name),
                         std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::unique_ptr<LatencyHistogram>(
                                             new LatencyHistogram(std::string(name))))
             .first;
  }
  return it->second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    for (Counter::Shard& s : c->shards_) s.value.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, g] : gauges_) g->value_.store(0, std::memory_order_relaxed);
  for (auto& [name, h] : histograms_) {
    for (LatencyHistogram::Shard& s : h->shards_) {
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      s.min.store(INT64_MAX, std::memory_order_relaxed);
      s.max.store(INT64_MIN, std::memory_order_relaxed);
    }
  }
}

void MetricsRegistry::ForEachCounter(
    const std::function<void(const Counter&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) fn(*c);
}

void MetricsRegistry::ForEachGauge(
    const std::function<void(const Gauge&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, g] : gauges_) fn(*g);
}

void MetricsRegistry::ForEachHistogram(
    const std::function<void(const LatencyHistogram&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, h] : histograms_) fn(*h);
}

void AddCounter(std::string_view name, int64_t delta) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (!reg.enabled()) return;
  reg.GetCounter(name)->Add(delta);
}

void SetGauge(std::string_view name, int64_t value) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (!reg.enabled()) return;
  reg.GetGauge(name)->Set(value);
}

void RecordLatency(std::string_view name, int64_t value) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  if (!reg.enabled()) return;
  reg.GetHistogram(name)->Record(value);
}

int64_t CounterValue(std::string_view name) {
  const Counter* c = MetricsRegistry::Global().FindCounter(name);
  return c == nullptr ? 0 : c->Value();
}

}  // namespace ubigraph::obs
