// Scoped tracing: RAII spans recorded into a bounded ring buffer, exportable
// as Chrome trace_event JSON (chrome://tracing / Perfetto "traceEvents"
// format). Spans are meant for coarse phases — a kernel run, a parse, a
// frontier level — not inner loops; each span costs two steady_clock reads
// and one short critical section on close.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace ubigraph::obs {

/// One completed span ("X" complete event in Chrome trace terms).
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t start_us = 0;  // microseconds since the process trace epoch
  int64_t duration_us = 0;
  int tid = 0;    // small sequential thread id (ThisThreadId())
  int depth = 0;  // span nesting depth on that thread at open time (0 = root)
};

/// Bounded ring buffer of completed spans. When full, the oldest events are
/// overwritten — tracing never grows without bound and never blocks progress
/// for more than a push under a mutex.
class TraceSink {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  explicit TraceSink(size_t capacity = kDefaultCapacity);

  static TraceSink& Global();

  /// Tracing master switch (default on). Disabled sinks drop events at the
  /// ScopedTrace open, before any clock read.
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void Push(TraceEvent event);

  /// Events in arrival order (oldest first). `dropped` (optional) receives
  /// the number of events overwritten since the last Clear.
  std::vector<TraceEvent> Events(uint64_t* dropped = nullptr) const;

  void Clear();

  /// Re-sizes the ring (drops buffered events).
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  /// Serializes buffered events as a Chrome trace_event JSON document:
  /// {"traceEvents": [{"name": ..., "ph": "X", "ts": ..., "dur": ...,
  ///  "pid": 1, "tid": ..., "cat": ..., "args": {"depth": ...}}, ...]}.
  std::string ExportChromeTrace() const;

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> ring_;
  size_t capacity_;
  size_t next_ = 0;      // ring slot for the next push
  uint64_t total_ = 0;   // pushes since Clear
  bool enabled_ = true;
};

/// Microseconds since the process-wide trace epoch (first use).
int64_t TraceNowMicros();

/// RAII span: opens on construction, records into the sink on destruction.
/// Nesting is tracked per thread; children report depth = parent depth + 1.
class ScopedTrace {
 public:
  explicit ScopedTrace(std::string name, std::string category = "kernel",
                       TraceSink* sink = nullptr);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  TraceSink* sink_ = nullptr;  // null when tracing was disabled at open
  std::string name_;
  std::string category_;
  int64_t start_us_ = 0;
  int depth_ = 0;
};

}  // namespace ubigraph::obs
