#include "obs/trace.h"

#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace ubigraph::obs {

namespace {

/// JSON string escaping for trace names/categories (control chars, quotes,
/// backslashes; non-ASCII bytes pass through untouched).
void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

int& ThreadSpanDepth() {
  thread_local int depth = 0;
  return depth;
}

}  // namespace

int64_t TraceNowMicros() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               epoch)
      .count();
}

TraceSink::TraceSink(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

TraceSink& TraceSink::Global() {
  static TraceSink* instance = new TraceSink();  // never destroyed
  return *instance;
}

void TraceSink::Push(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<TraceEvent> TraceSink::Events(uint64_t* dropped) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (dropped != nullptr) {
    *dropped = total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // When the ring has wrapped, the oldest event sits at next_.
  size_t start = ring_.size() == capacity_ ? next_ : 0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

void TraceSink::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  next_ = 0;
  total_ = 0;
}

size_t TraceSink::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

std::string TraceSink::ExportChromeTrace() const {
  std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ", ";
    first = false;
    out += "{\"name\": \"";
    AppendJsonEscaped(&out, e.name);
    out += "\", \"cat\": \"";
    AppendJsonEscaped(&out, e.category);
    out += "\", \"ph\": \"X\", \"ts\": " + std::to_string(e.start_us) +
           ", \"dur\": " + std::to_string(e.duration_us) +
           ", \"pid\": 1, \"tid\": " + std::to_string(e.tid) +
           ", \"args\": {\"depth\": " + std::to_string(e.depth) + "}}";
  }
  out += "]}";
  return out;
}

ScopedTrace::ScopedTrace(std::string name, std::string category, TraceSink* sink) {
  TraceSink* target = sink != nullptr ? sink : &TraceSink::Global();
  if (!target->enabled()) return;  // sink_ stays null: destructor is a no-op
  sink_ = target;
  name_ = std::move(name);
  category_ = std::move(category);
  depth_ = ThreadSpanDepth()++;
  start_us_ = TraceNowMicros();
}

ScopedTrace::~ScopedTrace() {
  if (sink_ == nullptr) return;
  int64_t end_us = TraceNowMicros();
  --ThreadSpanDepth();
  sink_->Push(TraceEvent{std::move(name_), std::move(category_), start_us_,
                         end_us - start_us_, ThisThreadId(), depth_});
}

}  // namespace ubigraph::obs
