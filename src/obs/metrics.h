// Observability metrics: process-wide registry of named Counters, Gauges,
// and HDR-style latency histograms. Addresses the survey's visibility
// challenge (Table 16: debugging/verification is where practitioners sink
// weekly hours) — kernels that run blind cannot justify perf claims.
//
// Hot-path design: a Counter is an array of cache-line-padded per-thread
// shards; Add() touches only the calling thread's shard with a relaxed
// atomic, so concurrent writers never contend on a line. Value() merges the
// shards on read. Handles returned by the registry are stable pointers —
// look them up once (registration takes a lock), then record lock-free.
//
// Kernels keep instrumentation out of inner loops entirely: they accumulate
// into locals and flush totals through these handles once per run/level,
// which is how the ≤2 % overhead budget on PageRank is met (see DESIGN.md
// "Observability").
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ubigraph::obs {

/// Number of per-thread shards per counter/histogram (power of two). Threads
/// are assigned shard slots round-robin on first use; with more than
/// kNumShards live threads, slots are shared (still correct, mildly
/// contended).
inline constexpr size_t kNumShards = 32;

/// Stable small index for the calling thread, in [0, kNumShards).
size_t ThisThreadShard();

/// Stable small integer id for the calling thread (monotonic from 0, not
/// wrapped) — used as the `tid` in trace events and shard breakdowns.
int ThisThreadId();

/// Monotonically increasing counter, merged across per-thread shards on read.
class Counter {
 public:
  void Add(int64_t delta) {
    shards_[ThisThreadShard()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all shards.
  int64_t Value() const;

  /// Per-shard values (index = shard slot); most are zero.
  std::vector<int64_t> ShardValues() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::string name_;
  Shard shards_[kNumShards];
};

/// Last-writer-wins instantaneous value, plus a CAS high-water helper.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (high-water mark, e.g. queue depth).
  void UpdateMax(int64_t v);
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<int64_t> value_{0};
};

/// HDR-style histogram: values land in power-of-two buckets (bucket b covers
/// [2^(b-1), 2^b) for b >= 1; bucket 0 is {<=0}), recorded into per-thread
/// shards and merged on read. Good to ~2x relative error on percentiles at
/// any magnitude, constant memory, lock-free recording.
class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 64;

  void Record(int64_t value);

  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t min = 0;  // 0 when empty
    int64_t max = 0;
    std::vector<int64_t> bucket_counts;  // size kNumBuckets

    double mean() const { return count > 0 ? static_cast<double>(sum) / count : 0.0; }
    /// Upper bound of the bucket holding the p-th percentile (p in [0, 1]).
    int64_t Percentile(double p) const;
    /// Inclusive upper bound of bucket b (2^b - 1; bucket 0 -> 0).
    static int64_t BucketUpperBound(size_t b);
  };
  Snapshot Merge() const;

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit LatencyHistogram(std::string name) : name_(std::move(name)) {}

  static size_t BucketOf(int64_t value);

  struct alignas(64) Shard {
    std::atomic<int64_t> buckets[kNumBuckets] = {};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> min{INT64_MAX};
    std::atomic<int64_t> max{INT64_MIN};
  };
  std::string name_;
  Shard shards_[kNumShards];
};

/// Named metric registry. Get*() registers on first use and returns a stable
/// pointer; registration is mutex-guarded, recording through the returned
/// handle is lock-free. The process-wide instance is Global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  LatencyHistogram* GetHistogram(std::string_view name);

  /// Read-only lookup: nullptr when no counter with that name has been
  /// registered (unlike GetCounter, never creates one). Lets benchmark
  /// reporters probe kernel work counters without polluting the registry.
  const Counter* FindCounter(std::string_view name) const;

  /// Instrumentation master switch (default on). Call sites that flush
  /// kernel totals check this and skip when disabled; disabling makes every
  /// instrumented code path byte-identical in effect to the uninstrumented
  /// one (verified by tests/obs_integration_test.cc).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Zeroes every registered metric's value (registrations and handles stay
  /// valid). Test isolation helper — not intended for the hot path.
  void Reset();

  /// Visits metrics in name order (snapshot/export).
  void ForEachCounter(const std::function<void(const Counter&)>& fn) const;
  void ForEachGauge(const std::function<void(const Gauge&)>& fn) const;
  void ForEachHistogram(const std::function<void(const LatencyHistogram&)>& fn) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>> histograms_;
  std::atomic<bool> enabled_{true};
};

/// Convenience flush helpers against the global registry: no-ops when
/// instrumentation is disabled. Intended for once-per-run totals, not inner
/// loops (each call does a name lookup under the registration lock).
void AddCounter(std::string_view name, int64_t delta);
void SetGauge(std::string_view name, int64_t value);
void RecordLatency(std::string_view name, int64_t value);

/// True when the global registry has instrumentation enabled.
inline bool Enabled() { return MetricsRegistry::Global().enabled(); }

/// Current value of a global counter; 0 when it was never registered.
/// Benchmarks sample this before/after a timed loop to derive the
/// machine-independent work (edges relaxed/scanned, frontier activations)
/// behind each wall-clock record.
int64_t CounterValue(std::string_view name);

}  // namespace ubigraph::obs
