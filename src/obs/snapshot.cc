#include "obs/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace ubigraph::obs {

StatsSnapshot StatsSnapshot::Capture(const MetricsRegistry* registry) {
  const MetricsRegistry& reg =
      registry != nullptr ? *registry : MetricsRegistry::Global();
  StatsSnapshot snap;
  reg.ForEachCounter([&](const Counter& c) {
    CounterSnapshot cs;
    cs.name = c.name();
    cs.value = c.Value();
    std::vector<int64_t> shards = c.ShardValues();
    for (size_t i = 0; i < shards.size(); ++i) {
      if (shards[i] != 0) cs.shards.emplace_back(static_cast<int>(i), shards[i]);
    }
    snap.counters.push_back(std::move(cs));
  });
  reg.ForEachGauge([&](const Gauge& g) {
    snap.gauges.push_back(GaugeSnapshot{g.name(), g.Value()});
  });
  reg.ForEachHistogram([&](const LatencyHistogram& h) {
    LatencyHistogram::Snapshot m = h.Merge();
    HistogramSnapshot hs;
    hs.name = h.name();
    hs.count = m.count;
    hs.sum = m.sum;
    hs.min = m.min;
    hs.max = m.max;
    hs.mean = m.mean();
    hs.p50 = m.Percentile(0.50);
    hs.p90 = m.Percentile(0.90);
    hs.p99 = m.Percentile(0.99);
    snap.histograms.push_back(std::move(hs));
  });
  return snap;
}

const CounterSnapshot* StatsSnapshot::FindCounter(const std::string& name) const {
  for (const CounterSnapshot& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const GaugeSnapshot* StatsSnapshot::FindGauge(const std::string& name) const {
  for (const GaugeSnapshot& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramSnapshot* StatsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSnapshot& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

void AppendJsonKey(std::string* out, const std::string& name) {
  *out += '"';
  for (char c : name) {
    if (c == '"' || c == '\\') *out += '\\';
    *out += c;
  }
  *out += "\": ";
}

std::string FormatMean(double mean) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", mean);
  return buf;
}

}  // namespace

std::string StatsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterSnapshot& c : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, c.name);
    out += "{\"value\": " + std::to_string(c.value) + ", \"shards\": {";
    bool sfirst = true;
    for (const auto& [slot, v] : c.shards) {
      if (!sfirst) out += ", ";
      sfirst = false;
      out += '"' + std::to_string(slot) + "\": " + std::to_string(v);
    }
    out += "}}";
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const GaugeSnapshot& g : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, g.name);
    out += std::to_string(g.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendJsonKey(&out, h.name);
    out += "{\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"min\": " + std::to_string(h.min) +
           ", \"max\": " + std::to_string(h.max) + ", \"mean\": " +
           FormatMean(h.mean) + ", \"p50\": " + std::to_string(h.p50) +
           ", \"p90\": " + std::to_string(h.p90) +
           ", \"p99\": " + std::to_string(h.p99) + "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string StatsSnapshot::RenderAscii() const {
  std::string out;
  if (!counters.empty()) {
    TextTable t({"counter", "value", "shards"});
    for (const CounterSnapshot& c : counters) {
      std::string shards;
      for (const auto& [slot, v] : c.shards) {
        if (!shards.empty()) shards += ' ';
        shards += std::to_string(slot) + ':' + std::to_string(v);
      }
      t.AddRow({c.name, std::to_string(c.value), shards});
    }
    out += t.RenderAscii();
  }
  if (!gauges.empty()) {
    TextTable t({"gauge", "value"});
    for (const GaugeSnapshot& g : gauges) {
      t.AddRow({g.name, std::to_string(g.value)});
    }
    out += t.RenderAscii();
  }
  if (!histograms.empty()) {
    TextTable t({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const HistogramSnapshot& h : histograms) {
      t.AddRow({h.name, std::to_string(h.count), FormatMean(h.mean),
                std::to_string(h.p50), std::to_string(h.p90),
                std::to_string(h.p99), std::to_string(h.max)});
    }
    out += t.RenderAscii();
  }
  return out;
}

bool DumpGlobalStatsJson(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << StatsSnapshot::Capture().ToJson();
  return static_cast<bool>(out);
}

}  // namespace ubigraph::obs
