// Graph partitioning (Table 9: 25/89 participants). Hash, streaming LDG
// (Stanton-Kleinberg linear deterministic greedy), and BFS-grow partitioners,
// with quality metrics (edge cut, balance).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

/// A vertex partitioning: part[v] in [0, num_parts).
struct Partitioning {
  std::vector<uint32_t> part;
  uint32_t num_parts = 0;
};

/// Quality metrics of a partitioning.
struct PartitionQuality {
  uint64_t edge_cut = 0;       // edges crossing parts (directed arcs counted once)
  double cut_fraction = 0.0;   // edge_cut / num_edges
  double imbalance = 0.0;      // max part size / ideal size - 1
  std::vector<uint64_t> part_sizes;
  /// Out-edges whose source lands in each part — the per-part WORK of a
  /// scatter kernel, which vertex counts misrepresent on skewed-degree
  /// graphs. edge_imbalance = max part out-edges / ideal - 1; a sharded run
  /// (bench/perf_sharded.cc) reports it as the shard-skew number.
  std::vector<uint64_t> part_out_edges;
  double edge_imbalance = 0.0;
};

/// Hash (modulo) partitioning — the baseline every streaming partitioner is
/// compared against.
Result<Partitioning> HashPartition(const CsrGraph& g, uint32_t num_parts);

/// Linear deterministic greedy: stream vertices, placing each in the part
/// with most already-placed neighbors, weighted by remaining capacity.
/// `capacity_slack` >= 1.0 bounds part sizes to slack * ceil(n / k).
Result<Partitioning> LdgPartition(const CsrGraph& g, uint32_t num_parts,
                                  double capacity_slack = 1.1);

/// BFS-grow: seeds k random vertices and grows regions breadth-first;
/// leftover (unreached) vertices go to the smallest part.
Result<Partitioning> BfsGrowPartition(const CsrGraph& g, uint32_t num_parts,
                                      Rng* rng);

/// Computes cut/balance metrics for any partitioning.
Result<PartitionQuality> EvaluatePartition(const CsrGraph& g,
                                           const Partitioning& p);

}  // namespace ubigraph::algo
