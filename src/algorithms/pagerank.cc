#include "algorithms/pagerank.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ubigraph::algo {

Result<PageRankResult> PageRank(const CsrGraph& g, PageRankOptions options) {
  const VertexId n = g.num_vertices();
  if (n == 0) return Status::Invalid("PageRank on empty graph");
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::Invalid("damping must be in [0, 1)");
  }
  if (!options.personalization.empty() && options.personalization.size() != n) {
    return Status::Invalid("personalization vector size mismatch");
  }
  if (g.directed() && !g.has_in_edges()) {
    return Status::Invalid("PageRank on a directed graph requires in-edges");
  }

  obs::ScopedTrace span("PageRank");
  Timer timer;

  const double d = options.damping;
  auto teleport = [&](VertexId v) -> double {
    return options.personalization.empty() ? 1.0 / n : options.personalization[v];
  };

  std::vector<double> rank(n), next(n);
  for (VertexId v = 0; v < n; ++v) rank[v] = teleport(v);

  std::vector<double> inv_outdeg(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    uint64_t deg = g.OutDegree(v);
    if (deg > 0) inv_outdeg[v] = 1.0 / static_cast<double>(deg);
  }

  // Pull-based update of one vertex; writes next[v], returns the L1 change.
  auto relax = [&](VertexId v, double dangling) {
    double in_sum = 0.0;
    for (VertexId u : g.InNeighbors(v)) in_sum += rank[u] * inv_outdeg[u];
    double nv = (1.0 - d) * teleport(v) + d * (in_sum + dangling * teleport(v));
    next[v] = nv;
    return std::abs(nv - rank[v]);
  };

  PageRankResult result;
  const unsigned threads = ResolveNumThreads(options.num_threads);
  if (threads <= 1) {
    for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
      // Mass of dangling vertices is redistributed by the teleport vector.
      double dangling = 0.0;
      for (VertexId v = 0; v < n; ++v) {
        if (g.OutDegree(v) == 0) dangling += rank[v];
      }
      double delta = 0.0;
      for (VertexId v = 0; v < n; ++v) delta += relax(v, dangling);
      rank.swap(next);
      result.iterations = iter + 1;
      result.final_delta = delta;
      if (delta < options.tolerance) {
        result.converged = true;
        break;
      }
    }
  } else {
    // Same pull-based iteration; the two sums run as deterministic tree
    // reductions so results are reproducible at any fixed thread count.
    ThreadPool pool(threads);
    auto plus = [](double a, double b) { return a + b; };
    for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
      double dangling = ParallelReduce(
          pool, 0, n, 0.0,
          [&](uint64_t b, uint64_t e) {
            double sum = 0.0;
            for (uint64_t v = b; v < e; ++v) {
              if (g.OutDegree(static_cast<VertexId>(v)) == 0) sum += rank[v];
            }
            return sum;
          },
          plus);
      double delta = ParallelReduce(
          pool, 0, n, 0.0,
          [&](uint64_t b, uint64_t e) {
            double sum = 0.0;
            for (uint64_t v = b; v < e; ++v) {
              sum += relax(static_cast<VertexId>(v), dangling);
            }
            return sum;
          },
          plus);
      rank.swap(next);
      result.iterations = iter + 1;
      result.final_delta = delta;
      if (delta < options.tolerance) {
        result.converged = true;
        break;
      }
    }
  }
  result.scores = std::move(rank);
  // Instrumentation flushes totals once per run (no-ops when disabled), so
  // the iteration loops above are identical to the uninstrumented kernel.
  // Pull-based updates traverse every in-edge once per iteration.
  obs::AddCounter("pagerank.runs", 1);
  obs::AddCounter("pagerank.iterations", result.iterations);
  obs::AddCounter("pagerank.edges_relaxed",
                  static_cast<int64_t>(result.iterations) *
                      static_cast<int64_t>(g.num_edges()));
  obs::RecordLatency("pagerank.latency_us",
                     static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  return result;
}

Result<HitsResult> Hits(const CsrGraph& g, uint32_t max_iterations,
                        double tolerance) {
  const VertexId n = g.num_vertices();
  if (n == 0) return Status::Invalid("HITS on empty graph");
  if (g.directed() && !g.has_in_edges()) {
    return Status::Invalid("HITS on a directed graph requires in-edges");
  }
  HitsResult r;
  r.hub.assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
  r.authority.assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> next(n);

  auto normalize = [&](std::vector<double>* v) {
    double norm = 0.0;
    for (double x : *v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& x : *v) x /= norm;
    }
  };

  for (uint32_t iter = 0; iter < max_iterations; ++iter) {
    // authority(v) = sum of hub(u) over in-neighbors u.
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (VertexId u : g.InNeighbors(v)) sum += r.hub[u];
      next[v] = sum;
    }
    normalize(&next);
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) delta += std::abs(next[v] - r.authority[v]);
    r.authority.swap(next);
    // hub(u) = sum of authority(v) over out-neighbors v.
    for (VertexId u = 0; u < n; ++u) {
      double sum = 0.0;
      for (VertexId v : g.OutNeighbors(u)) sum += r.authority[v];
      next[u] = sum;
    }
    normalize(&next);
    for (VertexId u = 0; u < n; ++u) delta += std::abs(next[u] - r.hub[u]);
    r.hub.swap(next);
    r.iterations = iter + 1;
    if (delta < tolerance) {
      r.converged = true;
      break;
    }
  }
  return r;
}

std::vector<VertexId> TopK(const std::vector<double>& scores, size_t k) {
  std::vector<VertexId> idx(scores.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<VertexId>(i);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k), idx.end(),
                    [&](VertexId a, VertexId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

}  // namespace ubigraph::algo
