#include "algorithms/pagerank.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/parallel.h"
#include "graph/compressed_csr.h"
#include "graph/frontier.h"
#include "graph/graph_traits.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ubigraph::algo {

namespace {

template <NeighborRangeGraph G>
Result<PageRankResult> PageRankImpl(const G& g, PageRankOptions options) {
  const VertexId n = g.num_vertices();
  if (n == 0) return Status::Invalid("PageRank on empty graph");
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::Invalid("damping must be in [0, 1)");
  }
  if (!options.personalization.empty() && options.personalization.size() != n) {
    return Status::Invalid("personalization vector size mismatch");
  }
  if (!options.warm_start.empty() && options.warm_start.size() != n) {
    return Status::Invalid("warm_start vector size mismatch");
  }
  PageRankMode mode = options.mode;
  if (mode == PageRankMode::kAuto) {
    mode = (g.directed() && !g.has_in_edges()) ? PageRankMode::kPush
                                               : PageRankMode::kPull;
  }
  if (mode == PageRankMode::kPull || mode == PageRankMode::kDelta) {
    UG_RETURN_NOT_OK(g.RequireInEdges(mode == PageRankMode::kPull
                                          ? "PageRank (pull mode)"
                                          : "PageRank (delta mode)"));
  }

  obs::ScopedTrace span("PageRank");
  Timer timer;

  const double d = options.damping;
  auto teleport = [&](VertexId v) -> double {
    return options.personalization.empty() ? 1.0 / n : options.personalization[v];
  };

  std::vector<double> rank(n), next(n);
  if (options.warm_start.empty()) {
    for (VertexId v = 0; v < n; ++v) rank[v] = teleport(v);
  } else {
    rank = options.warm_start;
  }

  std::vector<double> inv_outdeg(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    uint64_t deg = g.OutDegree(v);
    if (deg > 0) inv_outdeg[v] = 1.0 / static_cast<double>(deg);
  }

  // Pull-based update of one vertex; writes next[v], returns the L1 change.
  // Pull-side gathers read `wrank[u] = rank[u] * inv_outdeg[u]`, rebuilt once
  // per iteration (O(n)) so the per-edge work is a single load+add. The
  // product is computed from the same operands either way, so scores are
  // bitwise-identical to the per-edge form.
  std::vector<double> wrank(n, 0.0);
  auto relax = [&](VertexId v, double dangling) {
    double in_sum = 0.0;
    for (VertexId u : g.InNeighbors(v)) in_sum += wrank[u];
    double nv = (1.0 - d) * teleport(v) + d * (in_sum + dangling * teleport(v));
    next[v] = nv;
    return std::abs(nv - rank[v]);
  };

  PageRankResult result;
  result.mode = mode;
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool_storage;
  if (threads > 1) pool_storage.emplace(threads);
  ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;
  auto plus = [](double a, double b) { return a + b; };

  // Dangling mass (vertices with no out-edges) redistributed by the teleport
  // vector; shared by every mode. The parallel sum is a deterministic
  // chunked tree.
  auto dangling_mass = [&]() {
    if (pool == nullptr) {
      double sum = 0.0;
      for (VertexId v = 0; v < n; ++v) {
        if (g.OutDegree(v) == 0) sum += rank[v];
      }
      return sum;
    }
    return ParallelReduce(
        *pool, 0, n, 0.0,
        [&](uint64_t b, uint64_t e) {
          double sum = 0.0;
          for (uint64_t v = b; v < e; ++v) {
            if (g.OutDegree(static_cast<VertexId>(v)) == 0) sum += rank[v];
          }
          return sum;
        },
        plus);
  };
  auto build_wrank = [&]() {
    if (pool == nullptr) {
      for (VertexId v = 0; v < n; ++v) wrank[v] = rank[v] * inv_outdeg[v];
    } else {
      ParallelFor(*pool, 0, n,
                  [&](uint64_t v) { wrank[v] = rank[v] * inv_outdeg[v]; });
    }
  };
  auto finish_iteration = [&](uint32_t iter, double delta) {
    rank.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < options.tolerance) result.converged = true;
    return result.converged;
  };

  uint64_t edges_relaxed = 0;
  if (mode == PageRankMode::kPull) {
    for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
      const double dangling = dangling_mass();
      build_wrank();
      double delta;
      if (pool == nullptr) {
        delta = 0.0;
        for (VertexId v = 0; v < n; ++v) delta += relax(v, dangling);
      } else {
        delta = ParallelReduce(
            *pool, 0, n, 0.0,
            [&](uint64_t b, uint64_t e) {
              double sum = 0.0;
              for (uint64_t v = b; v < e; ++v) {
                sum += relax(static_cast<VertexId>(v), dangling);
              }
              return sum;
            },
            plus);
      }
      edges_relaxed += g.num_edges();
      if (finish_iteration(iter, delta)) break;
    }
  } else if (mode == PageRankMode::kPush) {
    // Scatter rank[u]/outdeg(u) along out-edges. Serial: plain adds into
    // next[]. Parallel: each worker scatters its contiguous source range
    // into a private accumulator; accumulators merge in ascending worker
    // order, keeping scores deterministic at a fixed thread count.
    const unsigned workers = pool == nullptr ? 1 : pool->size();
    std::vector<std::vector<double>> acc;
    if (pool != nullptr) {
      acc.resize(workers);
      for (auto& a : acc) a.resize(n, 0.0);
    }
    const uint64_t per = (static_cast<uint64_t>(n) + workers - 1) / workers;
    for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
      const double dangling = dangling_mass();
      double delta;
      if (pool == nullptr) {
        for (VertexId v = 0; v < n; ++v) {
          next[v] = (1.0 - d) * teleport(v) + d * dangling * teleport(v);
        }
        for (VertexId u = 0; u < n; ++u) {
          if (inv_outdeg[u] == 0.0) continue;
          const double contrib = d * rank[u] * inv_outdeg[u];
          for (VertexId v : g.OutNeighbors(u)) next[v] += contrib;
        }
        delta = 0.0;
        for (VertexId v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
      } else {
        for (unsigned w = 0; w < workers; ++w) {
          pool->Submit([&, w] {
            auto& a = acc[w];
            std::fill(a.begin(), a.end(), 0.0);
            const uint64_t lo = std::min<uint64_t>(w * per, n);
            const uint64_t hi = std::min<uint64_t>(lo + per, n);
            for (uint64_t u = lo; u < hi; ++u) {
              if (inv_outdeg[u] == 0.0) continue;
              const double contrib = d * rank[u] * inv_outdeg[u];
              for (VertexId v : g.OutNeighbors(static_cast<VertexId>(u))) {
                a[v] += contrib;
              }
            }
          });
        }
        pool->Wait();
        delta = ParallelReduce(
            *pool, 0, n, 0.0,
            [&](uint64_t b, uint64_t e) {
              double sum = 0.0;
              for (uint64_t i = b; i < e; ++i) {
                VertexId v = static_cast<VertexId>(i);
                double nv = (1.0 - d) * teleport(v) + d * dangling * teleport(v);
                for (unsigned w = 0; w < workers; ++w) nv += acc[w][v];
                next[v] = nv;
                sum += std::abs(nv - rank[v]);
              }
              return sum;
            },
            plus);
      }
      edges_relaxed += g.num_edges();
      if (finish_iteration(iter, delta)) break;
    }
  } else if (mode == PageRankMode::kBlocked) {
    // Propagation blocking. Destination ids per (worker, bin) are recorded
    // once — the topology never changes across iterations, only the streamed
    // contribution values do — so each iteration is two sequential passes:
    // stream values out, then accumulate one destination bin at a time.
    const unsigned workers = pool == nullptr ? 1 : pool->size();
    const uint32_t bin_bits = options.blocked_bin_bits;
    const uint64_t bin_width = 1ull << bin_bits;
    const uint64_t num_bins = (static_cast<uint64_t>(n) + bin_width - 1) >> bin_bits;
    const uint64_t per = (static_cast<uint64_t>(n) + workers - 1) / workers;
    // bin_dst[w][b] / bin_val[w][b]: destinations and contributions produced
    // by worker w's source range that land in destination bin b, in source
    // traversal order.
    std::vector<std::vector<std::vector<VertexId>>> bin_dst(workers);
    std::vector<std::vector<std::vector<double>>> bin_val(workers);
    auto build_bins = [&](unsigned w) {
      auto& dsts = bin_dst[w];
      dsts.assign(num_bins, {});
      const uint64_t lo = std::min<uint64_t>(w * per, n);
      const uint64_t hi = std::min<uint64_t>(lo + per, n);
      for (uint64_t u = lo; u < hi; ++u) {
        if (inv_outdeg[u] == 0.0) continue;
        for (VertexId v : g.OutNeighbors(static_cast<VertexId>(u))) {
          dsts[v >> bin_bits].push_back(v);
        }
      }
      auto& vals = bin_val[w];
      vals.resize(num_bins);
      for (uint64_t b = 0; b < num_bins; ++b) vals[b].resize(dsts[b].size());
    };
    if (pool == nullptr) {
      build_bins(0);
    } else {
      for (unsigned w = 0; w < workers; ++w) pool->Submit([&, w] { build_bins(w); });
      pool->Wait();
    }

    for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
      const double dangling = dangling_mass();
      // Phase 1: stream d * rank[u] / outdeg(u) into the per-bin buffers.
      auto stream = [&](unsigned w) {
        auto& vals = bin_val[w];
        std::vector<uint64_t> cursor(num_bins, 0);
        const uint64_t lo = std::min<uint64_t>(w * per, n);
        const uint64_t hi = std::min<uint64_t>(lo + per, n);
        for (uint64_t u = lo; u < hi; ++u) {
          if (inv_outdeg[u] == 0.0) continue;
          const double contrib = d * rank[u] * inv_outdeg[u];
          for (VertexId v : g.OutNeighbors(static_cast<VertexId>(u))) {
            const uint64_t b = v >> bin_bits;
            vals[b][cursor[b]++] = contrib;
          }
        }
      };
      if (pool == nullptr) {
        stream(0);
      } else {
        for (unsigned w = 0; w < workers; ++w) pool->Submit([&, w] { stream(w); });
        pool->Wait();
      }
      // Phase 2: accumulate bin by bin. Within a bin the workers replay in
      // ascending order and each worker's stream is in ascending source
      // order, so every destination receives its contributions one at a time
      // in globally ascending source order — the association that makes the
      // result bitwise-stable across thread counts (and equal to serial
      // push).
      auto accumulate = [&](uint64_t bin_b, uint64_t bin_e) {
        double sum = 0.0;
        for (uint64_t b = bin_b; b < bin_e; ++b) {
          const uint64_t vb = b << bin_bits;
          const uint64_t ve = std::min<uint64_t>(vb + bin_width, n);
          for (uint64_t v = vb; v < ve; ++v) {
            const VertexId vid = static_cast<VertexId>(v);
            next[v] = (1.0 - d) * teleport(vid) + d * dangling * teleport(vid);
          }
          for (unsigned w = 0; w < workers; ++w) {
            const auto& dsts = bin_dst[w][b];
            const auto& vals = bin_val[w][b];
            for (size_t i = 0; i < dsts.size(); ++i) next[dsts[i]] += vals[i];
          }
          for (uint64_t v = vb; v < ve; ++v) sum += std::abs(next[v] - rank[v]);
        }
        return sum;
      };
      double delta;
      if (pool == nullptr) {
        delta = accumulate(0, num_bins);
      } else {
        delta = ParallelReduce(*pool, 0, num_bins, 0.0, accumulate, plus,
                               /*grain=*/1);
      }
      edges_relaxed += g.num_edges();
      if (finish_iteration(iter, delta)) break;
    }
  } else {  // kDelta
    // Frontier-based pull: only vertices whose in-neighborhood is still
    // moving get re-gathered; everyone else keeps their score modulo the
    // global dangling-mass drift. A vertex whose score moved more than
    // tolerance/n re-activates its out-neighbors for the next sweep. If the
    // frontier drains before the L1 delta certifies convergence, one full
    // sweep re-seeds it, so the mode terminates at the same fixpoint as
    // kPull (within tolerance).
    Frontier active(n), changed(n), next_active(n);
    active.SetAll();
    // Skip threshold. tolerance/n is conservative — a sum of n sub-threshold
    // changes stays under tolerance — so regions go quiescent only once they
    // are individually done. Looser thresholds (e.g. tolerance/sqrt(n)) stay
    // sound thanks to the certification sweep below but measured worse: they
    // freeze vertices early, accumulate drift error, and the certification
    // sweeps then force many extra rounds.
    const double thr =
        options.tolerance > 0 ? options.tolerance / static_cast<double>(n) : 0.0;
    double prev_dangling = 0.0;
    obs::LatencyHistogram* active_hist =
        obs::Enabled()
            ? obs::MetricsRegistry::Global().GetHistogram("pagerank.delta.active")
            : nullptr;
    for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
      const double dangling = dangling_mass();
      build_wrank();
      if (active_hist != nullptr) {
        active_hist->Record(static_cast<int64_t>(active.size()));
      }
      changed.ClearDense();
      // Returns (L1 delta, in-edges gathered) for one chunk. The sweep only
      // flags changed vertices (O(1) per vertex); activation of their
      // out-neighbors happens after the round so the flag pass costs no edge
      // work while most of the graph is still moving.
      using Partial = std::pair<double, uint64_t>;
      auto sweep = [&](uint64_t b, uint64_t e) {
        Partial p{0.0, 0};
        for (uint64_t i = b; i < e; ++i) {
          VertexId v = static_cast<VertexId>(i);
          double nv;
          if (active.Test(v)) {
            const auto in = g.InNeighbors(v);
            double in_sum = 0.0;
            for (VertexId u : in) in_sum += wrank[u];
            p.second += in.size();
            nv = (1.0 - d) * teleport(v) + d * (in_sum + dangling * teleport(v));
            // Only an exactly re-gathered vertex can flag itself as still
            // moving; the uniform dangling drift applied to skipped vertices
            // must not re-activate the whole graph every round. Any error
            // this hides is caught by the full certification sweep below.
            if (std::abs(nv - rank[v]) > thr) {
              if (pool != nullptr) {
                changed.AtomicTestAndSet(v);
              } else {
                changed.Set(v);
              }
            }
          } else {
            nv = rank[v] + d * teleport(v) * (dangling - prev_dangling);
          }
          next[v] = nv;
          p.first += std::abs(nv - rank[v]);
        }
        return p;
      };
      Partial total;
      if (pool == nullptr) {
        total = sweep(0, n);
      } else {
        total = ParallelReduce(
            *pool, 0, n, Partial{0.0, 0},
            sweep,
            [](Partial a, Partial b) {
              return Partial{a.first + b.first, a.second + b.second};
            });
      }
      edges_relaxed += total.second;
      prev_dangling = dangling;
      const bool was_full = active.size() == n;
      rank.swap(next);
      result.iterations = iter + 1;
      result.final_delta = total.first;
      if (total.first < options.tolerance) {
        if (was_full) {
          // Convergence is only certified on a round where every vertex was
          // re-gathered exactly — a partial sweep's L1 includes approximated
          // (drift-only) updates and could under-report the true residual.
          result.converged = true;
          break;
        }
        active.SetAll();
        continue;
      }
      changed.RecountDense();
      if (changed.size() > n / 8 || changed.empty()) {
        // Most of the graph still moved (or the frontier drained while the
        // residual is above tolerance): everyone stays active; skipping the
        // per-edge activation scatter keeps early rounds at pull-mode cost.
        active.SetAll();
      } else {
        changed.ToSparse();
        next_active.ClearDense();
        uint64_t marked = 0;
        for (VertexId v : changed.Vertices()) {
          for (VertexId w : g.OutNeighbors(v)) {
            marked += next_active.AtomicTestAndSet(w) ? 1 : 0;
          }
        }
        next_active.SetCount(marked);
        std::swap(active, next_active);
      }
    }
  }
  result.scores = std::move(rank);
  // Instrumentation flushes totals once per run (no-ops when disabled), so
  // the iteration loops above are identical to the uninstrumented kernel.
  obs::AddCounter("pagerank.runs", 1);
  obs::AddCounter(mode == PageRankMode::kPull      ? "pagerank.mode.pull"
                  : mode == PageRankMode::kPush    ? "pagerank.mode.push"
                  : mode == PageRankMode::kBlocked ? "pagerank.mode.blocked"
                                                   : "pagerank.mode.delta",
                  1);
  obs::AddCounter("pagerank.iterations", result.iterations);
  obs::AddCounter("pagerank.edges_relaxed", static_cast<int64_t>(edges_relaxed));
  obs::RecordLatency("pagerank.latency_us",
                     static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  return result;
}

}  // namespace

Result<PageRankResult> PageRank(const CsrGraph& g, PageRankOptions options) {
  return PageRankImpl(g, options);
}

Result<PageRankResult> PageRank(const CompressedCsrGraph& g,
                                PageRankOptions options) {
  return PageRankImpl(g, options);
}

Result<HitsResult> Hits(const CsrGraph& g, uint32_t max_iterations,
                        double tolerance) {
  const VertexId n = g.num_vertices();
  if (n == 0) return Status::Invalid("HITS on empty graph");
  if (g.directed() && !g.has_in_edges()) {
    return Status::Invalid("HITS on a directed graph requires in-edges");
  }
  HitsResult r;
  r.hub.assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
  r.authority.assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> next(n);

  auto normalize = [&](std::vector<double>* v) {
    double norm = 0.0;
    for (double x : *v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& x : *v) x /= norm;
    }
  };

  for (uint32_t iter = 0; iter < max_iterations; ++iter) {
    // authority(v) = sum of hub(u) over in-neighbors u.
    for (VertexId v = 0; v < n; ++v) {
      double sum = 0.0;
      for (VertexId u : g.InNeighbors(v)) sum += r.hub[u];
      next[v] = sum;
    }
    normalize(&next);
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) delta += std::abs(next[v] - r.authority[v]);
    r.authority.swap(next);
    // hub(u) = sum of authority(v) over out-neighbors v.
    for (VertexId u = 0; u < n; ++u) {
      double sum = 0.0;
      for (VertexId v : g.OutNeighbors(u)) sum += r.authority[v];
      next[u] = sum;
    }
    normalize(&next);
    for (VertexId u = 0; u < n; ++u) delta += std::abs(next[u] - r.hub[u]);
    r.hub.swap(next);
    r.iterations = iter + 1;
    if (delta < tolerance) {
      r.converged = true;
      break;
    }
  }
  return r;
}

std::vector<VertexId> TopK(const std::vector<double>& scores, size_t k) {
  std::vector<VertexId> idx(scores.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<VertexId>(i);
  k = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<ptrdiff_t>(k), idx.end(),
                    [&](VertexId a, VertexId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  idx.resize(k);
  return idx;
}

}  // namespace ubigraph::algo
