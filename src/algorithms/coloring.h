// Graph coloring (Table 9: 7/89 participants): greedy coloring with several
// vertex orderings, including the degeneracy (smallest-last) ordering that
// guarantees at most degeneracy+1 colors.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

enum class ColoringOrder {
  kVertexId,       // natural order
  kLargestFirst,   // descending degree (Welsh-Powell)
  kSmallestLast,   // degeneracy ordering
};

struct ColoringResult {
  std::vector<uint32_t> color;  // per vertex, in [0, num_colors)
  uint32_t num_colors = 0;
};

/// Greedy proper coloring over the undirected simple view of g.
ColoringResult GreedyColoring(const CsrGraph& g,
                              ColoringOrder order = ColoringOrder::kSmallestLast);

/// Validates that no edge joins two equal colors.
bool IsProperColoring(const CsrGraph& g, const std::vector<uint32_t>& color);

}  // namespace ubigraph::algo
