// Centrality measures (Table 9 "Ranking & Centrality Scores"): exact Brandes
// betweenness, sampled approximate betweenness, closeness, and degree
// centrality.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

/// Exact betweenness centrality (Brandes 2001), unweighted. For undirected
/// graphs each path is counted once per direction; scores are conventionally
/// halved by callers if needed — we return the raw directed accumulation,
/// matching NetworkX's directed semantics, and halve for undirected inputs.
std::vector<double> BetweennessCentrality(const CsrGraph& g);

/// Approximate betweenness from `num_samples` random source pivots, scaled to
/// estimate the exact values.
std::vector<double> ApproxBetweennessCentrality(const CsrGraph& g,
                                                uint32_t num_samples, Rng* rng);

/// Harmonic closeness: sum over reachable u != v of 1/d(v, u). Robust to
/// disconnected graphs (unreachable pairs contribute 0).
std::vector<double> HarmonicCloseness(const CsrGraph& g);

/// Classic closeness: (reachable - 1) / sum of distances within v's reachable
/// set, times the reachable fraction (Wasserman-Faust normalization).
std::vector<double> ClosenessCentrality(const CsrGraph& g);

/// Degree centrality: degree / (n - 1).
std::vector<double> DegreeCentrality(const CsrGraph& g);

}  // namespace ubigraph::algo
