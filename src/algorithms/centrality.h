// Centrality measures (Table 9 "Ranking & Centrality Scores"): exact Brandes
// betweenness, sampled approximate betweenness, closeness, and degree
// centrality. The per-source accumulations are independent, so every measure
// parallelizes over sources; partials are combined in the fixed
// ParallelReduce chunk tree, making scores bitwise-identical at any thread
// count (including the serial path, which folds the same tree inline).
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/csr_graph.h"

namespace ubigraph {
class CompressedCsrGraph;
}  // namespace ubigraph

namespace ubigraph::algo {

struct CentralityOptions {
  /// 0 = hardware concurrency, 1 = exact serial path (default), else that
  /// many workers (the convention shared by every parallel kernel).
  uint32_t num_threads = 1;
};

/// Exact betweenness centrality (Brandes 2001), unweighted. For undirected
/// graphs each path is counted once per direction; scores are conventionally
/// halved by callers if needed — we return the raw directed accumulation,
/// matching NetworkX's directed semantics, and halve for undirected inputs.
std::vector<double> BetweennessCentrality(const CsrGraph& g,
                                          const CentralityOptions& options = {});
std::vector<double> BetweennessCentrality(const CompressedCsrGraph& g,
                                          const CentralityOptions& options = {});

/// Approximate betweenness from `num_samples` random source pivots, scaled to
/// estimate the exact values. The pivot list is drawn serially from `rng`
/// before any parallel work, so a fixed seed yields the same scores at every
/// thread count.
std::vector<double> ApproxBetweennessCentrality(
    const CsrGraph& g, uint32_t num_samples, Rng* rng,
    const CentralityOptions& options = {});
std::vector<double> ApproxBetweennessCentrality(
    const CompressedCsrGraph& g, uint32_t num_samples, Rng* rng,
    const CentralityOptions& options = {});

/// Harmonic closeness: sum over reachable u != v of 1/d(v, u). Robust to
/// disconnected graphs (unreachable pairs contribute 0).
std::vector<double> HarmonicCloseness(const CsrGraph& g,
                                      const CentralityOptions& options = {});
std::vector<double> HarmonicCloseness(const CompressedCsrGraph& g,
                                      const CentralityOptions& options = {});

/// Classic closeness: (reachable - 1) / sum of distances within v's reachable
/// set, times the reachable fraction (Wasserman-Faust normalization).
std::vector<double> ClosenessCentrality(const CsrGraph& g,
                                        const CentralityOptions& options = {});
std::vector<double> ClosenessCentrality(const CompressedCsrGraph& g,
                                        const CentralityOptions& options = {});

/// Degree centrality: degree / (n - 1).
std::vector<double> DegreeCentrality(const CsrGraph& g);

}  // namespace ubigraph::algo
