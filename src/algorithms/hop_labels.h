// Pruned Landmark Labeling (Akiba-Iwata-Yoshida, SIGMOD'13) for exact
// shortest-hop distance queries. The survey's point-to-point workloads
// (neighborhood, reachability, shortest paths) all pay per-query BFS cost;
// a 2-hop label index answers distance queries in microseconds after one
// preprocessing pass — the standard answer to the "traversals on large
// graphs are slow" complaint (§6.1). Undirected view of the input graph.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

class HopLabelIndex {
 public:
  /// Builds the index by pruned BFS from every vertex in descending-degree
  /// order. O(sum of label sizes) space; small for low-highway-dimension
  /// graphs (road-like, social).
  static Result<HopLabelIndex> Build(const CsrGraph& g);

  /// Exact shortest hop distance over the undirected view; UINT32_MAX when
  /// disconnected.
  uint32_t Distance(VertexId u, VertexId v) const;

  /// Total number of (landmark, distance) label entries.
  uint64_t TotalLabelEntries() const;
  /// Average label entries per vertex.
  double AverageLabelSize() const;

  VertexId num_vertices() const { return static_cast<VertexId>(labels_.size()); }

 private:
  struct Entry {
    VertexId landmark;  // in BFS-rank space (ascending within each label)
    uint32_t distance;
  };
  std::vector<std::vector<Entry>> labels_;
};

}  // namespace ubigraph::algo
