#include "algorithms/shortest_path.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <optional>
#include <queue>
#include <span>

#include "algorithms/traversal.h"
#include "common/buckets.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "graph/graph_traits.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ubigraph::algo {

std::vector<VertexId> ShortestPathTree::PathTo(VertexId target) const {
  std::vector<VertexId> path;
  if (target >= parent.size() || distance[target] == kInfDistance) return path;
  VertexId cur = target;
  while (true) {
    path.push_back(cur);
    VertexId p = parent[cur];
    if (p == cur || p == kInvalidVertex) break;
    cur = p;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

namespace {

Status CheckNonNegativeWeights(const CsrGraph& g) {
  for (double w : g.weights()) {
    if (w < 0) return Status::Invalid("Dijkstra requires non-negative weights");
  }
  return Status::OK();
}

struct HeapEntry {
  double dist;
  VertexId v;
  bool operator>(const HeapEntry& o) const { return dist > o.dist; }
};

}  // namespace

Result<ShortestPathTree> Dijkstra(const CsrGraph& g, VertexId source) {
  if (source >= g.num_vertices()) return Status::OutOfRange("source out of range");
  UG_RETURN_NOT_OK(CheckNonNegativeWeights(g));

  ShortestPathTree t;
  t.distance.assign(g.num_vertices(), kInfDistance);
  t.parent.assign(g.num_vertices(), kInvalidVertex);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  t.distance[source] = 0.0;
  t.parent[source] = source;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > t.distance[u]) continue;  // stale entry
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      double nd = d + ws[i];
      if (nd < t.distance[nbrs[i]]) {
        t.distance[nbrs[i]] = nd;
        t.parent[nbrs[i]] = u;
        heap.push({nd, nbrs[i]});
      }
    }
  }
  return t;
}

Result<double> DijkstraPointToPoint(const CsrGraph& g, VertexId source,
                                    VertexId target) {
  if (source >= g.num_vertices() || target >= g.num_vertices()) {
    return Status::OutOfRange("endpoint out of range");
  }
  UG_RETURN_NOT_OK(CheckNonNegativeWeights(g));
  std::vector<double> dist(g.num_vertices(), kInfDistance);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == target) return d;
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      double nd = d + ws[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        heap.push({nd, nbrs[i]});
      }
    }
  }
  return kInfDistance;
}

Result<ShortestPathTree> BellmanFord(const CsrGraph& g, VertexId source) {
  if (source >= g.num_vertices()) return Status::OutOfRange("source out of range");
  const VertexId n = g.num_vertices();
  ShortestPathTree t;
  t.distance.assign(n, kInfDistance);
  t.parent.assign(n, kInvalidVertex);
  t.distance[source] = 0.0;
  t.parent[source] = source;

  bool changed = true;
  for (VertexId round = 0; round < n && changed; ++round) {
    changed = false;
    for (VertexId u = 0; u < n; ++u) {
      if (t.distance[u] == kInfDistance) continue;
      auto nbrs = g.OutNeighbors(u);
      auto ws = g.OutWeights(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        double nd = t.distance[u] + ws[i];
        if (nd < t.distance[nbrs[i]]) {
          t.distance[nbrs[i]] = nd;
          t.parent[nbrs[i]] = u;
          changed = true;
        }
      }
    }
  }
  if (changed) {
    // An n-th improving round means a reachable negative cycle.
    return Status::Invalid("graph contains a negative cycle reachable from source");
  }
  return t;
}

namespace {

/// Frontier entries per relax chunk. Chunk boundaries depend only on this
/// grain, so insertion-buffer merge order — and with it every bucket's
/// contents — is identical at any thread count.
constexpr uint64_t kSsspGrain = 256;

struct SsspTally {
  uint64_t relaxations = 0;   // tight-edge relax attempts
  uint64_t improvements = 0;  // successful distance writes
};

/// Delta-stepping over the shared BucketStructure. The distance array is the
/// only cross-thread state during a relax phase: writes go through a
/// CAS-min on std::atomic_ref<double> and reads are relaxed atomic loads
/// ("relaxed-write"); a popped entry whose vertex has left the bucket is
/// discarded by the serial recheck between phases. The serial path (no pool)
/// runs the identical chunk decomposition with plain loads/stores.
template <WeightedNeighborRangeGraph G>
Result<ShortestPathTree> DeltaSteppingEngine(const G& g, VertexId source,
                                             const SsspOptions& options) {
  const VertexId n = g.num_vertices();
  if (source >= n) return Status::OutOfRange("source out of range");

  // One serial edge sweep both validates weights and feeds the delta
  // auto-tune (average edge weight ~= one bucket per expected hop).
  double weight_sum = 0.0;
  for (VertexId u = 0; u < n; ++u) {
    for (double w : g.OutWeights(u)) {
      if (w < 0) {
        return Status::Invalid("DeltaSteppingSssp requires non-negative weights");
      }
      weight_sum += w;
    }
  }
  double delta = options.delta;
  if (delta <= 0) {
    delta = g.num_edges() > 0 ? weight_sum / static_cast<double>(g.num_edges())
                              : 1.0;
    if (delta <= 0) delta = 1.0;  // all-zero weights
  }

  obs::ScopedTrace span("DeltaSteppingSssp");
  Timer timer;

  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);

  ShortestPathTree t;
  t.distance.assign(n, kInfDistance);
  t.parent.assign(n, kInvalidVertex);
  t.distance[source] = 0.0;
  t.parent[source] = source;
  std::vector<double>& dist = t.distance;

  // Bucket of a *finite* distance, clamped so adversarial weights cannot
  // overflow the index space.
  auto bucket_of = [delta](double d) {
    return static_cast<uint64_t>(std::min(d / delta, 9e18));
  };

  BucketStructure buckets;
  buckets.Insert(0, source);
  std::vector<uint8_t> settled_flag(n, 0);
  std::vector<VertexId> popped, frontier, settled;
  SsspTally tally;
  uint64_t stale_pops = 0;

  // Relaxes the light (w <= delta) or heavy (w > delta) edges of `front`.
  // New (bucket, vertex) entries collect in per-chunk buffers merged in
  // ascending chunk order.
  auto relax = [&](std::span<const VertexId> front, bool light) {
    if (front.empty()) return;
    const uint64_t chunks = NumChunks(0, front.size(), kSsspGrain);
    std::vector<std::vector<BucketItem>> buffers(chunks);
    std::vector<SsspTally> tallies(chunks);
    auto run_chunk = [&](uint64_t c) {
      const uint64_t b = c * kSsspGrain;
      const uint64_t e = std::min<uint64_t>(b + kSsspGrain, front.size());
      const bool concurrent = pool.has_value();
      auto& buf = buffers[c];
      auto& tl = tallies[c];
      for (uint64_t idx = b; idx < e; ++idx) {
        const VertexId u = front[idx];
        const double du =
            concurrent ? std::atomic_ref<double>(dist[u]).load(
                             std::memory_order_relaxed)
                       : dist[u];
        auto nbrs = g.OutNeighbors(u);
        auto ws = g.OutWeights(u);
        for (size_t i = 0; i < nbrs.size(); ++i) {
          const double w = ws[i];
          if (light ? w > delta : w <= delta) continue;
          const VertexId v = nbrs[i];
          const double nd = du + w;
          ++tl.relaxations;
          if (concurrent) {
            std::atomic_ref<double> dv(dist[v]);
            double cur = dv.load(std::memory_order_relaxed);
            while (nd < cur) {
              if (dv.compare_exchange_weak(cur, nd, std::memory_order_relaxed)) {
                ++tl.improvements;
                buf.emplace_back(bucket_of(nd), v);
                break;
              }
            }
          } else if (nd < dist[v]) {
            dist[v] = nd;
            ++tl.improvements;
            buf.emplace_back(bucket_of(nd), v);
          }
        }
      }
    };
    if (pool.has_value()) {
      ParallelFor(*pool, 0, chunks, run_chunk, Schedule::kDynamic, 1);
    } else {
      for (uint64_t c = 0; c < chunks; ++c) run_chunk(c);
    }
    for (uint64_t c = 0; c < chunks; ++c) {
      buckets.InsertBatch(buffers[c]);
      tally.relaxations += tallies[c].relaxations;
      tally.improvements += tallies[c].improvements;
    }
  };

  uint64_t bkt;
  while ((bkt = buckets.PopNextBucket(&popped)) != BucketStructure::kNoBucket) {
    settled.clear();
    for (;;) {  // light sub-rounds until bucket `bkt` stops refilling
      frontier.clear();
      for (VertexId v : popped) {
        if (bucket_of(dist[v]) != bkt) {  // improved past this bucket: stale
          ++stale_pops;
          continue;
        }
        frontier.push_back(v);
        if (!settled_flag[v]) {  // first settle; heavy edges relax once below
          settled_flag[v] = 1;
          settled.push_back(v);
        }
      }
      relax(frontier, /*light=*/true);
      if (!buckets.PopSame(bkt, &popped)) break;
    }
    relax(settled, /*light=*/false);
  }

  // Parent derivation, decoupled from relaxation order so the tree is
  // deterministic: every v takes its min-id predecessor over strictly
  // improving tight edges (dist[u] + w == dist[v], w > 0) — acyclic because
  // dist strictly decreases along parent chains.
  auto assign_strict = [&](VertexId u) {
    const double du = dist[u];
    if (du == kInfDistance) return;
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      if (v == source || ws[i] <= 0 || du + ws[i] != dist[v]) continue;
      if (pool.has_value()) {
        std::atomic_ref<VertexId> pv(t.parent[v]);
        VertexId cur = pv.load(std::memory_order_relaxed);
        while (u < cur &&
               !pv.compare_exchange_weak(cur, u, std::memory_order_relaxed)) {
        }
      } else if (u < t.parent[v]) {
        t.parent[v] = u;
      }
    }
  };
  if (pool.has_value()) {
    ParallelFor(*pool, 0, n, [&](uint64_t u) { assign_strict(VertexId(u)); },
                Schedule::kDynamic);
  } else {
    for (VertexId u = 0; u < n; ++u) assign_strict(u);
  }
  // Vertices tied only through zero-weight edges get parents from a
  // deterministic BFS over the tie edges, seeded at already-anchored
  // vertices in ascending id order (no random weight distribution produces
  // ties, so this pass is normally a single scan).
  bool needs_tie_pass = false;
  for (VertexId v = 0; v < n && !needs_tie_pass; ++v) {
    needs_tie_pass = dist[v] != kInfDistance && t.parent[v] == kInvalidVertex;
  }
  if (needs_tie_pass) {
    std::deque<VertexId> queue;
    for (VertexId v = 0; v < n; ++v) {
      if (t.parent[v] != kInvalidVertex) queue.push_back(v);
    }
    while (!queue.empty()) {
      const VertexId u = queue.front();
      queue.pop_front();
      auto nbrs = g.OutNeighbors(u);
      auto ws = g.OutWeights(u);
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const VertexId v = nbrs[i];
        if (v == source || ws[i] != 0 || dist[u] != dist[v] ||
            t.parent[v] != kInvalidVertex) {
          continue;
        }
        t.parent[v] = u;
        queue.push_back(v);
      }
    }
  }

  if (obs::Enabled()) {
    const BucketStats& bs = buckets.stats();
    obs::AddCounter("sssp.delta.runs", 1);
    obs::AddCounter("sssp.delta.buckets_popped",
                    static_cast<int64_t>(bs.buckets_popped));
    obs::AddCounter("sssp.delta.relaxations",
                    static_cast<int64_t>(tally.relaxations));
    obs::AddCounter("sssp.delta.improvements",
                    static_cast<int64_t>(tally.improvements));
    obs::AddCounter("sssp.delta.wasted",
                    static_cast<int64_t>(stale_pops));
    obs::RecordLatency("sssp.delta.latency_us",
                       static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  }
  return t;
}

}  // namespace

Result<ShortestPathTree> DeltaSteppingSssp(const CsrGraph& g, VertexId source,
                                           const SsspOptions& options) {
  return DeltaSteppingEngine(g, source, options);
}

Result<uint32_t> BidirectionalBfsDistance(const CsrGraph& g, VertexId source,
                                          VertexId target) {
  if (source >= g.num_vertices() || target >= g.num_vertices()) {
    return Status::OutOfRange("endpoint out of range");
  }
  if (source == target) return 0u;
  UG_RETURN_NOT_OK(g.RequireInEdges("BidirectionalBfsDistance"));

  std::vector<uint32_t> dist_f(g.num_vertices(), UINT32_MAX);
  std::vector<uint32_t> dist_b(g.num_vertices(), UINT32_MAX);
  std::deque<VertexId> qf{source}, qb{target};
  dist_f[source] = 0;
  dist_b[target] = 0;
  uint32_t best = UINT32_MAX;

  auto expand = [&](std::deque<VertexId>* q, std::vector<uint32_t>* mine,
                    const std::vector<uint32_t>& other, bool forward) {
    size_t level_size = q->size();
    for (size_t k = 0; k < level_size; ++k) {
      VertexId u = q->front();
      q->pop_front();
      auto nbrs = forward ? g.OutNeighbors(u) : g.InNeighbors(u);
      for (VertexId v : nbrs) {
        if ((*mine)[v] != UINT32_MAX) continue;
        (*mine)[v] = (*mine)[u] + 1;
        if (other[v] != UINT32_MAX) {
          best = std::min(best, (*mine)[v] + other[v]);
        }
        q->push_back(v);
      }
    }
  };

  uint32_t frontier_depth = 0;
  while (!qf.empty() && !qb.empty()) {
    // Stop once the sum of settled depths cannot beat the best meeting point.
    if (best != UINT32_MAX && frontier_depth + 1 >= best) break;
    if (qf.size() <= qb.size()) {
      expand(&qf, &dist_f, dist_b, /*forward=*/true);
    } else {
      expand(&qb, &dist_b, dist_f, /*forward=*/false);
    }
    ++frontier_depth;
  }
  return best;
}

namespace {

/// Dijkstra that ignores banned vertices and banned arcs (by CSR position).
/// Returns the path source..target and its cost, or an empty path.
WeightedPath ConstrainedDijkstra(const CsrGraph& g, VertexId source,
                                 VertexId target,
                                 const std::vector<bool>& banned_vertex,
                                 const std::vector<bool>& banned_arc) {
  const VertexId n = g.num_vertices();
  std::vector<double> dist(n, kInfDistance);
  std::vector<VertexId> parent(n, kInvalidVertex);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  dist[source] = 0.0;
  parent[source] = source;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    if (u == target) break;
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    uint64_t base = g.offsets()[u];
    for (size_t i = 0; i < nbrs.size(); ++i) {
      VertexId v = nbrs[i];
      if (banned_vertex[v] || banned_arc[base + i]) continue;
      double nd = d + ws[i];
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = u;
        heap.push({nd, v});
      }
    }
  }
  WeightedPath path;
  if (dist[target] == kInfDistance) return path;
  path.cost = dist[target];
  VertexId cur = target;
  while (true) {
    path.vertices.push_back(cur);
    if (cur == source) break;
    cur = parent[cur];
  }
  std::reverse(path.vertices.begin(), path.vertices.end());
  return path;
}

}  // namespace

Result<std::vector<WeightedPath>> KShortestPaths(const CsrGraph& g,
                                                 VertexId source, VertexId target,
                                                 uint32_t k) {
  if (source >= g.num_vertices() || target >= g.num_vertices()) {
    return Status::OutOfRange("endpoint out of range");
  }
  if (k == 0) return Status::Invalid("k must be positive");
  UG_RETURN_NOT_OK(CheckNonNegativeWeights(g));

  std::vector<bool> no_vertex(g.num_vertices(), false);
  std::vector<bool> no_arc(g.num_edges(), false);

  std::vector<WeightedPath> result;
  WeightedPath first = ConstrainedDijkstra(g, source, target, no_vertex, no_arc);
  if (first.vertices.empty()) return result;  // disconnected: zero paths
  result.push_back(std::move(first));

  // Candidate pool of deviation paths (Yen). Small k: linear scan suffices.
  std::vector<WeightedPath> candidates;
  auto same_path = [](const WeightedPath& a, const WeightedPath& b) {
    return a.vertices == b.vertices;
  };

  while (result.size() < k) {
    const WeightedPath& prev = result.back();
    // For each spur vertex along the previous path...
    for (size_t spur_idx = 0; spur_idx + 1 < prev.vertices.size(); ++spur_idx) {
      VertexId spur = prev.vertices[spur_idx];
      // Root = prefix up to the spur.
      std::vector<VertexId> root(prev.vertices.begin(),
                                 prev.vertices.begin() +
                                     static_cast<ptrdiff_t>(spur_idx) + 1);
      std::fill(no_vertex.begin(), no_vertex.end(), false);
      std::fill(no_arc.begin(), no_arc.end(), false);
      // Ban arcs used by any accepted path sharing this root.
      for (const WeightedPath& p : result) {
        if (p.vertices.size() <= spur_idx + 1) continue;
        if (!std::equal(root.begin(), root.end(), p.vertices.begin())) continue;
        VertexId from = p.vertices[spur_idx];
        VertexId to = p.vertices[spur_idx + 1];
        auto nbrs = g.OutNeighbors(from);
        uint64_t base = g.offsets()[from];
        for (size_t i = 0; i < nbrs.size(); ++i) {
          if (nbrs[i] == to) no_arc[base + i] = true;
        }
      }
      // Ban root vertices except the spur (loopless).
      for (size_t i = 0; i < spur_idx; ++i) no_vertex[root[i]] = true;

      WeightedPath spur_path =
          ConstrainedDijkstra(g, spur, target, no_vertex, no_arc);
      if (spur_path.vertices.empty()) continue;

      // Stitch root + spur path; root cost = sum of its arc weights.
      WeightedPath total;
      total.vertices = root;
      total.vertices.pop_back();
      total.vertices.insert(total.vertices.end(), spur_path.vertices.begin(),
                            spur_path.vertices.end());
      double root_cost = 0.0;
      for (size_t i = 0; i + 1 < root.size(); ++i) {
        // Cheapest arc between consecutive root vertices (matches Dijkstra).
        auto nbrs = g.OutNeighbors(root[i]);
        auto ws = g.OutWeights(root[i]);
        double best = kInfDistance;
        for (size_t j = 0; j < nbrs.size(); ++j) {
          if (nbrs[j] == root[i + 1]) best = std::min(best, ws[j]);
        }
        root_cost += best;
      }
      total.cost = root_cost + spur_path.cost;

      bool duplicate = false;
      for (const WeightedPath& c : candidates) {
        if (same_path(c, total)) {
          duplicate = true;
          break;
        }
      }
      for (const WeightedPath& r : result) {
        if (same_path(r, total)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) candidates.push_back(std::move(total));
    }
    if (candidates.empty()) break;
    size_t best = 0;
    for (size_t i = 1; i < candidates.size(); ++i) {
      if (candidates[i].cost < candidates[best].cost) best = i;
    }
    result.push_back(candidates[best]);
    candidates.erase(candidates.begin() + static_cast<ptrdiff_t>(best));
  }
  return result;
}

std::vector<std::vector<uint32_t>> AllPairsHopDistances(const CsrGraph& g) {
  std::vector<std::vector<uint32_t>> out;
  out.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    out.push_back(BfsDistances(g, v));
  }
  return out;
}

}  // namespace ubigraph::algo
