// Dense subgraphs (Table 9: "Finding Frequent or Densest Subgraphs", plus the
// k-core computations mentioned in §4.1/§4.3): k-core decomposition by peeling
// and Charikar's 2-approximation for the densest subgraph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace ubigraph::algo {

/// Core number per vertex (undirected view; parallel edges collapsed).
/// core[v] = largest k such that v belongs to the k-core.
std::vector<uint32_t> CoreDecomposition(const CsrGraph& g);

/// Vertices of the k-core (possibly empty).
std::vector<VertexId> KCore(const CsrGraph& g, uint32_t k);

/// Degeneracy = max core number (0 for empty graphs).
uint32_t Degeneracy(const CsrGraph& g);

struct DensestSubgraphResult {
  std::vector<VertexId> vertices;
  double density = 0.0;  // |E(S)| / |S| over the undirected simple view
};

/// Charikar's greedy peeling 2-approximation for the densest subgraph.
DensestSubgraphResult DensestSubgraphApprox(const CsrGraph& g);

}  // namespace ubigraph::algo
