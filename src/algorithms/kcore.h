// Dense subgraphs (Table 9: "Finding Frequent or Densest Subgraphs", plus the
// k-core computations mentioned in §4.1/§4.3): k-core decomposition by peeling
// and Charikar's 2-approximation for the densest subgraph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace ubigraph {
class CompressedCsrGraph;
}  // namespace ubigraph

namespace ubigraph::algo {

struct CoreOptions {
  /// 0 = hardware concurrency, 1 = the exact serial Batagelj-Zaversnik path
  /// (the default), else bucketed parallel peeling on that many workers.
  uint32_t num_threads = 1;
};

/// Core number per vertex (undirected view; parallel edges collapsed).
/// core[v] = largest k such that v belongs to the k-core. The parallel path
/// peels whole degree-buckets per round over the shared priority-bucket
/// layer with atomic degree decrements; core numbers are a graph invariant,
/// so it returns exactly the serial result at every thread count.
std::vector<uint32_t> CoreDecomposition(const CsrGraph& g,
                                        const CoreOptions& options = {});
std::vector<uint32_t> CoreDecomposition(const CompressedCsrGraph& g,
                                        const CoreOptions& options = {});

/// Vertices of the k-core (possibly empty).
std::vector<VertexId> KCore(const CsrGraph& g, uint32_t k,
                            const CoreOptions& options = {});

/// Degeneracy = max core number (0 for empty graphs).
uint32_t Degeneracy(const CsrGraph& g, const CoreOptions& options = {});

struct DensestSubgraphResult {
  std::vector<VertexId> vertices;
  double density = 0.0;  // |E(S)| / |S| over the undirected simple view
};

/// Charikar's greedy peeling 2-approximation for the densest subgraph.
DensestSubgraphResult DensestSubgraphApprox(const CsrGraph& g);

}  // namespace ubigraph::algo
