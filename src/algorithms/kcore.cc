#include "algorithms/kcore.h"

#include <algorithm>

namespace ubigraph::algo {

namespace {

std::vector<std::vector<VertexId>> SimpleUndirected(const CsrGraph& g) {
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  return adj;
}

}  // namespace

std::vector<uint32_t> CoreDecomposition(const CsrGraph& g) {
  auto adj = SimpleUndirected(g);
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(adj[v].size());
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket-based peeling (Batagelj-Zaversnik): O(V + E).
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (uint32_t d = 1; d <= max_degree + 1; ++d) bucket_start[d] += bucket_start[d - 1];
  std::vector<VertexId> sorted(n);
  std::vector<uint32_t> position(n);
  {
    std::vector<uint32_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      sorted[position[v]] = v;
      ++cursor[degree[v]];
    }
  }

  std::vector<uint32_t> core = degree;
  for (uint32_t i = 0; i < n; ++i) {
    VertexId v = sorted[i];
    for (VertexId u : adj[v]) {
      if (core[u] > core[v]) {
        // Move u one bucket down: swap it with the first vertex of its bucket.
        uint32_t du = core[u];
        uint32_t pu = position[u];
        uint32_t pw = bucket_start[du];
        VertexId w = sorted[pw];
        if (u != w) {
          std::swap(sorted[pu], sorted[pw]);
          position[u] = pw;
          position[w] = pu;
        }
        ++bucket_start[du];
        --core[u];
      }
    }
  }
  return core;
}

std::vector<VertexId> KCore(const CsrGraph& g, uint32_t k) {
  std::vector<uint32_t> core = CoreDecomposition(g);
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (core[v] >= k) out.push_back(v);
  }
  return out;
}

uint32_t Degeneracy(const CsrGraph& g) {
  std::vector<uint32_t> core = CoreDecomposition(g);
  uint32_t best = 0;
  for (uint32_t c : core) best = std::max(best, c);
  return best;
}

DensestSubgraphResult DensestSubgraphApprox(const CsrGraph& g) {
  auto adj = SimpleUndirected(g);
  const VertexId n = g.num_vertices();
  DensestSubgraphResult result;
  if (n == 0) return result;

  uint64_t edges = 0;
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(adj[v].size());
    edges += degree[v];
    max_degree = std::max(max_degree, degree[v]);
  }
  edges /= 2;

  // Greedy peel of minimum-degree vertices, tracking best density prefix.
  std::vector<bool> removed(n, false);
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<VertexId> removal_order;
  removal_order.reserve(n);

  uint64_t cur_edges = edges;
  uint64_t cur_vertices = n;
  double best_density =
      cur_vertices ? static_cast<double>(cur_edges) / cur_vertices : 0.0;
  size_t best_removed = 0;  // best prefix of removal_order removed

  uint32_t d = 0;
  while (cur_vertices > 0) {
    while (d <= max_degree && buckets[d].empty()) ++d;
    if (d > max_degree) break;
    VertexId v = buckets[d].back();
    buckets[d].pop_back();
    if (removed[v] || degree[v] != d) continue;  // stale bucket entry
    removed[v] = true;
    removal_order.push_back(v);
    cur_edges -= degree[v];
    --cur_vertices;
    for (VertexId u : adj[v]) {
      if (!removed[u]) {
        --degree[u];
        buckets[degree[u]].push_back(u);
        if (degree[u] < d) d = degree[u];
      }
    }
    if (cur_vertices > 0) {
      double density = static_cast<double>(cur_edges) / cur_vertices;
      if (density > best_density) {
        best_density = density;
        best_removed = removal_order.size();
      }
    }
  }

  std::vector<bool> in_best(n, true);
  for (size_t i = 0; i < best_removed; ++i) in_best[removal_order[i]] = false;
  for (VertexId v = 0; v < n; ++v) {
    if (in_best[v]) result.vertices.push_back(v);
  }
  result.density = best_density;
  return result;
}

}  // namespace ubigraph::algo
