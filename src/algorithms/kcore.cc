#include "algorithms/kcore.h"

#include <algorithm>
#include <atomic>
#include <span>

#include "common/buckets.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "graph/compressed_csr.h"
#include "graph/graph_traits.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ubigraph::algo {

namespace {

template <NeighborRangeGraph G>
std::vector<std::vector<VertexId>> SimpleUndirected(const G& g) {
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  return adj;
}

/// Serial Batagelj-Zaversnik peeling, unchanged from the original kernel:
/// the oracle the parallel path is differentially tested against.
std::vector<uint32_t> SerialCoreDecomposition(
    const std::vector<std::vector<VertexId>>& adj) {
  const VertexId n = static_cast<VertexId>(adj.size());
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(adj[v].size());
    max_degree = std::max(max_degree, degree[v]);
  }

  // Bucket-based peeling (Batagelj-Zaversnik): O(V + E).
  std::vector<uint32_t> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (uint32_t d = 1; d <= max_degree + 1; ++d) bucket_start[d] += bucket_start[d - 1];
  std::vector<VertexId> sorted(n);
  std::vector<uint32_t> position(n);
  {
    std::vector<uint32_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      sorted[position[v]] = v;
      ++cursor[degree[v]];
    }
  }

  std::vector<uint32_t> core = degree;
  for (uint32_t i = 0; i < n; ++i) {
    VertexId v = sorted[i];
    for (VertexId u : adj[v]) {
      if (core[u] > core[v]) {
        // Move u one bucket down: swap it with the first vertex of its bucket.
        uint32_t du = core[u];
        uint32_t pu = position[u];
        uint32_t pw = bucket_start[du];
        VertexId w = sorted[pw];
        if (u != w) {
          std::swap(sorted[pu], sorted[pw]);
          position[u] = pw;
          position[w] = pu;
        }
        ++bucket_start[du];
        --core[u];
      }
    }
  }
  return core;
}

/// Vertices per decrement chunk in the parallel peel.
constexpr uint64_t kPeelGrain = 128;

/// Bucketed parallel peeling (ParK/Julienne style): round k drains degree
/// bucket k; peeling cascades within the round through sub-rounds as atomic
/// decrements drop further vertices to k. Every successful decrement
/// re-inserts the vertex at its new degree (lazy re-bucketing); the serial
/// claim step between sub-rounds discards entries whose vertex was already
/// peeled. Core numbers are a structural invariant of the graph, so the
/// result is exactly SerialCoreDecomposition's at any worker count.
std::vector<uint32_t> BucketedCoreDecomposition(
    const std::vector<std::vector<VertexId>>& adj, unsigned threads) {
  const VertexId n = static_cast<VertexId>(adj.size());
  std::vector<uint32_t> core(n, 0);
  std::vector<uint32_t> deg(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = static_cast<uint32_t>(adj[v].size());
    max_degree = std::max(max_degree, deg[v]);
  }
  BucketStructure buckets(uint64_t{max_degree} + 1);
  for (VertexId v = 0; v < n; ++v) buckets.Insert(deg[v], v);

  ThreadPool pool(threads);
  std::vector<uint8_t> peeled(n, 0);
  std::vector<VertexId> popped, frontier;
  uint64_t decrements = 0, wasted = 0, subrounds = 0;

  uint64_t bkt;
  while ((bkt = buckets.PopNextBucket(&popped)) != BucketStructure::kNoBucket) {
    for (;;) {
      ++subrounds;
      // Serial claim: duplicates and already-peeled entries drop out here,
      // so each vertex is peeled exactly once, at the cursor's level.
      frontier.clear();
      for (VertexId v : popped) {
        if (peeled[v]) {
          ++wasted;
          continue;
        }
        peeled[v] = 1;
        core[v] = static_cast<uint32_t>(bkt);
        frontier.push_back(v);
      }
      // Parallel cascade: drop each unpeeled neighbor's degree by one, never
      // below the current level (the ParK clamp — a vertex pulled under the
      // level still belongs to this level's core). Insertions collect in
      // per-chunk buffers merged in ascending chunk order.
      const uint64_t chunks = NumChunks(0, frontier.size(), kPeelGrain);
      std::vector<std::vector<BucketItem>> buffers(chunks);
      std::vector<uint64_t> tallies(chunks, 0);
      ParallelFor(
          pool, 0, chunks,
          [&](uint64_t c) {
            const uint64_t b = c * kPeelGrain;
            const uint64_t e = std::min<uint64_t>(b + kPeelGrain, frontier.size());
            auto& buf = buffers[c];
            for (uint64_t i = b; i < e; ++i) {
              for (VertexId u : adj[frontier[i]]) {
                std::atomic_ref<uint32_t> du(deg[u]);
                uint32_t d = du.load(std::memory_order_relaxed);
                while (d > bkt) {
                  if (du.compare_exchange_weak(d, d - 1,
                                               std::memory_order_relaxed)) {
                    ++tallies[c];
                    buf.emplace_back(d - 1, u);
                    break;
                  }
                }
              }
            }
          },
          Schedule::kDynamic, 1);
      for (uint64_t c = 0; c < chunks; ++c) {
        buckets.InsertBatch(buffers[c]);
        decrements += tallies[c];
      }
      if (!buckets.PopSame(bkt, &popped)) break;
    }
  }

  if (obs::Enabled()) {
    obs::AddCounter("kcore.parallel_runs", 1);
    obs::AddCounter("kcore.subrounds", static_cast<int64_t>(subrounds));
    obs::AddCounter("kcore.decrements", static_cast<int64_t>(decrements));
    obs::AddCounter("kcore.wasted", static_cast<int64_t>(wasted));
  }
  return core;
}

template <NeighborRangeGraph G>
std::vector<uint32_t> CoreDecompositionImpl(const G& g,
                                            const CoreOptions& options) {
  obs::ScopedTrace span("CoreDecomposition");
  Timer timer;
  auto adj = SimpleUndirected(g);
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::vector<uint32_t> core = threads > 1
                                   ? BucketedCoreDecomposition(adj, threads)
                                   : SerialCoreDecomposition(adj);
  if (obs::Enabled()) {
    obs::AddCounter("kcore.runs", 1);
    obs::AddCounter("kcore.vertices", static_cast<int64_t>(adj.size()));
    obs::RecordLatency("kcore.latency_us",
                       static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  }
  return core;
}

}  // namespace

std::vector<uint32_t> CoreDecomposition(const CsrGraph& g,
                                        const CoreOptions& options) {
  return CoreDecompositionImpl(g, options);
}

std::vector<uint32_t> CoreDecomposition(const CompressedCsrGraph& g,
                                        const CoreOptions& options) {
  return CoreDecompositionImpl(g, options);
}

std::vector<VertexId> KCore(const CsrGraph& g, uint32_t k,
                            const CoreOptions& options) {
  std::vector<uint32_t> core = CoreDecomposition(g, options);
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (core[v] >= k) out.push_back(v);
  }
  return out;
}

uint32_t Degeneracy(const CsrGraph& g, const CoreOptions& options) {
  std::vector<uint32_t> core = CoreDecomposition(g, options);
  uint32_t best = 0;
  for (uint32_t c : core) best = std::max(best, c);
  return best;
}

DensestSubgraphResult DensestSubgraphApprox(const CsrGraph& g) {
  auto adj = SimpleUndirected(g);
  const VertexId n = g.num_vertices();
  DensestSubgraphResult result;
  if (n == 0) return result;

  uint64_t edges = 0;
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(adj[v].size());
    edges += degree[v];
    max_degree = std::max(max_degree, degree[v]);
  }
  edges /= 2;

  // Greedy peel of minimum-degree vertices, tracking best density prefix.
  std::vector<bool> removed(n, false);
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<VertexId> removal_order;
  removal_order.reserve(n);

  uint64_t cur_edges = edges;
  uint64_t cur_vertices = n;
  double best_density =
      cur_vertices ? static_cast<double>(cur_edges) / cur_vertices : 0.0;
  size_t best_removed = 0;  // best prefix of removal_order removed

  uint32_t d = 0;
  while (cur_vertices > 0) {
    while (d <= max_degree && buckets[d].empty()) ++d;
    if (d > max_degree) break;
    VertexId v = buckets[d].back();
    buckets[d].pop_back();
    if (removed[v] || degree[v] != d) continue;  // stale bucket entry
    removed[v] = true;
    removal_order.push_back(v);
    cur_edges -= degree[v];
    --cur_vertices;
    for (VertexId u : adj[v]) {
      if (!removed[u]) {
        --degree[u];
        buckets[degree[u]].push_back(u);
        if (degree[u] < d) d = degree[u];
      }
    }
    if (cur_vertices > 0) {
      double density = static_cast<double>(cur_edges) / cur_vertices;
      if (density > best_density) {
        best_density = density;
        best_removed = removal_order.size();
      }
    }
  }

  std::vector<bool> in_best(n, true);
  for (size_t i = 0; i < best_removed; ++i) in_best[removal_order[i]] = false;
  for (VertexId v = 0; v < n; ++v) {
    if (in_best[v]) result.vertices.push_back(v);
  }
  result.density = best_density;
  return result;
}

}  // namespace ubigraph::algo
