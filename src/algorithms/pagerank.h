// PageRank (Table 9: "Ranking & Centrality Scores") by power iteration, with
// dangling-vertex handling, convergence reporting, and personalization.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph {
class CompressedCsrGraph;
}

namespace ubigraph::algo {

/// How one power-iteration sweep traverses edges.
enum class PageRankMode : uint8_t {
  /// Pull when the in-edge index is available, push otherwise.
  kAuto,
  /// Gather over InNeighbors: no atomics, contiguous writes to next[].
  /// Requires in-edges on directed graphs.
  kPull,
  /// Scatter over OutNeighbors. Needs no in-edge index; the parallel path
  /// accumulates into per-worker arrays merged in fixed order, so it stays
  /// deterministic at a fixed thread count.
  kPush,
  /// Pull-based sweeps over a Frontier of still-active vertices: a vertex is
  /// re-gathered only while an in-neighbor's score is still moving (or the
  /// global dangling mass drifts), which skips converged regions entirely.
  /// Requires in-edges on directed graphs. Converges to the same fixpoint
  /// within `tolerance`; intermediate iterates may differ from kPull.
  kDelta,
  /// Cache-blocked push (propagation blocking): phase 1 streams each source
  /// range's contributions into per-(worker, destination-bin) buffers; phase
  /// 2 accumulates one LLC-sized bin of next[] at a time, turning push
  /// mode's random scatter into sequential bin traffic. Needs no in-edge
  /// index. Each destination's contributions are applied one at a time in
  /// ascending source order at every thread count, so scores are
  /// bitwise-identical across thread counts *and* to serial kPush (modulo
  /// the dangling-mass sum, which is exact on dangling-free graphs). Costs
  /// ~12 bytes per edge of bin scratch.
  kBlocked,
};

struct PageRankOptions {
  double damping = 0.85;
  /// L1 convergence threshold.
  double tolerance = 1e-9;
  uint32_t max_iterations = 100;
  /// Optional personalization vector (teleport distribution). Empty = uniform.
  /// Must sum to ~1 and have size == num_vertices when provided.
  std::vector<double> personalization;
  /// Optional warm start: when non-empty (size must be num_vertices) the
  /// power iteration begins from these scores instead of the teleport vector.
  /// The incremental engine (src/stream/incremental_pagerank.h) seeds this
  /// with the previous fixpoint so post-update convergence takes a handful of
  /// sweeps instead of a cold run.
  std::vector<double> warm_start;
  /// 0 = hardware_concurrency, 1 = exact serial path (default), >= 2 = that
  /// many workers. Every mode's parallel path uses deterministic reductions
  /// (chunked trees; fixed-order per-worker merges for push), so scores are
  /// bitwise-reproducible at any fixed thread count (and within `tolerance`
  /// of the serial path).
  uint32_t num_threads = 1;
  PageRankMode mode = PageRankMode::kAuto;
  /// kBlocked only: log2 of the destination-bin width in vertices. The
  /// default (2^18 vertices x 8-byte next[] entries = 2 MB per bin) targets a
  /// per-core LLC slice; graphs smaller than one bin degenerate to plain
  /// push order, which is exactly the intended semantics.
  uint32_t blocked_bin_bits = 18;
};

struct PageRankResult {
  std::vector<double> scores;  // sums to 1
  uint32_t iterations = 0;
  double final_delta = 0.0;    // L1 change in last iteration
  bool converged = false;
  /// The mode actually run (resolves kAuto).
  PageRankMode mode = PageRankMode::kPull;
};

/// Runs power iteration in the selected mode. kPull/kDelta require in-edges
/// for directed graphs and fail with InvalidArgument otherwise; kPush and
/// kBlocked always work; kAuto picks pull when it can.
Result<PageRankResult> PageRank(const CsrGraph& g, PageRankOptions options = {});

/// Same kernel on the varint/delta-gap compressed backend (the two overloads
/// share one implementation through the NeighborRangeGraph seam, so scores
/// are bitwise-identical to the plain-CSR run at the same mode and threads).
Result<PageRankResult> PageRank(const CompressedCsrGraph& g,
                                PageRankOptions options = {});

/// Indices of the k highest-scoring vertices, descending (ties by vertex id).
std::vector<VertexId> TopK(const std::vector<double>& scores, size_t k);

/// HITS (Kleinberg): hub and authority scores by alternating power iteration,
/// L2-normalized each round. The other classic "ranking & centrality"
/// computation of Table 9's web-graph papers. Requires in-edges.
struct HitsResult {
  std::vector<double> hub;
  std::vector<double> authority;
  uint32_t iterations = 0;
  bool converged = false;
};
Result<HitsResult> Hits(const CsrGraph& g, uint32_t max_iterations = 100,
                        double tolerance = 1e-10);

}  // namespace ubigraph::algo
