// Node similarity (Table 9: "e.g., SimRank", 18/89 participants).
// Iterative SimRank plus cheap structural similarity measures.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

struct SimRankOptions {
  double decay = 0.8;          // C in the SimRank recurrence
  uint32_t max_iterations = 10;
  double tolerance = 1e-4;     // max-abs convergence threshold
};

struct SimRankResult {
  /// Row-major n x n similarity matrix; diagonal is 1.
  std::vector<double> matrix;
  VertexId n = 0;
  uint32_t iterations = 0;
  bool converged = false;

  double At(VertexId a, VertexId b) const {
    return matrix[static_cast<size_t>(a) * n + b];
  }
};

/// Full SimRank by the naive O(n^2 d^2) iteration — intended for graphs up to
/// a few thousand vertices (the survey's similarity workloads are local).
/// Uses in-neighbors on directed graphs (requires the in-edge index).
Result<SimRankResult> SimRank(const CsrGraph& g, SimRankOptions options = {});

/// Single-pair SimRank via random-walk Monte Carlo estimation — scales to
/// large graphs where the full matrix is infeasible.
Result<double> SimRankPairMonteCarlo(const CsrGraph& g, VertexId a, VertexId b,
                                     uint32_t num_walks, uint32_t walk_length,
                                     double decay, uint64_t seed);

/// Jaccard similarity of out-neighborhoods.
double JaccardSimilarity(const CsrGraph& g, VertexId a, VertexId b);

/// Cosine similarity of out-neighborhood indicator vectors.
double CosineSimilarity(const CsrGraph& g, VertexId a, VertexId b);

}  // namespace ubigraph::algo
