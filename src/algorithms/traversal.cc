#include "algorithms/traversal.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <deque>
#include <optional>
#include <utility>

#include "common/parallel.h"
#include "graph/compressed_csr.h"
#include "graph/frontier.h"
#include "graph/graph_traits.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ubigraph::algo {

namespace {

/// Flushes BFS counters derived from the finished distance array: one extra
/// O(V) pass when instrumentation is on, zero changes to the traversal loops
/// themselves. Every reached vertex is expanded exactly once, so edges
/// relaxed == sum of out-degrees over the reached set, and level sizes are
/// the frontier sizes.
template <NeighborRangeGraph G>
void FlushBfsStats(const G& g, const std::vector<uint32_t>& dist) {
  if (!obs::Enabled()) return;
  uint64_t edges_relaxed = 0, visited = 0;
  uint32_t max_depth = 0;
  std::vector<int64_t> level_sizes;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] == kUnreachable) continue;
    ++visited;
    edges_relaxed += g.OutDegree(v);
    if (dist[v] >= level_sizes.size()) level_sizes.resize(dist[v] + 1, 0);
    ++level_sizes[dist[v]];
    max_depth = std::max(max_depth, dist[v]);
  }
  obs::AddCounter("bfs.runs", 1);
  obs::AddCounter("bfs.vertices_visited", static_cast<int64_t>(visited));
  obs::AddCounter("bfs.edges_relaxed", static_cast<int64_t>(edges_relaxed));
  obs::AddCounter("bfs.rounds", visited == 0 ? 0 : max_depth + 1);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::LatencyHistogram* frontier = reg.GetHistogram("bfs.frontier_size");
  for (int64_t size : level_sizes) frontier->Record(size);
}

/// The seed serial BFS, generalized to any number of depth-0 sources.
template <NeighborRangeGraph G>
std::vector<uint32_t> SerialBfs(const G& g,
                                std::span<const VertexId> sources) {
  std::vector<uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<VertexId> queue;
  for (VertexId s : sources) {
    if (s < g.num_vertices() && dist[s] == kUnreachable) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.OutNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

/// Level-synchronous BFS: each round expands the whole frontier in parallel,
/// claiming vertices with a CAS on the distance array. Depths are unique, so
/// the result is identical to SerialBfs regardless of thread interleaving.
template <NeighborRangeGraph G>
std::vector<uint32_t> ParallelBfs(const G& g,
                                  std::span<const VertexId> sources,
                                  unsigned threads) {
  std::vector<uint32_t> dist(g.num_vertices(), kUnreachable);
  std::vector<VertexId> frontier;
  for (VertexId s : sources) {
    if (s < g.num_vertices() && dist[s] == kUnreachable) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  ThreadPool pool(threads);
  uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    frontier = ParallelReduce(
        pool, 0, frontier.size(), std::vector<VertexId>{},
        [&](uint64_t b, uint64_t e) {
          std::vector<VertexId> local;
          for (uint64_t i = b; i < e; ++i) {
            for (VertexId v : g.OutNeighbors(frontier[i])) {
              uint32_t expected = kUnreachable;
              if (std::atomic_ref<uint32_t>(dist[v]).compare_exchange_strong(
                      expected, depth, std::memory_order_relaxed)) {
                local.push_back(v);
              }
            }
          }
          return local;
        },
        [](std::vector<VertexId> a, std::vector<VertexId> b) {
          a.insert(a.end(), b.begin(), b.end());
          return a;
        },
        /*grain=*/256);
  }
  return dist;
}

/// One hybrid-BFS round's bookkeeping, flushed to obs at end of run.
struct RoundStat {
  bool pull = false;
  uint64_t frontier_size = 0;
  uint64_t edges_scanned = 0;
};

/// The direction-optimizing engine. `pool == nullptr` is the exact-serial
/// path: the same round bodies run inline over the full range, with plain
/// (non-atomic) claims. Distances are unique per vertex, so every mode and
/// thread count produces a bitwise-identical array.
template <NeighborRangeGraph G>
std::vector<uint32_t> HybridBfsEngine(const G& g,
                                      std::span<const VertexId> sources,
                                      const HybridBfsOptions& opt,
                                      ThreadPool* pool) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> dist(n, kUnreachable);
  Frontier cur(n), next(n);
  uint64_t frontier_edges = 0;
  for (VertexId s : sources) {
    if (s < n && dist[s] == kUnreachable) {
      dist[s] = 0;
      cur.Push(s);
      frontier_edges += g.OutDegree(s);
    }
  }

  // Switch thresholds from the standard edge-work heuristic: pull once the
  // frontier's out-edges exceed |E|/alpha, push again once the frontier
  // shrinks below |V|/beta.
  const uint64_t pull_edges =
      static_cast<uint64_t>(static_cast<double>(g.num_edges()) / opt.alpha);
  const uint64_t push_vertices =
      static_cast<uint64_t>(static_cast<double>(n) / opt.beta);

  bool pull = opt.direction == TraversalDirection::kPull;
  uint64_t switches = 0;
  std::vector<RoundStat> rounds;
  uint32_t depth = 0;

  while (!cur.empty()) {
    ++depth;
    if (opt.direction == TraversalDirection::kAuto) {
      if (!pull && frontier_edges > pull_edges) {
        pull = true;
        ++switches;
      } else if (pull && cur.size() < push_vertices) {
        pull = false;
        ++switches;
      }
    }
    RoundStat stat;
    stat.pull = pull;
    stat.frontier_size = cur.size();

    if (pull) {
      cur.ToDense();
      next.ClearDense();
      // found vertices, edges scanned, out-edges of the new frontier.
      using Partial = std::array<uint64_t, 3>;
      auto round = [&](uint64_t b, uint64_t e) {
        Partial p{0, 0, 0};
        for (uint64_t i = b; i < e; ++i) {
          VertexId v = static_cast<VertexId>(i);
          if (dist[v] != kUnreachable) continue;
          for (VertexId u : g.InNeighbors(v)) {
            ++p[1];
            if (cur.Test(u)) {
              dist[v] = depth;
              if (pool != nullptr) {
                next.AtomicTestAndSet(v);
              } else {
                next.Set(v);
              }
              ++p[0];
              p[2] += g.OutDegree(v);
              break;
            }
          }
        }
        return p;
      };
      Partial total;
      if (pool == nullptr) {
        total = round(0, n);
      } else {
        total = ParallelReduce(
            *pool, 0, n, Partial{0, 0, 0}, round,
            [](Partial a, Partial b) {
              return Partial{a[0] + b[0], a[1] + b[1], a[2] + b[2]};
            });
      }
      next.SetCount(total[0]);
      stat.edges_scanned = total[1];
      frontier_edges = total[2];
    } else {
      cur.ToSparse();
      auto verts = cur.Vertices();
      // New frontier list, plus its out-edge count for the heuristic.
      struct Partial {
        std::vector<VertexId> found;
        uint64_t scanned = 0;
        uint64_t next_edges = 0;
      };
      Partial total;
      if (pool == nullptr) {
        for (VertexId u : verts) {
          for (VertexId v : g.OutNeighbors(u)) {
            ++total.scanned;
            if (dist[v] == kUnreachable) {
              dist[v] = depth;
              total.found.push_back(v);
              total.next_edges += g.OutDegree(v);
            }
          }
        }
      } else {
        total = ParallelReduce(
            *pool, 0, verts.size(), Partial{},
            [&](uint64_t b, uint64_t e) {
              Partial p;
              for (uint64_t i = b; i < e; ++i) {
                for (VertexId v : g.OutNeighbors(verts[i])) {
                  ++p.scanned;
                  uint32_t expected = kUnreachable;
                  if (std::atomic_ref<uint32_t>(dist[v]).compare_exchange_strong(
                          expected, depth, std::memory_order_relaxed)) {
                    p.found.push_back(v);
                    p.next_edges += g.OutDegree(v);
                  }
                }
              }
              return p;
            },
            [](Partial a, Partial b) {
              a.found.insert(a.found.end(), b.found.begin(), b.found.end());
              a.scanned += b.scanned;
              a.next_edges += b.next_edges;
              return a;
            },
            /*grain=*/256);
      }
      stat.edges_scanned = total.scanned;
      frontier_edges = total.next_edges;
      next.Clear();
      next.AdoptList(std::move(total.found));
    }
    std::swap(cur, next);
    rounds.push_back(stat);
  }

  if (obs::Enabled()) {
    uint64_t push_rounds = 0, pull_rounds = 0, edges = 0;
    obs::LatencyHistogram* round_edges =
        obs::MetricsRegistry::Global().GetHistogram("bfs.hybrid.round_edges");
    for (const RoundStat& r : rounds) {
      (r.pull ? pull_rounds : push_rounds) += 1;
      edges += r.edges_scanned;
      round_edges->Record(static_cast<int64_t>(r.edges_scanned));
    }
    obs::AddCounter("bfs.hybrid.runs", 1);
    obs::AddCounter("bfs.hybrid.push_rounds", static_cast<int64_t>(push_rounds));
    obs::AddCounter("bfs.hybrid.pull_rounds", static_cast<int64_t>(pull_rounds));
    obs::AddCounter("bfs.hybrid.switches", static_cast<int64_t>(switches));
    obs::AddCounter("bfs.hybrid.edges_scanned", static_cast<int64_t>(edges));
  }
  return dist;
}

template <NeighborRangeGraph G>
Result<std::vector<uint32_t>> HybridMultiSourceBfsImpl(
    const G& g, std::span<const VertexId> sources, HybridBfsOptions options) {
  if (options.direction != TraversalDirection::kPush) {
    UG_RETURN_NOT_OK(g.RequireInEdges("HybridBfs (pull/auto direction)"));
  }
  if (!(options.alpha > 0.0) || !(options.beta > 0.0)) {
    return Status::Invalid("HybridBfs alpha/beta must be positive");
  }
  obs::ScopedTrace span("HybridBfs");
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool;
  if (threads > 1) pool.emplace(threads);
  return HybridBfsEngine(g, sources, options, pool ? &*pool : nullptr);
}

template <NeighborRangeGraph G>
std::vector<uint32_t> MultiSourceBfsImpl(const G& g,
                                         std::span<const VertexId> sources,
                                         BfsOptions options) {
  obs::ScopedTrace span("MultiSourceBfs");
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::vector<uint32_t> dist =
      threads <= 1 ? SerialBfs(g, sources) : ParallelBfs(g, sources, threads);
  FlushBfsStats(g, dist);
  return dist;
}

}  // namespace

Result<std::vector<uint32_t>> HybridBfs(const CsrGraph& g, VertexId source,
                                        HybridBfsOptions options) {
  VertexId sources[] = {source};
  return HybridMultiSourceBfsImpl(g, sources, options);
}

Result<std::vector<uint32_t>> HybridBfs(const CompressedCsrGraph& g,
                                        VertexId source,
                                        HybridBfsOptions options) {
  VertexId sources[] = {source};
  return HybridMultiSourceBfsImpl(g, sources, options);
}

Result<std::vector<uint32_t>> HybridMultiSourceBfs(
    const CsrGraph& g, std::span<const VertexId> sources,
    HybridBfsOptions options) {
  return HybridMultiSourceBfsImpl(g, sources, options);
}

Result<std::vector<uint32_t>> HybridMultiSourceBfs(
    const CompressedCsrGraph& g, std::span<const VertexId> sources,
    HybridBfsOptions options) {
  return HybridMultiSourceBfsImpl(g, sources, options);
}

std::vector<uint32_t> BfsDistances(const CsrGraph& g, VertexId source,
                                   BfsOptions options) {
  VertexId sources[] = {source};
  return MultiSourceBfsImpl(g, sources, options);
}

std::vector<uint32_t> BfsDistances(const CompressedCsrGraph& g, VertexId source,
                                   BfsOptions options) {
  VertexId sources[] = {source};
  return MultiSourceBfsImpl(g, sources, options);
}

std::vector<uint32_t> MultiSourceBfs(const CsrGraph& g,
                                     std::span<const VertexId> sources,
                                     BfsOptions options) {
  return MultiSourceBfsImpl(g, sources, options);
}

std::vector<uint32_t> MultiSourceBfs(const CompressedCsrGraph& g,
                                     std::span<const VertexId> sources,
                                     BfsOptions options) {
  return MultiSourceBfsImpl(g, sources, options);
}

std::vector<VertexId> BfsParents(const CsrGraph& g, VertexId source) {
  std::vector<VertexId> parent(g.num_vertices(), kInvalidVertex);
  if (source >= g.num_vertices()) return parent;
  std::deque<VertexId> queue;
  parent[source] = source;
  queue.push_back(source);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.OutNeighbors(u)) {
      if (parent[v] == kInvalidVertex) {
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return parent;
}

uint64_t BfsVisit(const CsrGraph& g, VertexId source,
                  const std::function<bool(VertexId, uint32_t)>& visit) {
  if (source >= g.num_vertices()) return 0;
  std::vector<uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  uint64_t visited = 0;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    ++visited;
    if (!visit(u, dist[u])) return visited;
    for (VertexId v : g.OutNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return visited;
}

std::vector<VertexId> DfsPreorder(const CsrGraph& g, VertexId source) {
  std::vector<VertexId> order;
  if (source >= g.num_vertices()) return order;
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> stack{source};
  seen[source] = true;
  while (!stack.empty()) {
    VertexId u = stack.back();
    stack.pop_back();
    order.push_back(u);
    // Push in reverse so adjacency order is respected on pop.
    auto nbrs = g.OutNeighbors(u);
    for (auto it = nbrs.rbegin(); it != nbrs.rend(); ++it) {
      if (!seen[*it]) {
        seen[*it] = true;
        stack.push_back(*it);
      }
    }
  }
  return order;
}

std::vector<VertexId> DfsPostorder(const CsrGraph& g, VertexId source) {
  std::vector<VertexId> order;
  if (source >= g.num_vertices()) return order;
  std::vector<bool> seen(g.num_vertices(), false);
  // (vertex, next neighbor index) explicit stack.
  std::vector<std::pair<VertexId, uint64_t>> stack;
  seen[source] = true;
  stack.emplace_back(source, 0);
  while (!stack.empty()) {
    auto& [u, i] = stack.back();
    auto nbrs = g.OutNeighbors(u);
    if (i < nbrs.size()) {
      VertexId v = nbrs[i++];
      if (!seen[v]) {
        seen[v] = true;
        stack.emplace_back(v, 0);
      }
    } else {
      order.push_back(u);
      stack.pop_back();
    }
  }
  return order;
}

DfsForest DfsFull(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  DfsForest f;
  f.discover.assign(n, kUnreachable);
  f.finish.assign(n, kUnreachable);
  f.root.assign(n, kInvalidVertex);
  f.preorder.reserve(n);
  uint32_t clock = 0;
  std::vector<std::pair<VertexId, uint64_t>> stack;
  for (VertexId r = 0; r < n; ++r) {
    if (f.discover[r] != kUnreachable) continue;
    f.discover[r] = clock++;
    f.root[r] = r;
    f.preorder.push_back(r);
    stack.emplace_back(r, 0);
    while (!stack.empty()) {
      auto& [u, i] = stack.back();
      auto nbrs = g.OutNeighbors(u);
      if (i < nbrs.size()) {
        VertexId v = nbrs[i++];
        if (f.discover[v] == kUnreachable) {
          f.discover[v] = clock++;
          f.root[v] = r;
          f.preorder.push_back(v);
          stack.emplace_back(v, 0);
        }
      } else {
        f.finish[u] = clock++;
        stack.pop_back();
      }
    }
  }
  return f;
}

std::vector<VertexId> NeighborsAtHop(const CsrGraph& g, VertexId source,
                                     uint32_t hops) {
  std::vector<VertexId> out;
  std::vector<uint32_t> dist = BfsDistances(g, source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v != source && dist[v] == hops) out.push_back(v);
  }
  return out;
}

std::vector<VertexId> NeighborsWithinHops(const CsrGraph& g, VertexId source,
                                          uint32_t hops) {
  std::vector<VertexId> out;
  std::vector<uint32_t> dist = BfsDistances(g, source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v != source && dist[v] != kUnreachable && dist[v] <= hops) out.push_back(v);
  }
  return out;
}

std::vector<uint32_t> BfsDistancesSkippingSupernodes(const CsrGraph& g,
                                                     VertexId source,
                                                     uint64_t max_degree) {
  std::vector<uint32_t> dist(g.num_vertices(), kUnreachable);
  if (source >= g.num_vertices()) return dist;
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    // Supernodes terminate paths: they are reachable but not expanded.
    if (u != source && g.OutDegree(u) > max_degree) continue;
    for (VertexId v : g.OutNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

Result<std::vector<VertexId>> TopologicalSort(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<uint64_t> indegree(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) ++indegree[v];
  }
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < n; ++v) {
    if (indegree[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    VertexId u = frontier.back();
    frontier.pop_back();
    order.push_back(u);
    for (VertexId v : g.OutNeighbors(u)) {
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  if (order.size() != n) {
    return Status::Invalid("graph contains a cycle; topological sort impossible");
  }
  return order;
}

}  // namespace ubigraph::algo
