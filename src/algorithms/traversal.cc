#include "algorithms/traversal.h"

#include <algorithm>
#include <atomic>
#include <deque>

#include "common/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ubigraph::algo {

namespace {

/// Flushes BFS counters derived from the finished distance array: one extra
/// O(V) pass when instrumentation is on, zero changes to the traversal loops
/// themselves. Every reached vertex is expanded exactly once, so edges
/// relaxed == sum of out-degrees over the reached set, and level sizes are
/// the frontier sizes.
void FlushBfsStats(const CsrGraph& g, const std::vector<uint32_t>& dist) {
  if (!obs::Enabled()) return;
  uint64_t edges_relaxed = 0, visited = 0;
  uint32_t max_depth = 0;
  std::vector<int64_t> level_sizes;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] == kUnreachable) continue;
    ++visited;
    edges_relaxed += g.OutDegree(v);
    if (dist[v] >= level_sizes.size()) level_sizes.resize(dist[v] + 1, 0);
    ++level_sizes[dist[v]];
    max_depth = std::max(max_depth, dist[v]);
  }
  obs::AddCounter("bfs.runs", 1);
  obs::AddCounter("bfs.vertices_visited", static_cast<int64_t>(visited));
  obs::AddCounter("bfs.edges_relaxed", static_cast<int64_t>(edges_relaxed));
  obs::AddCounter("bfs.rounds", visited == 0 ? 0 : max_depth + 1);
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::LatencyHistogram* frontier = reg.GetHistogram("bfs.frontier_size");
  for (int64_t size : level_sizes) frontier->Record(size);
}

/// The seed serial BFS, generalized to any number of depth-0 sources.
std::vector<uint32_t> SerialBfs(const CsrGraph& g,
                                std::span<const VertexId> sources) {
  std::vector<uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<VertexId> queue;
  for (VertexId s : sources) {
    if (s < g.num_vertices() && dist[s] == kUnreachable) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.OutNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

/// Level-synchronous BFS: each round expands the whole frontier in parallel,
/// claiming vertices with a CAS on the distance array. Depths are unique, so
/// the result is identical to SerialBfs regardless of thread interleaving.
std::vector<uint32_t> ParallelBfs(const CsrGraph& g,
                                  std::span<const VertexId> sources,
                                  unsigned threads) {
  std::vector<uint32_t> dist(g.num_vertices(), kUnreachable);
  std::vector<VertexId> frontier;
  for (VertexId s : sources) {
    if (s < g.num_vertices() && dist[s] == kUnreachable) {
      dist[s] = 0;
      frontier.push_back(s);
    }
  }
  ThreadPool pool(threads);
  uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    frontier = ParallelReduce(
        pool, 0, frontier.size(), std::vector<VertexId>{},
        [&](uint64_t b, uint64_t e) {
          std::vector<VertexId> local;
          for (uint64_t i = b; i < e; ++i) {
            for (VertexId v : g.OutNeighbors(frontier[i])) {
              uint32_t expected = kUnreachable;
              if (std::atomic_ref<uint32_t>(dist[v]).compare_exchange_strong(
                      expected, depth, std::memory_order_relaxed)) {
                local.push_back(v);
              }
            }
          }
          return local;
        },
        [](std::vector<VertexId> a, std::vector<VertexId> b) {
          a.insert(a.end(), b.begin(), b.end());
          return a;
        },
        /*grain=*/256);
  }
  return dist;
}

}  // namespace

std::vector<uint32_t> BfsDistances(const CsrGraph& g, VertexId source,
                                   BfsOptions options) {
  VertexId sources[] = {source};
  return MultiSourceBfs(g, sources, options);
}

std::vector<uint32_t> MultiSourceBfs(const CsrGraph& g,
                                     std::span<const VertexId> sources,
                                     BfsOptions options) {
  obs::ScopedTrace span("MultiSourceBfs");
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::vector<uint32_t> dist =
      threads <= 1 ? SerialBfs(g, sources) : ParallelBfs(g, sources, threads);
  FlushBfsStats(g, dist);
  return dist;
}

std::vector<VertexId> BfsParents(const CsrGraph& g, VertexId source) {
  std::vector<VertexId> parent(g.num_vertices(), kInvalidVertex);
  if (source >= g.num_vertices()) return parent;
  std::deque<VertexId> queue;
  parent[source] = source;
  queue.push_back(source);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    for (VertexId v : g.OutNeighbors(u)) {
      if (parent[v] == kInvalidVertex) {
        parent[v] = u;
        queue.push_back(v);
      }
    }
  }
  return parent;
}

uint64_t BfsVisit(const CsrGraph& g, VertexId source,
                  const std::function<bool(VertexId, uint32_t)>& visit) {
  if (source >= g.num_vertices()) return 0;
  std::vector<uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  uint64_t visited = 0;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    ++visited;
    if (!visit(u, dist[u])) return visited;
    for (VertexId v : g.OutNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return visited;
}

std::vector<VertexId> DfsPreorder(const CsrGraph& g, VertexId source) {
  std::vector<VertexId> order;
  if (source >= g.num_vertices()) return order;
  std::vector<bool> seen(g.num_vertices(), false);
  std::vector<VertexId> stack{source};
  seen[source] = true;
  while (!stack.empty()) {
    VertexId u = stack.back();
    stack.pop_back();
    order.push_back(u);
    // Push in reverse so adjacency order is respected on pop.
    auto nbrs = g.OutNeighbors(u);
    for (auto it = nbrs.rbegin(); it != nbrs.rend(); ++it) {
      if (!seen[*it]) {
        seen[*it] = true;
        stack.push_back(*it);
      }
    }
  }
  return order;
}

std::vector<VertexId> DfsPostorder(const CsrGraph& g, VertexId source) {
  std::vector<VertexId> order;
  if (source >= g.num_vertices()) return order;
  std::vector<bool> seen(g.num_vertices(), false);
  // (vertex, next neighbor index) explicit stack.
  std::vector<std::pair<VertexId, uint64_t>> stack;
  seen[source] = true;
  stack.emplace_back(source, 0);
  while (!stack.empty()) {
    auto& [u, i] = stack.back();
    auto nbrs = g.OutNeighbors(u);
    if (i < nbrs.size()) {
      VertexId v = nbrs[i++];
      if (!seen[v]) {
        seen[v] = true;
        stack.emplace_back(v, 0);
      }
    } else {
      order.push_back(u);
      stack.pop_back();
    }
  }
  return order;
}

DfsForest DfsFull(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  DfsForest f;
  f.discover.assign(n, kUnreachable);
  f.finish.assign(n, kUnreachable);
  f.root.assign(n, kInvalidVertex);
  f.preorder.reserve(n);
  uint32_t clock = 0;
  std::vector<std::pair<VertexId, uint64_t>> stack;
  for (VertexId r = 0; r < n; ++r) {
    if (f.discover[r] != kUnreachable) continue;
    f.discover[r] = clock++;
    f.root[r] = r;
    f.preorder.push_back(r);
    stack.emplace_back(r, 0);
    while (!stack.empty()) {
      auto& [u, i] = stack.back();
      auto nbrs = g.OutNeighbors(u);
      if (i < nbrs.size()) {
        VertexId v = nbrs[i++];
        if (f.discover[v] == kUnreachable) {
          f.discover[v] = clock++;
          f.root[v] = r;
          f.preorder.push_back(v);
          stack.emplace_back(v, 0);
        }
      } else {
        f.finish[u] = clock++;
        stack.pop_back();
      }
    }
  }
  return f;
}

std::vector<VertexId> NeighborsAtHop(const CsrGraph& g, VertexId source,
                                     uint32_t hops) {
  std::vector<VertexId> out;
  std::vector<uint32_t> dist = BfsDistances(g, source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v != source && dist[v] == hops) out.push_back(v);
  }
  return out;
}

std::vector<VertexId> NeighborsWithinHops(const CsrGraph& g, VertexId source,
                                          uint32_t hops) {
  std::vector<VertexId> out;
  std::vector<uint32_t> dist = BfsDistances(g, source);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v != source && dist[v] != kUnreachable && dist[v] <= hops) out.push_back(v);
  }
  return out;
}

std::vector<uint32_t> BfsDistancesSkippingSupernodes(const CsrGraph& g,
                                                     VertexId source,
                                                     uint64_t max_degree) {
  std::vector<uint32_t> dist(g.num_vertices(), kUnreachable);
  if (source >= g.num_vertices()) return dist;
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    // Supernodes terminate paths: they are reachable but not expanded.
    if (u != source && g.OutDegree(u) > max_degree) continue;
    for (VertexId v : g.OutNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

Result<std::vector<VertexId>> TopologicalSort(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<uint64_t> indegree(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) ++indegree[v];
  }
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < n; ++v) {
    if (indegree[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    VertexId u = frontier.back();
    frontier.pop_back();
    order.push_back(u);
    for (VertexId v : g.OutNeighbors(u)) {
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  if (order.size() != n) {
    return Status::Invalid("graph contains a cycle; topological sort impossible");
  }
  return order;
}

}  // namespace ubigraph::algo
