#include "algorithms/coloring.h"

#include <algorithm>

#include "algorithms/kcore.h"

namespace ubigraph::algo {

namespace {

std::vector<std::vector<VertexId>> SimpleUndirected(const CsrGraph& g) {
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  return adj;
}

std::vector<VertexId> SmallestLastOrder(
    const std::vector<std::vector<VertexId>>& adj) {
  // Repeatedly remove the minimum-degree vertex; color in reverse removal
  // order. Reuses the peeling idea from CoreDecomposition with lazy buckets.
  const VertexId n = static_cast<VertexId>(adj.size());
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(adj[v].size());
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId v = 0; v < n; ++v) buckets[degree[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::vector<VertexId> removal;
  removal.reserve(n);
  uint32_t d = 0;
  while (removal.size() < n) {
    while (d <= max_degree && buckets[d].empty()) ++d;
    if (d > max_degree) break;
    VertexId v = buckets[d].back();
    buckets[d].pop_back();
    if (removed[v] || degree[v] != d) continue;
    removed[v] = true;
    removal.push_back(v);
    for (VertexId u : adj[v]) {
      if (!removed[u]) {
        --degree[u];
        buckets[degree[u]].push_back(u);
        if (degree[u] < d) d = degree[u];
      }
    }
  }
  std::reverse(removal.begin(), removal.end());
  return removal;
}

}  // namespace

ColoringResult GreedyColoring(const CsrGraph& g, ColoringOrder order) {
  auto adj = SimpleUndirected(g);
  const VertexId n = g.num_vertices();
  std::vector<VertexId> sequence(n);
  for (VertexId v = 0; v < n; ++v) sequence[v] = v;

  switch (order) {
    case ColoringOrder::kVertexId:
      break;
    case ColoringOrder::kLargestFirst:
      std::stable_sort(sequence.begin(), sequence.end(),
                       [&](VertexId a, VertexId b) {
                         return adj[a].size() > adj[b].size();
                       });
      break;
    case ColoringOrder::kSmallestLast:
      sequence = SmallestLastOrder(adj);
      break;
  }

  ColoringResult r;
  r.color.assign(n, UINT32_MAX);
  // forbidden_at[c] == stamp means color c is used by a neighbor of the
  // current vertex; the stamp trick avoids clearing the array per vertex.
  std::vector<uint32_t> forbidden_at(n + 1, 0);
  uint32_t stamp = 0;
  for (VertexId v : sequence) {
    ++stamp;
    for (VertexId u : adj[v]) {
      if (r.color[u] != UINT32_MAX) forbidden_at[r.color[u]] = stamp;
    }
    uint32_t c = 0;
    while (forbidden_at[c] == stamp) ++c;
    r.color[v] = c;
    r.num_colors = std::max(r.num_colors, c + 1);
  }
  return r;
}

bool IsProperColoring(const CsrGraph& g, const std::vector<uint32_t>& color) {
  if (color.size() != g.num_vertices()) return false;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u != v && color[u] == color[v]) return false;
    }
  }
  return true;
}

}  // namespace ubigraph::algo
