// Aggregations (Table 9: "e.g., counting the number of triangles"): triangle
// counting, clustering coefficients, and degree statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.h"

namespace ubigraph::algo {

struct TriangleCountOptions {
  /// 0 = hardware_concurrency, 1 = exact serial path (default), >= 2 = that
  /// many workers. Counts are integers, so parallel results are exact.
  uint32_t num_threads = 1;
};

/// Counts triangles in an undirected simple graph (each triangle once) via
/// the forward/degree-ordered merge algorithm. Requires sorted neighbors.
/// On directed graphs the direction is ignored (the symmetrized closure is
/// counted), matching how the survey software (NetworkX etc.) treats it.
uint64_t CountTriangles(const CsrGraph& g, TriangleCountOptions options = {});

/// Per-vertex triangle participation counts (each triangle increments all
/// three corners).
std::vector<uint64_t> TrianglesPerVertex(const CsrGraph& g);

/// Local clustering coefficient per vertex: 2*tri(v) / (deg(v)*(deg(v)-1)).
std::vector<double> LocalClusteringCoefficients(const CsrGraph& g);

/// Average of local clustering coefficients over vertices with degree >= 2.
double AverageClusteringCoefficient(const CsrGraph& g);

/// Global coefficient: 3 * triangles / open-or-closed wedges.
double GlobalClusteringCoefficient(const CsrGraph& g);

/// Degree distribution: counts[d] = #vertices with out-degree d.
std::vector<uint64_t> DegreeHistogram(const CsrGraph& g);

/// Basic degree statistics for summary tables.
struct DegreeStats {
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
};
DegreeStats ComputeDegreeStats(const CsrGraph& g);

}  // namespace ubigraph::algo
