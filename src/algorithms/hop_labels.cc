#include "algorithms/hop_labels.h"

#include <algorithm>
#include <deque>

namespace ubigraph::algo {

Result<HopLabelIndex> HopLabelIndex::Build(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  HopLabelIndex idx;
  idx.labels_.resize(n);
  if (n == 0) return idx;

  // Undirected adjacency.
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      adj[u].push_back(v);
      if (g.directed()) adj[v].push_back(u);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  // Landmark order: descending degree (hubs first prune the most).
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (adj[a].size() != adj[b].size()) return adj[a].size() > adj[b].size();
    return a < b;
  });
  // rank[v] = position of v in landmark order; labels store ranks so that a
  // label list sorted by insertion time is sorted by rank.
  std::vector<VertexId> rank(n);
  for (VertexId i = 0; i < n; ++i) rank[order[i]] = i;

  // Query-with-partial-labels helper used for pruning during construction.
  auto query_upper_bound = [&](VertexId u, VertexId v) -> uint32_t {
    const auto& lu = idx.labels_[u];
    const auto& lv = idx.labels_[v];
    uint32_t best = UINT32_MAX;
    size_t i = 0, j = 0;
    while (i < lu.size() && j < lv.size()) {
      if (lu[i].landmark < lv[j].landmark) ++i;
      else if (lu[i].landmark > lv[j].landmark) ++j;
      else {
        uint32_t d = lu[i].distance + lv[j].distance;
        best = std::min(best, d);
        ++i;
        ++j;
      }
    }
    return best;
  };

  std::vector<uint32_t> dist(n, UINT32_MAX);
  std::deque<VertexId> queue;
  std::vector<VertexId> touched;

  for (VertexId li = 0; li < n; ++li) {
    VertexId root = order[li];
    // Pruned BFS from the landmark.
    dist[root] = 0;
    queue.push_back(root);
    touched.push_back(root);
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop_front();
      // Prune: if existing labels already certify dist(root, u) <= d, skip.
      if (query_upper_bound(root, u) <= dist[u]) continue;
      idx.labels_[u].push_back(Entry{li, dist[u]});
      for (VertexId v : adj[u]) {
        if (dist[v] == UINT32_MAX) {
          dist[v] = dist[u] + 1;
          queue.push_back(v);
          touched.push_back(v);
        }
      }
    }
    for (VertexId v : touched) dist[v] = UINT32_MAX;
    touched.clear();
  }
  return idx;
}

uint32_t HopLabelIndex::Distance(VertexId u, VertexId v) const {
  if (u >= labels_.size() || v >= labels_.size()) return UINT32_MAX;
  if (u == v) return 0;
  const auto& lu = labels_[u];
  const auto& lv = labels_[v];
  uint32_t best = UINT32_MAX;
  size_t i = 0, j = 0;
  while (i < lu.size() && j < lv.size()) {
    if (lu[i].landmark < lv[j].landmark) ++i;
    else if (lu[i].landmark > lv[j].landmark) ++j;
    else {
      uint32_t d = lu[i].distance + lv[j].distance;
      best = std::min(best, d);
      ++i;
      ++j;
    }
  }
  return best;
}

uint64_t HopLabelIndex::TotalLabelEntries() const {
  uint64_t total = 0;
  for (const auto& l : labels_) total += l.size();
  return total;
}

double HopLabelIndex::AverageLabelSize() const {
  if (labels_.empty()) return 0.0;
  return static_cast<double>(TotalLabelEntries()) /
         static_cast<double>(labels_.size());
}

}  // namespace ubigraph::algo
