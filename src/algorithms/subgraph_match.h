// Subgraph matching (Table 9: "finding all diamond patterns, SPARQL" —
// 33/89 participants, 21 papers). VF2-style backtracking subgraph isomorphism
// over CSR graphs, plus closed-form motif counting helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

struct SubgraphMatchOptions {
  /// Stop after this many embeddings (0 = unlimited).
  uint64_t max_matches = 0;
  /// Treat pattern/data edges as undirected.
  bool undirected = false;
  /// Require injective mapping (subgraph isomorphism); false gives
  /// homomorphisms (SPARQL-style semantics).
  bool injective = true;
};

/// Finds embeddings of `pattern` in `data`. Each match maps pattern vertex i
/// to match[i] in the data graph. The callback returns false to stop the
/// enumeration. Returns the number of matches emitted.
uint64_t MatchSubgraph(const CsrGraph& data, const CsrGraph& pattern,
                       const SubgraphMatchOptions& options,
                       const std::function<bool(const std::vector<VertexId>&)>& emit);

/// Counts embeddings (convenience wrapper).
uint64_t CountSubgraphMatches(const CsrGraph& data, const CsrGraph& pattern,
                              SubgraphMatchOptions options = {});

/// Counts diamonds (4-cycles with a chord, i.e. two triangles sharing an
/// edge) in the undirected view of g.
uint64_t CountDiamonds(const CsrGraph& g);

/// Counts (not necessarily induced) 4-cliques in the undirected view.
uint64_t CountFourCliques(const CsrGraph& g);

/// Builds small canonical patterns for tests/benches.
CsrGraph MakeTrianglePattern();
CsrGraph MakePathPattern(uint32_t length);
CsrGraph MakeStarPattern(uint32_t leaves);
CsrGraph MakeDiamondPattern();

}  // namespace ubigraph::algo
