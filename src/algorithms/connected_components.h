// Connected components — the survey's most-used graph computation (Table 9,
// 55/89 participants). Weakly connected components via union-find or BFS, and
// strongly connected components via iterative Tarjan.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph {
class CompressedCsrGraph;
}

namespace ubigraph::algo {

/// Disjoint-set forest with union by rank and path halving.
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  size_t Find(size_t x);
  /// Returns true if the two sets were merged (false if already joined).
  bool Union(size_t a, size_t b);
  size_t num_sets() const { return num_sets_; }
  size_t size() const { return parent_.size(); }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_sets_;
};

/// Component labeling: label[v] in [0, num_components), labels assigned in
/// order of the smallest vertex in each component.
struct ComponentResult {
  std::vector<uint32_t> label;
  uint32_t num_components = 0;

  /// Size of each component.
  std::vector<uint64_t> ComponentSizes() const;
  /// Index of the largest component.
  uint32_t LargestComponent() const;
};

/// Weakly connected components (edge direction ignored) via union-find.
/// Works on directed or undirected CSR without needing the in-edge index.
/// The CompressedCsrGraph overload shares the implementation through the
/// NeighborRangeGraph seam and yields identical labels.
ComponentResult WeaklyConnectedComponents(const CsrGraph& g);
ComponentResult WeaklyConnectedComponents(const CompressedCsrGraph& g);

/// Same result computed by repeated BFS over the symmetrized graph — kept as
/// an independent oracle for tests and as the survey's "BFS-based CC" variant.
/// Fails with InvalidArgument on a directed graph without the in-edge index.
Result<ComponentResult> ConnectedComponentsBfs(const CsrGraph& g);

struct ComponentsOptions {
  /// 0 = hardware_concurrency, 1 = exact serial path (default), >= 2 = that
  /// many workers.
  uint32_t num_threads = 1;
  /// When true, each round only re-evaluates vertices with an active neighbor
  /// (a Frontier-tracked working set) instead of sweeping all n vertices.
  /// This variant drops pointer jumping (a vertex's current representative is
  /// not a graph neighbor, so it could not be re-activated through the
  /// frontier) — plain min-label Jacobi — so it usually runs more, cheaper
  /// rounds. The fixpoint labels are identical either way.
  bool use_frontier = false;
};

/// Weak components by Jacobi min-label propagation: each round computes
/// next[v] = min(cur[v], cur[cur[v]], min over neighbor labels) from the
/// previous round's labels only, so the fixpoint (and every intermediate
/// round) is deterministic at any thread count. Labels match
/// WeaklyConnectedComponents exactly.
/// Fails with InvalidArgument on a directed graph without the in-edge index.
Result<ComponentResult> ConnectedComponentsLabelProp(
    const CsrGraph& g, ComponentsOptions options = {});
Result<ComponentResult> ConnectedComponentsLabelProp(
    const CompressedCsrGraph& g, ComponentsOptions options = {});

/// Strongly connected components (Tarjan, iterative). Labels are assigned in
/// reverse topological order of the condensation (standard Tarjan order).
ComponentResult StronglyConnectedComponents(const CsrGraph& g);

/// Vertices in components of size 1 — the survey's "remove singleton
/// vertices" cleaning step (§4.1).
std::vector<VertexId> SingletonVertices(const CsrGraph& g);

}  // namespace ubigraph::algo
