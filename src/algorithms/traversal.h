// BFS / DFS traversals (Table 11 of the survey: the fundamental traversals
// participants build their algorithms from), plus k-hop neighborhood queries
// (Table 9, 2nd most used computation: "finding 2-degree neighbors").
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/csr_graph.h"

namespace ubigraph {
class CompressedCsrGraph;
}

namespace ubigraph::algo {

inline constexpr uint32_t kUnreachable = UINT32_MAX;

struct BfsOptions {
  /// 0 = hardware_concurrency, 1 = exact serial path (default), >= 2 = that
  /// many workers running level-synchronous BFS. Distances are identical to
  /// the serial traversal at any thread count (BFS depths are unique).
  uint32_t num_threads = 1;
};

/// BFS from `source`; returns hop distance per vertex (kUnreachable if not
/// reached). The CompressedCsrGraph overloads run the same engine through the
/// NeighborRangeGraph seam and return identical distances.
std::vector<uint32_t> BfsDistances(const CsrGraph& g, VertexId source,
                                   BfsOptions options = {});
std::vector<uint32_t> BfsDistances(const CompressedCsrGraph& g, VertexId source,
                                   BfsOptions options = {});

/// Multi-source BFS: hop distance to the nearest source (all sources at depth
/// 0; duplicate or out-of-range sources are ignored). The building block for
/// landmark distance sketches and parallel closeness estimation.
std::vector<uint32_t> MultiSourceBfs(const CsrGraph& g,
                                     std::span<const VertexId> sources,
                                     BfsOptions options = {});
std::vector<uint32_t> MultiSourceBfs(const CompressedCsrGraph& g,
                                     std::span<const VertexId> sources,
                                     BfsOptions options = {});

/// Which side of an edge a traversal round expands from.
enum class TraversalDirection : uint8_t {
  /// Top-down: expand the frontier's out-edges (classic BFS).
  kPush,
  /// Bottom-up: every unreached vertex scans its in-edges for a frontier
  /// parent. Wins when the frontier covers most remaining edges.
  kPull,
  /// Beamer-style direction optimization: start push, switch per-round on
  /// the edge-work heuristic below.
  kAuto,
};

struct HybridBfsOptions {
  /// 0 = hardware_concurrency, 1 = exact serial path (default), >= 2 = that
  /// many workers. Distances are identical at any thread count and in any
  /// direction mode (BFS depths are unique).
  uint32_t num_threads = 1;
  TraversalDirection direction = TraversalDirection::kAuto;
  /// kAuto switches push -> pull when the frontier's out-edge count exceeds
  /// |E| / alpha ...
  double alpha = 15.0;
  /// ... and back to push when the frontier shrinks below |V| / beta.
  double beta = 18.0;
};

/// Direction-optimizing BFS from `source` (out-of-range sources yield an
/// all-unreachable result). Requires the in-edge index on directed graphs
/// unless direction == kPush; fails with InvalidArgument otherwise. Switch
/// decisions and per-round edge work land in the obs registry under
/// `bfs.hybrid.*`.
Result<std::vector<uint32_t>> HybridBfs(const CsrGraph& g, VertexId source,
                                        HybridBfsOptions options = {});
Result<std::vector<uint32_t>> HybridBfs(const CompressedCsrGraph& g,
                                        VertexId source,
                                        HybridBfsOptions options = {});

/// Multi-source variant (all sources at depth 0; duplicates and out-of-range
/// sources are ignored).
Result<std::vector<uint32_t>> HybridMultiSourceBfs(
    const CsrGraph& g, std::span<const VertexId> sources,
    HybridBfsOptions options = {});
Result<std::vector<uint32_t>> HybridMultiSourceBfs(
    const CompressedCsrGraph& g, std::span<const VertexId> sources,
    HybridBfsOptions options = {});

/// BFS returning the parent tree (parent[source] == source,
/// kInvalidVertex if unreached).
std::vector<VertexId> BfsParents(const CsrGraph& g, VertexId source);

/// Visits vertices in BFS order; visitor returns false to stop early.
/// Returns the number of vertices visited.
uint64_t BfsVisit(const CsrGraph& g, VertexId source,
                  const std::function<bool(VertexId, uint32_t depth)>& visit);

/// Iterative DFS preorder from `source` (neighbor order = adjacency order).
std::vector<VertexId> DfsPreorder(const CsrGraph& g, VertexId source);

/// Iterative DFS postorder from `source`.
std::vector<VertexId> DfsPostorder(const CsrGraph& g, VertexId source);

/// Full-graph DFS: preorder over all roots in ascending id order. Also
/// reports discovery/finish clocks — reusable for SCC/topo-sort tests.
struct DfsForest {
  std::vector<VertexId> preorder;
  std::vector<uint32_t> discover;  // per vertex
  std::vector<uint32_t> finish;    // per vertex
  std::vector<VertexId> root;      // per vertex: root of its DFS tree
};
DfsForest DfsFull(const CsrGraph& g);

/// All vertices within exactly `hops` BFS hops of source (excluding source).
std::vector<VertexId> NeighborsAtHop(const CsrGraph& g, VertexId source, uint32_t hops);

/// All vertices within at most `hops` BFS hops of source (excluding source).
std::vector<VertexId> NeighborsWithinHops(const CsrGraph& g, VertexId source,
                                          uint32_t hops);

/// Topological order of a DAG; fails with Invalid if the graph has a cycle.
Result<std::vector<VertexId>> TopologicalSort(const CsrGraph& g);

/// High-degree vertex handling — the most-reported graph-database challenge
/// (Table 19: 24 email threads): "skip finding paths that go over such
/// vertices". BFS distances where vertices with out-degree > `max_degree` may
/// be *reached* but are never *expanded* (paths cannot route through
/// supernodes). The source is always expanded.
std::vector<uint32_t> BfsDistancesSkippingSupernodes(const CsrGraph& g,
                                                     VertexId source,
                                                     uint64_t max_degree);

}  // namespace ubigraph::algo
