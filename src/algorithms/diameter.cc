#include "algorithms/diameter.h"

#include <algorithm>

#include "algorithms/traversal.h"

namespace ubigraph::algo {

namespace {

/// Max finite BFS distance from v, and the vertex attaining it.
std::pair<uint32_t, VertexId> Eccentricity(const CsrGraph& g, VertexId v) {
  std::vector<uint32_t> dist = BfsDistances(g, v);
  uint32_t ecc = 0;
  VertexId far = v;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (dist[u] != kUnreachable && dist[u] > ecc) {
      ecc = dist[u];
      far = u;
    }
  }
  return {ecc, far};
}

}  // namespace

uint32_t ExactDiameter(const CsrGraph& g) {
  uint32_t best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    best = std::max(best, Eccentricity(g, v).first);
  }
  return best;
}

uint32_t DoubleSweepLowerBound(const CsrGraph& g, VertexId seed) {
  if (g.num_vertices() == 0) return 0;
  if (seed >= g.num_vertices()) seed = 0;
  auto [ecc1, far1] = Eccentricity(g, seed);
  (void)ecc1;
  auto [ecc2, far2] = Eccentricity(g, far1);
  (void)far2;
  return ecc2;
}

DiameterEstimate EstimateDiameterIfub(const CsrGraph& g, uint32_t budget,
                                      Rng* rng) {
  DiameterEstimate est;
  const VertexId n = g.num_vertices();
  if (n == 0) return est;

  // Initialize with a double sweep from a random seed.
  VertexId seed = static_cast<VertexId>(rng->NextBounded(n));
  auto [ecc_seed, far1] = Eccentricity(g, seed);
  (void)ecc_seed;
  auto [lb, far2] = Eccentricity(g, far1);
  (void)far2;
  est.lower_bound = lb;
  est.upper_bound = 2 * lb;  // BFS-tree bound: diam <= 2 * ecc of any vertex

  uint32_t spent = 3;
  while (spent < budget && est.lower_bound < est.upper_bound) {
    VertexId probe = static_cast<VertexId>(rng->NextBounded(n));
    auto [ecc, far] = Eccentricity(g, probe);
    (void)far;
    est.lower_bound = std::max(est.lower_bound, ecc);
    est.upper_bound = std::min(est.upper_bound, 2 * ecc);
    ++spent;
  }
  if (est.upper_bound < est.lower_bound) est.upper_bound = est.lower_bound;
  est.exact = est.lower_bound == est.upper_bound;
  return est;
}

double EffectiveDiameter(const CsrGraph& g, uint32_t num_samples, Rng* rng,
                         double percentile) {
  const VertexId n = g.num_vertices();
  if (n == 0 || num_samples == 0) return 0.0;
  std::vector<uint32_t> all;
  for (uint32_t i = 0; i < num_samples; ++i) {
    VertexId s = static_cast<VertexId>(rng->NextBounded(n));
    std::vector<uint32_t> dist = BfsDistances(g, s);
    for (VertexId u = 0; u < n; ++u) {
      if (u != s && dist[u] != kUnreachable) all.push_back(dist[u]);
    }
  }
  if (all.empty()) return 0.0;
  std::sort(all.begin(), all.end());
  size_t idx = static_cast<size_t>(percentile * static_cast<double>(all.size() - 1));
  return all[idx];
}

}  // namespace ubigraph::algo
