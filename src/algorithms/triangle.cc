#include "algorithms/triangle.h"

#include <algorithm>
#include <cassert>

#include "common/parallel.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ubigraph::algo {

namespace {

/// Deduplicated, sorted, loop-free undirected adjacency (u's neighbors).
std::vector<std::vector<VertexId>> SimpleUndirectedAdjacency(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      adj[u].push_back(v);
      if (g.directed()) adj[v].push_back(u);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  return adj;
}

uint64_t SortedIntersectionSize(const std::vector<VertexId>& a,
                                const std::vector<VertexId>& b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) ++i;
    else if (a[i] > b[j]) ++j;
    else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

uint64_t CountTriangles(const CsrGraph& g, TriangleCountOptions options) {
  obs::ScopedTrace span("CountTriangles");
  Timer timer;
  auto adj = SimpleUndirectedAdjacency(g);
  const VertexId n = g.num_vertices();
  // Forward algorithm: orient each edge from lower-(degree, id) to higher and
  // intersect forward-neighbor lists.
  auto rank_less = [&](VertexId a, VertexId b) {
    if (adj[a].size() != adj[b].size()) return adj[a].size() < adj[b].size();
    return a < b;
  };
  std::vector<std::vector<VertexId>> fwd(n);
  auto build_fwd = [&](uint64_t b, uint64_t e) {
    for (uint64_t i = b; i < e; ++i) {
      VertexId u = static_cast<VertexId>(i);
      for (VertexId v : adj[u]) {
        if (rank_less(u, v)) fwd[u].push_back(v);
      }
      std::sort(fwd[u].begin(), fwd[u].end());
    }
  };
  // Per-vertex intersection counts over [b, e); reads fwd only.
  auto count_range = [&](uint64_t b, uint64_t e) {
    uint64_t triangles = 0;
    for (uint64_t i = b; i < e; ++i) {
      VertexId u = static_cast<VertexId>(i);
      for (VertexId v : fwd[u]) {
        triangles += SortedIntersectionSize(fwd[u], fwd[v]);
      }
    }
    return triangles;
  };

  const unsigned threads = ResolveNumThreads(options.num_threads);
  uint64_t triangles;
  if (threads <= 1) {
    build_fwd(0, n);
    triangles = count_range(0, n);
  } else {
    ThreadPool pool(threads);
    // Dynamic scheduling: power-law degree skew makes static blocks lopsided.
    ParallelForChunks(pool, 0, n, build_fwd, Schedule::kDynamic, /*grain=*/512);
    triangles = ParallelReduce(pool, 0, n, uint64_t{0}, count_range,
                               [](uint64_t a, uint64_t b) { return a + b; },
                               /*grain=*/512);
  }
  obs::AddCounter("triangle.runs", 1);
  obs::AddCounter("triangle.triangles_found", static_cast<int64_t>(triangles));
  obs::RecordLatency("triangle.latency_us",
                     static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  return triangles;
}

std::vector<uint64_t> TrianglesPerVertex(const CsrGraph& g) {
  auto adj = SimpleUndirectedAdjacency(g);
  const VertexId n = g.num_vertices();
  std::vector<uint64_t> tri(n, 0);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : adj[u]) {
      if (v <= u) continue;  // each undirected edge once
      // Common neighbors w of (u, v) with w > v close a triangle counted once;
      // but for per-vertex counts we need every triangle at every corner, so
      // count all common neighbors and credit u, v, w for w > v only.
      size_t i = 0, j = 0;
      const auto& au = adj[u];
      const auto& av = adj[v];
      while (i < au.size() && j < av.size()) {
        if (au[i] < av[j]) ++i;
        else if (au[i] > av[j]) ++j;
        else {
          VertexId w = au[i];
          if (w > v) {
            ++tri[u];
            ++tri[v];
            ++tri[w];
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return tri;
}

std::vector<double> LocalClusteringCoefficients(const CsrGraph& g) {
  auto adj = SimpleUndirectedAdjacency(g);
  std::vector<uint64_t> tri = TrianglesPerVertex(g);
  std::vector<double> out(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t d = adj[v].size();
    if (d >= 2) {
      out[v] = 2.0 * static_cast<double>(tri[v]) /
               (static_cast<double>(d) * static_cast<double>(d - 1));
    }
  }
  return out;
}

double AverageClusteringCoefficient(const CsrGraph& g) {
  auto adj = SimpleUndirectedAdjacency(g);
  std::vector<double> local = LocalClusteringCoefficients(g);
  double sum = 0.0;
  uint64_t count = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (adj[v].size() >= 2) {
      sum += local[v];
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

double GlobalClusteringCoefficient(const CsrGraph& g) {
  auto adj = SimpleUndirectedAdjacency(g);
  uint64_t wedges = 0;
  for (const auto& a : adj) {
    uint64_t d = a.size();
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(CountTriangles(g)) / static_cast<double>(wedges);
}

std::vector<uint64_t> DegreeHistogram(const CsrGraph& g) {
  std::vector<uint64_t> counts;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t d = g.OutDegree(v);
    if (d >= counts.size()) counts.resize(d + 1, 0);
    ++counts[d];
  }
  return counts;
}

DegreeStats ComputeDegreeStats(const CsrGraph& g) {
  DegreeStats s;
  const VertexId n = g.num_vertices();
  if (n == 0) return s;
  s.min = UINT64_MAX;
  uint64_t total = 0;
  for (VertexId v = 0; v < n; ++v) {
    uint64_t d = g.OutDegree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    total += d;
  }
  s.mean = static_cast<double>(total) / n;
  return s;
}

}  // namespace ubigraph::algo
