#include "algorithms/simrank.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace ubigraph::algo {

Result<SimRankResult> SimRank(const CsrGraph& g, SimRankOptions options) {
  const VertexId n = g.num_vertices();
  if (options.decay <= 0.0 || options.decay >= 1.0) {
    return Status::Invalid("decay must be in (0, 1)");
  }
  if (g.directed() && !g.has_in_edges()) {
    return Status::Invalid("SimRank on a directed graph requires in-edges");
  }
  if (static_cast<uint64_t>(n) * n > (1ULL << 28)) {
    return Status::ResourceExhausted(
        "SimRank matrix too large; use SimRankPairMonteCarlo");
  }

  SimRankResult r;
  r.n = n;
  r.matrix.assign(static_cast<size_t>(n) * n, 0.0);
  std::vector<double> next(r.matrix.size(), 0.0);
  for (VertexId v = 0; v < n; ++v) r.matrix[static_cast<size_t>(v) * n + v] = 1.0;

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (VertexId a = 0; a < n; ++a) {
      auto ia = g.InNeighbors(a);
      for (VertexId b = 0; b < n; ++b) {
        if (a == b) {
          next[static_cast<size_t>(a) * n + b] = 1.0;
          continue;
        }
        auto ib = g.InNeighbors(b);
        double val = 0.0;
        if (!ia.empty() && !ib.empty()) {
          double sum = 0.0;
          for (VertexId u : ia) {
            const double* row = r.matrix.data() + static_cast<size_t>(u) * n;
            for (VertexId v : ib) sum += row[v];
          }
          val = options.decay * sum /
                (static_cast<double>(ia.size()) * static_cast<double>(ib.size()));
        }
        size_t at = static_cast<size_t>(a) * n + b;
        max_delta = std::max(max_delta, std::abs(val - r.matrix[at]));
        next[at] = val;
      }
    }
    r.matrix.swap(next);
    r.iterations = iter + 1;
    if (max_delta < options.tolerance) {
      r.converged = true;
      break;
    }
  }
  return r;
}

Result<double> SimRankPairMonteCarlo(const CsrGraph& g, VertexId a, VertexId b,
                                     uint32_t num_walks, uint32_t walk_length,
                                     double decay, uint64_t seed) {
  if (a >= g.num_vertices() || b >= g.num_vertices()) {
    return Status::OutOfRange("vertex out of range");
  }
  if (g.directed() && !g.has_in_edges()) {
    return Status::Invalid("requires in-edges on directed graphs");
  }
  if (a == b) return 1.0;
  if (num_walks == 0) return Status::Invalid("num_walks must be positive");

  // SimRank(a, b) = E[ decay^T ] where T is the first meeting time of two
  // independent reverse random walks from a and b (infinite if never).
  Rng rng(seed);
  double total = 0.0;
  for (uint32_t w = 0; w < num_walks; ++w) {
    VertexId x = a, y = b;
    for (uint32_t step = 1; step <= walk_length; ++step) {
      auto ix = g.InNeighbors(x);
      auto iy = g.InNeighbors(y);
      if (ix.empty() || iy.empty()) break;
      x = ix[rng.NextBounded(ix.size())];
      y = iy[rng.NextBounded(iy.size())];
      if (x == y) {
        total += std::pow(decay, static_cast<double>(step));
        break;
      }
    }
  }
  return total / num_walks;
}

namespace {

std::vector<VertexId> SortedUniqueNeighbors(const CsrGraph& g, VertexId v) {
  auto nbrs = g.OutNeighbors(v);
  std::vector<VertexId> out(nbrs.begin(), nbrs.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

double JaccardSimilarity(const CsrGraph& g, VertexId a, VertexId b) {
  auto na = SortedUniqueNeighbors(g, a);
  auto nb = SortedUniqueNeighbors(g, b);
  if (na.empty() && nb.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < na.size() && j < nb.size()) {
    if (na[i] < nb[j]) ++i;
    else if (na[i] > nb[j]) ++j;
    else {
      ++inter;
      ++i;
      ++j;
    }
  }
  size_t uni = na.size() + nb.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

double CosineSimilarity(const CsrGraph& g, VertexId a, VertexId b) {
  auto na = SortedUniqueNeighbors(g, a);
  auto nb = SortedUniqueNeighbors(g, b);
  if (na.empty() || nb.empty()) return 0.0;
  size_t i = 0, j = 0, inter = 0;
  while (i < na.size() && j < nb.size()) {
    if (na[i] < nb[j]) ++i;
    else if (na[i] > nb[j]) ++j;
    else {
      ++inter;
      ++i;
      ++j;
    }
  }
  return static_cast<double>(inter) /
         std::sqrt(static_cast<double>(na.size()) * static_cast<double>(nb.size()));
}

}  // namespace ubigraph::algo
