// Minimum spanning tree / forest (Table 9: 9/89 participants): Kruskal and
// Prim over the undirected weighted view of a graph.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

struct MstResult {
  std::vector<Edge> edges;   // tree/forest edges with src < dst
  double total_weight = 0.0;
  uint32_t num_trees = 0;    // number of connected components spanned
};

/// Kruskal's algorithm (sort + union-find). Direction is ignored; parallel
/// edges keep the lightest instance.
MstResult MinimumSpanningForestKruskal(const CsrGraph& g);

/// Prim's algorithm with a binary heap, run from every unvisited vertex so
/// disconnected graphs yield a forest.
MstResult MinimumSpanningForestPrim(const CsrGraph& g);

}  // namespace ubigraph::algo
