#include "algorithms/centrality.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <span>
#include <utility>

#include "algorithms/traversal.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "graph/compressed_csr.h"
#include "graph/frontier.h"
#include "graph/graph_traits.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ubigraph::algo {

namespace {

/// Chunk-count cap for the source-batched reductions: the grain is derived
/// from the source count so the chunk map — and with it the combine tree —
/// is a pure function of the input, never of the worker count. It also
/// bounds transient memory at ~kSourceChunks partial score arrays.
constexpr uint64_t kSourceChunks = 32;

inline uint64_t SourceGrain(uint64_t count) {
  return std::max<uint64_t>(1, (count + kSourceChunks - 1) / kSourceChunks);
}

/// Reusable per-chunk workspace: one allocation set per chunk instead of one
/// per source (the old code rebuilt a vector-of-pred-lists every source).
struct BrandesScratch {
  std::vector<uint32_t> dist;
  std::vector<double> sigma;
  std::vector<double> delta;
  Frontier cur, next;
  std::vector<VertexId> order;        // concatenated per-level frontiers
  std::vector<size_t> level_start;    // offsets into `order`, plus sentinel
};

/// One Brandes accumulation from `source` into `acc`. The forward pass is a
/// level-synchronous BFS over the shared Frontier representation (the same
/// frontiers HybridBfs builds); the backward pass walks the recorded levels
/// deepest-first and reads successors directly from the adjacency instead of
/// materializing predecessor lists — dist[v] == dist[u] + 1 identifies a DAG
/// edge just as cheaply.
template <NeighborRangeGraph G>
void BrandesFromSource(const G& g, VertexId source, BrandesScratch* s,
                       std::vector<double>* acc, uint64_t* edges_scanned) {
  const VertexId n = g.num_vertices();
  s->dist.assign(n, kUnreachable);
  s->sigma.assign(n, 0.0);
  s->delta.assign(n, 0.0);
  s->order.clear();
  s->level_start.clear();
  s->cur.Reset(n);
  s->next.Reset(n);

  s->dist[source] = 0;
  s->sigma[source] = 1.0;
  s->cur.Push(source);
  while (!s->cur.empty()) {
    s->level_start.push_back(s->order.size());
    for (VertexId u : s->cur.Vertices()) s->order.push_back(u);
    for (VertexId u : s->cur.Vertices()) {
      const uint32_t dv = s->dist[u] + 1;
      for (VertexId v : g.OutNeighbors(u)) {
        if (s->dist[v] == kUnreachable) {
          s->dist[v] = dv;
          s->next.Push(v);
        }
        if (s->dist[v] == dv) s->sigma[v] += s->sigma[u];
      }
      *edges_scanned += g.OutDegree(u);
    }
    std::swap(s->cur, s->next);
    s->next.Clear();
  }
  s->level_start.push_back(s->order.size());

  for (size_t level = s->level_start.size() - 1; level-- > 0;) {
    for (size_t i = s->level_start[level]; i < s->level_start[level + 1]; ++i) {
      const VertexId u = s->order[i];
      const uint32_t dv = s->dist[u] + 1;
      double d = 0.0;
      for (VertexId v : g.OutNeighbors(u)) {
        if (s->dist[v] == dv) d += s->sigma[u] / s->sigma[v] * (1.0 + s->delta[v]);
      }
      s->delta[u] += d;
      if (u != source) (*acc)[u] += s->delta[u];
    }
  }
}

struct BrandesPartial {
  std::vector<double> acc;
  uint64_t edges_scanned = 0;
};

/// Accumulates Brandes contributions from `sources`, batched over the pool.
/// Chunking and the combine tree depend only on the source count, so the
/// result is bitwise-identical at every thread count.
template <NeighborRangeGraph G>
std::vector<double> AccumulateBrandes(const G& g,
                                      std::span<const VertexId> sources,
                                      unsigned threads,
                                      uint64_t* edges_scanned) {
  const VertexId n = g.num_vertices();
  if (sources.empty()) return std::vector<double>(n, 0.0);
  auto map = [&g, sources, n](uint64_t b, uint64_t e) {
    BrandesPartial p;
    p.acc.assign(n, 0.0);
    BrandesScratch scratch;
    for (uint64_t i = b; i < e; ++i) {
      BrandesFromSource(g, sources[i], &scratch, &p.acc, &p.edges_scanned);
    }
    return p;
  };
  auto combine = [n](BrandesPartial a, BrandesPartial b) {
    for (VertexId v = 0; v < n; ++v) a.acc[v] += b.acc[v];
    a.edges_scanned += b.edges_scanned;
    return a;
  };
  const uint64_t grain = SourceGrain(sources.size());
  BrandesPartial total;
  if (threads > 1) {
    ThreadPool pool(threads);
    total = ParallelReduce(pool, 0, sources.size(), BrandesPartial{}, map,
                           combine, grain);
  } else {
    total = SerialChunkReduce(0, sources.size(), BrandesPartial{}, map, combine,
                              grain);
  }
  *edges_scanned += total.edges_scanned;
  return std::move(total.acc);
}

void FlushBetweennessObs(uint64_t sources, uint64_t edges, const Timer& timer) {
  if (!obs::Enabled()) return;
  obs::AddCounter("centrality.brandes.runs", 1);
  obs::AddCounter("centrality.brandes.sources", static_cast<int64_t>(sources));
  obs::AddCounter("centrality.brandes.edges_scanned",
                  static_cast<int64_t>(edges));
  obs::RecordLatency("centrality.brandes.latency_us",
                     static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
}

template <NeighborRangeGraph G>
std::vector<double> BetweennessImpl(const G& g,
                                    const CentralityOptions& options) {
  obs::ScopedTrace span("BetweennessCentrality");
  Timer timer;
  std::vector<VertexId> sources(g.num_vertices());
  std::iota(sources.begin(), sources.end(), VertexId{0});
  uint64_t edges = 0;
  std::vector<double> centrality = AccumulateBrandes(
      g, sources, ResolveNumThreads(options.num_threads), &edges);
  if (!g.directed()) {
    for (double& c : centrality) c /= 2.0;
  }
  FlushBetweennessObs(sources.size(), edges, timer);
  return centrality;
}

template <NeighborRangeGraph G>
std::vector<double> ApproxBetweennessImpl(const G& g, uint32_t num_samples,
                                          Rng* rng,
                                          const CentralityOptions& options) {
  obs::ScopedTrace span("ApproxBetweennessCentrality");
  Timer timer;
  const VertexId n = g.num_vertices();
  if (n == 0 || num_samples == 0) return std::vector<double>(n, 0.0);
  num_samples = std::min<uint32_t>(num_samples, n);
  // Pivots are drawn serially up front: the sample — and through the fixed
  // reduction tree the scores — depend only on the seed, not the schedule.
  std::vector<VertexId> pivots(num_samples);
  for (VertexId& p : pivots) p = static_cast<VertexId>(rng->NextBounded(n));
  uint64_t edges = 0;
  std::vector<double> centrality = AccumulateBrandes(
      g, pivots, ResolveNumThreads(options.num_threads), &edges);
  const double scale = static_cast<double>(n) / num_samples;
  for (double& c : centrality) c *= scale;
  if (!g.directed()) {
    for (double& c : centrality) c /= 2.0;
  }
  FlushBetweennessObs(num_samples, edges, timer);
  return centrality;
}

/// Plain BFS into reusable chunk-local scratch (`queue` doubles as the list
/// of reached vertices).
struct BfsScratch {
  std::vector<uint32_t> dist;
  std::vector<VertexId> queue;
};

template <NeighborRangeGraph G>
void ScratchBfs(const G& g, VertexId source, BfsScratch* s) {
  s->dist.assign(g.num_vertices(), kUnreachable);
  s->queue.clear();
  s->dist[source] = 0;
  s->queue.push_back(source);
  for (size_t head = 0; head < s->queue.size(); ++head) {
    const VertexId u = s->queue[head];
    const uint32_t dv = s->dist[u] + 1;
    for (VertexId v : g.OutNeighbors(u)) {
      if (s->dist[v] == kUnreachable) {
        s->dist[v] = dv;
        s->queue.push_back(v);
      }
    }
  }
}

/// Both closeness variants: one BFS per vertex, vertices batched over the
/// pool. Each score is produced by an entirely per-vertex computation (the
/// ascending-id reduction over distances matches the serial original), so
/// parallel results are bitwise-equal to serial trivially.
template <NeighborRangeGraph G, typename ScoreFn>
std::vector<double> PerVertexBfsScores(const G& g, unsigned threads,
                                       const char* trace_name,
                                       ScoreFn score) {
  obs::ScopedTrace span(trace_name);
  Timer timer;
  const VertexId n = g.num_vertices();
  std::vector<double> out(n, 0.0);
  auto run_range = [&](uint64_t b, uint64_t e) {
    BfsScratch scratch;
    for (uint64_t v = b; v < e; ++v) {
      ScratchBfs(g, static_cast<VertexId>(v), &scratch);
      out[v] = score(static_cast<VertexId>(v), scratch.dist);
    }
  };
  if (threads > 1 && n > 0) {
    ThreadPool pool(threads);
    // Dynamic chunks: BFS cost varies wildly with the component size.
    ParallelForChunks(pool, 0, n, run_range, Schedule::kDynamic, 64);
  } else {
    run_range(0, n);
  }
  if (obs::Enabled()) {
    obs::AddCounter("centrality.closeness.runs", 1);
    obs::AddCounter("centrality.closeness.sources", static_cast<int64_t>(n));
    obs::RecordLatency("centrality.closeness.latency_us",
                       static_cast<int64_t>(timer.ElapsedSeconds() * 1e6));
  }
  return out;
}

template <NeighborRangeGraph G>
std::vector<double> HarmonicImpl(const G& g, const CentralityOptions& options) {
  const VertexId n = g.num_vertices();
  return PerVertexBfsScores(
      g, ResolveNumThreads(options.num_threads), "HarmonicCloseness",
      [n](VertexId v, const std::vector<uint32_t>& dist) {
        double sum = 0.0;
        for (VertexId u = 0; u < n; ++u) {
          if (u != v && dist[u] != kUnreachable) sum += 1.0 / dist[u];
        }
        return sum;
      });
}

template <NeighborRangeGraph G>
std::vector<double> ClosenessImpl(const G& g, const CentralityOptions& options) {
  const VertexId n = g.num_vertices();
  if (n <= 1) return std::vector<double>(n, 0.0);
  return PerVertexBfsScores(
      g, ResolveNumThreads(options.num_threads), "ClosenessCentrality",
      [n](VertexId v, const std::vector<uint32_t>& dist) {
        uint64_t reachable = 0;
        double total = 0.0;
        for (VertexId u = 0; u < n; ++u) {
          if (u != v && dist[u] != kUnreachable) {
            ++reachable;
            total += dist[u];
          }
        }
        if (reachable == 0 || total == 0) return 0.0;
        double frac = static_cast<double>(reachable) / (n - 1);
        return frac * static_cast<double>(reachable) / total;
      });
}

}  // namespace

std::vector<double> BetweennessCentrality(const CsrGraph& g,
                                          const CentralityOptions& options) {
  return BetweennessImpl(g, options);
}

std::vector<double> BetweennessCentrality(const CompressedCsrGraph& g,
                                          const CentralityOptions& options) {
  return BetweennessImpl(g, options);
}

std::vector<double> ApproxBetweennessCentrality(const CsrGraph& g,
                                                uint32_t num_samples, Rng* rng,
                                                const CentralityOptions& options) {
  return ApproxBetweennessImpl(g, num_samples, rng, options);
}

std::vector<double> ApproxBetweennessCentrality(const CompressedCsrGraph& g,
                                                uint32_t num_samples, Rng* rng,
                                                const CentralityOptions& options) {
  return ApproxBetweennessImpl(g, num_samples, rng, options);
}

std::vector<double> HarmonicCloseness(const CsrGraph& g,
                                      const CentralityOptions& options) {
  return HarmonicImpl(g, options);
}

std::vector<double> HarmonicCloseness(const CompressedCsrGraph& g,
                                      const CentralityOptions& options) {
  return HarmonicImpl(g, options);
}

std::vector<double> ClosenessCentrality(const CsrGraph& g,
                                        const CentralityOptions& options) {
  return ClosenessImpl(g, options);
}

std::vector<double> ClosenessCentrality(const CompressedCsrGraph& g,
                                        const CentralityOptions& options) {
  return ClosenessImpl(g, options);
}

std::vector<double> DegreeCentrality(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<double> out(n, 0.0);
  if (n <= 1) return out;
  for (VertexId v = 0; v < n; ++v) {
    out[v] = static_cast<double>(g.OutDegree(v)) / (n - 1);
  }
  return out;
}

}  // namespace ubigraph::algo
