#include "algorithms/centrality.h"

#include <deque>

#include "algorithms/traversal.h"

namespace ubigraph::algo {

namespace {

/// One Brandes accumulation from `source` into `centrality`.
void BrandesFromSource(const CsrGraph& g, VertexId source,
                       std::vector<double>* centrality) {
  const VertexId n = g.num_vertices();
  std::vector<uint32_t> dist(n, kUnreachable);
  std::vector<double> sigma(n, 0.0);     // # shortest paths
  std::vector<double> delta(n, 0.0);     // dependency
  std::vector<std::vector<VertexId>> preds(n);
  std::vector<VertexId> order;           // BFS settle order
  order.reserve(n);

  std::deque<VertexId> queue;
  dist[source] = 0;
  sigma[source] = 1.0;
  queue.push_back(source);
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (VertexId v : g.OutNeighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
      if (dist[v] == dist[u] + 1) {
        sigma[v] += sigma[u];
        preds[v].push_back(u);
      }
    }
  }

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VertexId w = *it;
    for (VertexId p : preds[w]) {
      delta[p] += sigma[p] / sigma[w] * (1.0 + delta[w]);
    }
    if (w != source) (*centrality)[w] += delta[w];
  }
}

}  // namespace

std::vector<double> BetweennessCentrality(const CsrGraph& g) {
  std::vector<double> centrality(g.num_vertices(), 0.0);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    BrandesFromSource(g, s, &centrality);
  }
  if (!g.directed()) {
    for (double& c : centrality) c /= 2.0;
  }
  return centrality;
}

std::vector<double> ApproxBetweennessCentrality(const CsrGraph& g,
                                                uint32_t num_samples, Rng* rng) {
  std::vector<double> centrality(g.num_vertices(), 0.0);
  if (g.num_vertices() == 0 || num_samples == 0) return centrality;
  num_samples = std::min<uint32_t>(num_samples, g.num_vertices());
  for (uint32_t i = 0; i < num_samples; ++i) {
    VertexId s = static_cast<VertexId>(rng->NextBounded(g.num_vertices()));
    BrandesFromSource(g, s, &centrality);
  }
  double scale = static_cast<double>(g.num_vertices()) / num_samples;
  for (double& c : centrality) c *= scale;
  if (!g.directed()) {
    for (double& c : centrality) c /= 2.0;
  }
  return centrality;
}

std::vector<double> HarmonicCloseness(const CsrGraph& g) {
  std::vector<double> out(g.num_vertices(), 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<uint32_t> dist = BfsDistances(g, v);
    double sum = 0.0;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      if (u != v && dist[u] != kUnreachable) sum += 1.0 / dist[u];
    }
    out[v] = sum;
  }
  return out;
}

std::vector<double> ClosenessCentrality(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<double> out(n, 0.0);
  if (n <= 1) return out;
  for (VertexId v = 0; v < n; ++v) {
    std::vector<uint32_t> dist = BfsDistances(g, v);
    uint64_t reachable = 0;
    double total = 0.0;
    for (VertexId u = 0; u < n; ++u) {
      if (u != v && dist[u] != kUnreachable) {
        ++reachable;
        total += dist[u];
      }
    }
    if (reachable > 0 && total > 0) {
      double frac = static_cast<double>(reachable) / (n - 1);
      out[v] = frac * static_cast<double>(reachable) / total;
    }
  }
  return out;
}

std::vector<double> DegreeCentrality(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<double> out(n, 0.0);
  if (n <= 1) return out;
  for (VertexId v = 0; v < n; ++v) {
    out[v] = static_cast<double>(g.OutDegree(v)) / (n - 1);
  }
  return out;
}

}  // namespace ubigraph::algo
