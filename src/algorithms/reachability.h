// Reachability queries (Table 9: "checking if u is reachable from v",
// 27/89 participants). Online BFS checks plus an offline index: SCC
// condensation + DAG interval labeling for O(1) negative answers on
// tree-covered pairs and pruned DFS otherwise (GRAIL-style, 1 label).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

/// Single online reachability query by BFS. O(V + E).
bool IsReachable(const CsrGraph& g, VertexId from, VertexId to);

/// Precomputed reachability index over an arbitrary directed graph.
class ReachabilityIndex {
 public:
  /// Builds the index: Tarjan condensation + one DFS interval labeling of the
  /// condensation DAG.
  static Result<ReachabilityIndex> Build(const CsrGraph& g);

  /// Answers u ~> v. Never traverses the original graph; falls back to a
  /// pruned DFS over the (much smaller) condensation when labels can't refute.
  bool Reachable(VertexId from, VertexId to) const;

  uint32_t num_scc() const { return static_cast<uint32_t>(dag_offsets_.size() - 1); }
  uint32_t SccOf(VertexId v) const { return scc_label_[v]; }

 private:
  ReachabilityIndex() = default;

  // Condensation DAG in CSR form.
  std::vector<uint32_t> scc_label_;
  std::vector<uint64_t> dag_offsets_;
  std::vector<uint32_t> dag_targets_;
  // GRAIL-style interval labels on the DAG: post[u] and min-post in subtree.
  std::vector<uint32_t> post_;
  std::vector<uint32_t> min_post_;
};

}  // namespace ubigraph::algo
