#include "algorithms/reachability.h"

#include <algorithm>

#include "algorithms/connected_components.h"
#include "algorithms/traversal.h"

namespace ubigraph::algo {

bool IsReachable(const CsrGraph& g, VertexId from, VertexId to) {
  if (from >= g.num_vertices() || to >= g.num_vertices()) return false;
  bool found = false;
  BfsVisit(g, from, [&](VertexId v, uint32_t) {
    if (v == to) {
      found = true;
      return false;
    }
    return true;
  });
  return found;
}

Result<ReachabilityIndex> ReachabilityIndex::Build(const CsrGraph& g) {
  ReachabilityIndex idx;
  ComponentResult scc = StronglyConnectedComponents(g);
  idx.scc_label_ = scc.label;
  const uint32_t k = scc.num_components;

  // Build the condensation DAG (deduplicated cross-SCC edges).
  std::vector<std::pair<uint32_t, uint32_t>> dag_edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      uint32_t cu = scc.label[u], cv = scc.label[v];
      if (cu != cv) dag_edges.emplace_back(cu, cv);
    }
  }
  std::sort(dag_edges.begin(), dag_edges.end());
  dag_edges.erase(std::unique(dag_edges.begin(), dag_edges.end()), dag_edges.end());

  idx.dag_offsets_.assign(k + 1, 0);
  for (const auto& [s, d] : dag_edges) ++idx.dag_offsets_[s + 1];
  for (uint32_t i = 1; i <= k; ++i) idx.dag_offsets_[i] += idx.dag_offsets_[i - 1];
  idx.dag_targets_.resize(dag_edges.size());
  {
    std::vector<uint64_t> cursor(idx.dag_offsets_.begin(), idx.dag_offsets_.end() - 1);
    for (const auto& [s, d] : dag_edges) idx.dag_targets_[cursor[s]++] = d;
  }

  // One DFS over the DAG assigning postorder + subtree-min-post labels.
  // If post range of v is not within [min_post(u), post(u)], u cannot reach v
  // *through the DFS tree*; a positive containment is only a hint, so we
  // verify with pruned DFS (classic single-label GRAIL).
  idx.post_.assign(k, 0);
  idx.min_post_.assign(k, 0);
  std::vector<uint8_t> state(k, 0);  // 0 unvisited, 1 done
  uint32_t clock = 0;
  std::vector<std::pair<uint32_t, uint64_t>> stack;
  std::vector<uint32_t> mins(k, UINT32_MAX);
  for (uint32_t root = 0; root < k; ++root) {
    if (state[root]) continue;
    stack.emplace_back(root, idx.dag_offsets_[root]);
    state[root] = 1;
    mins[root] = UINT32_MAX;
    while (!stack.empty()) {
      auto& [u, i] = stack.back();
      if (i < idx.dag_offsets_[u + 1]) {
        uint32_t v = idx.dag_targets_[i++];
        if (!state[v]) {
          state[v] = 1;
          mins[v] = UINT32_MAX;
          stack.emplace_back(v, idx.dag_offsets_[v]);
        } else {
          // Already-labeled child still constrains our min-post.
          mins[u] = std::min({mins[u], idx.min_post_[v], idx.post_[v]});
        }
      } else {
        uint32_t u_done = u;
        idx.post_[u_done] = clock++;
        idx.min_post_[u_done] =
            std::min(mins[u_done], idx.post_[u_done]);
        stack.pop_back();
        if (!stack.empty()) {
          uint32_t parent = stack.back().first;
          mins[parent] = std::min(mins[parent], idx.min_post_[u_done]);
        }
      }
    }
  }
  return idx;
}

bool ReachabilityIndex::Reachable(VertexId from, VertexId to) const {
  if (from >= scc_label_.size() || to >= scc_label_.size()) return false;
  uint32_t cu = scc_label_[from], cv = scc_label_[to];
  if (cu == cv) return true;

  // Pruned DFS over the condensation: interval labels refute subtrees.
  auto may_reach = [&](uint32_t a, uint32_t b) {
    return min_post_[a] <= post_[b] && post_[b] <= post_[a];
  };
  if (!may_reach(cu, cv)) return false;
  std::vector<uint32_t> stack{cu};
  std::vector<uint8_t> seen(dag_offsets_.size() - 1, 0);
  seen[cu] = 1;
  while (!stack.empty()) {
    uint32_t u = stack.back();
    stack.pop_back();
    if (u == cv) return true;
    for (uint64_t i = dag_offsets_[u]; i < dag_offsets_[u + 1]; ++i) {
      uint32_t v = dag_targets_[i];
      if (!seen[v] && may_reach(v, cv)) {
        seen[v] = 1;
        stack.push_back(v);
      }
    }
  }
  return false;
}

}  // namespace ubigraph::algo
