#include "algorithms/partition.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace ubigraph::algo {

namespace {

Status CheckParts(uint32_t num_parts) {
  if (num_parts == 0) return Status::Invalid("num_parts must be positive");
  return Status::OK();
}

}  // namespace

Result<Partitioning> HashPartition(const CsrGraph& g, uint32_t num_parts) {
  UG_RETURN_NOT_OK(CheckParts(num_parts));
  Partitioning p;
  p.num_parts = num_parts;
  p.part.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Multiplicative hash avoids the pathological striping of v % k on
    // generator-produced vertex ids.
    uint64_t h = (static_cast<uint64_t>(v) * 0x9E3779B97F4A7C15ULL) >> 32;
    p.part[v] = static_cast<uint32_t>(h % num_parts);
  }
  return p;
}

Result<Partitioning> LdgPartition(const CsrGraph& g, uint32_t num_parts,
                                  double capacity_slack) {
  UG_RETURN_NOT_OK(CheckParts(num_parts));
  if (capacity_slack < 1.0) {
    return Status::Invalid("capacity_slack must be >= 1.0");
  }
  const VertexId n = g.num_vertices();
  Partitioning p;
  p.num_parts = num_parts;
  p.part.assign(n, UINT32_MAX);
  const double capacity =
      capacity_slack * std::ceil(static_cast<double>(n) / num_parts);
  std::vector<uint64_t> sizes(num_parts, 0);
  std::vector<uint64_t> neighbor_count(num_parts, 0);

  for (VertexId v = 0; v < n; ++v) {
    std::fill(neighbor_count.begin(), neighbor_count.end(), 0);
    for (VertexId u : g.OutNeighbors(v)) {
      if (p.part[u] != UINT32_MAX) ++neighbor_count[p.part[u]];
    }
    // Score = neighbors(part) * (1 - size/capacity); ties to smallest part.
    double best_score = -1.0;
    uint32_t best = 0;
    for (uint32_t k = 0; k < num_parts; ++k) {
      double penalty = 1.0 - static_cast<double>(sizes[k]) / capacity;
      if (penalty <= 0) continue;  // part full
      double score = static_cast<double>(neighbor_count[k]) * penalty;
      if (score > best_score ||
          (score == best_score && sizes[k] < sizes[best])) {
        best_score = score;
        best = k;
      }
    }
    if (best_score < 0) {
      // All parts at capacity (can happen with slack == 1 and rounding);
      // fall back to the smallest.
      best = static_cast<uint32_t>(
          std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
    }
    p.part[v] = best;
    ++sizes[best];
  }
  return p;
}

Result<Partitioning> BfsGrowPartition(const CsrGraph& g, uint32_t num_parts,
                                      Rng* rng) {
  UG_RETURN_NOT_OK(CheckParts(num_parts));
  if (rng == nullptr) return Status::Invalid("rng must not be null");
  const VertexId n = g.num_vertices();
  Partitioning p;
  p.num_parts = num_parts;
  p.part.assign(n, UINT32_MAX);
  if (n == 0) return p;

  std::vector<uint64_t> sizes(num_parts, 0);
  const uint64_t target = (n + num_parts - 1) / num_parts;

  // One queue per region; expand the smallest non-empty region each step.
  std::vector<std::deque<VertexId>> queues(num_parts);
  std::vector<size_t> seeds =
      rng->SampleWithoutReplacement(n, std::min<size_t>(num_parts, n));
  for (uint32_t k = 0; k < seeds.size(); ++k) {
    VertexId s = static_cast<VertexId>(seeds[k]);
    p.part[s] = k;
    ++sizes[k];
    queues[k].push_back(s);
  }

  bool progressed = true;
  while (progressed) {
    progressed = false;
    // Pick the smallest region with a non-empty queue and room to grow.
    uint32_t pick = UINT32_MAX;
    for (uint32_t k = 0; k < num_parts; ++k) {
      if (queues[k].empty() || sizes[k] >= target) continue;
      if (pick == UINT32_MAX || sizes[k] < sizes[pick]) pick = k;
    }
    if (pick == UINT32_MAX) {
      // Everyone full or stalled: let full regions keep absorbing so no
      // reachable vertex is stranded.
      for (uint32_t k = 0; k < num_parts; ++k) {
        if (!queues[k].empty()) {
          pick = k;
          break;
        }
      }
      if (pick == UINT32_MAX) break;
    }
    VertexId u = queues[pick].front();
    queues[pick].pop_front();
    for (VertexId v : g.OutNeighbors(u)) {
      if (p.part[v] == UINT32_MAX) {
        p.part[v] = pick;
        ++sizes[pick];
        queues[pick].push_back(v);
        progressed = true;
      }
    }
    progressed = true;
  }

  // Unreached vertices (other components): round-robin into smallest parts.
  for (VertexId v = 0; v < n; ++v) {
    if (p.part[v] == UINT32_MAX) {
      uint32_t smallest = static_cast<uint32_t>(
          std::min_element(sizes.begin(), sizes.end()) - sizes.begin());
      p.part[v] = smallest;
      ++sizes[smallest];
    }
  }
  return p;
}

Result<PartitionQuality> EvaluatePartition(const CsrGraph& g,
                                           const Partitioning& p) {
  if (p.part.size() != g.num_vertices()) {
    return Status::Invalid("partition size != num_vertices");
  }
  PartitionQuality q;
  q.part_sizes.assign(p.num_parts, 0);
  for (uint32_t x : p.part) {
    if (x >= p.num_parts) return Status::Invalid("part id out of range");
    ++q.part_sizes[x];
  }
  q.part_out_edges.assign(p.num_parts, 0);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    q.part_out_edges[p.part[u]] += g.OutDegree(u);
    for (VertexId v : g.OutNeighbors(u)) {
      if (p.part[u] != p.part[v]) ++q.edge_cut;
    }
  }
  if (g.num_edges() > 0) {
    q.cut_fraction = static_cast<double>(q.edge_cut) / g.num_edges();
  }
  if (p.num_parts > 0 && g.num_vertices() > 0) {
    uint64_t max_size = *std::max_element(q.part_sizes.begin(), q.part_sizes.end());
    double ideal = static_cast<double>(g.num_vertices()) / p.num_parts;
    q.imbalance = static_cast<double>(max_size) / ideal - 1.0;
  }
  if (p.num_parts > 0 && g.num_edges() > 0) {
    uint64_t max_edges =
        *std::max_element(q.part_out_edges.begin(), q.part_out_edges.end());
    double ideal = static_cast<double>(g.num_edges()) / p.num_parts;
    q.edge_imbalance = static_cast<double>(max_edges) / ideal - 1.0;
  }
  return q;
}

}  // namespace ubigraph::algo
