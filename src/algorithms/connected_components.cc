#include "algorithms/connected_components.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <optional>

#include "common/parallel.h"
#include "graph/compressed_csr.h"
#include "graph/frontier.h"
#include "graph/graph_traits.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ubigraph::algo {

UnionFind::UnionFind(size_t n) : parent_(n), rank_(n, 0), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

size_t UnionFind::Find(size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a), rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

std::vector<uint64_t> ComponentResult::ComponentSizes() const {
  std::vector<uint64_t> sizes(num_components, 0);
  for (uint32_t l : label) ++sizes[l];
  return sizes;
}

uint32_t ComponentResult::LargestComponent() const {
  std::vector<uint64_t> sizes = ComponentSizes();
  return static_cast<uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

namespace {

/// Renumbers arbitrary representative ids to dense labels ordered by first
/// appearance (i.e. by smallest member vertex).
ComponentResult Relabel(const std::vector<uint32_t>& rep, VertexId n) {
  ComponentResult out;
  out.label.assign(n, 0);
  std::vector<uint32_t> dense(n, UINT32_MAX);
  uint32_t next = 0;
  for (VertexId v = 0; v < n; ++v) {
    uint32_t r = rep[v];
    if (dense[r] == UINT32_MAX) dense[r] = next++;
    out.label[v] = dense[r];
  }
  out.num_components = next;
  return out;
}

template <NeighborRangeGraph G>
ComponentResult WeaklyConnectedComponentsImpl(const G& g) {
  const VertexId n = g.num_vertices();
  UnionFind uf(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) uf.Union(u, v);
  }
  std::vector<uint32_t> rep(n);
  for (VertexId v = 0; v < n; ++v) rep[v] = static_cast<uint32_t>(uf.Find(v));
  return Relabel(rep, n);
}

}  // namespace

ComponentResult WeaklyConnectedComponents(const CsrGraph& g) {
  return WeaklyConnectedComponentsImpl(g);
}

ComponentResult WeaklyConnectedComponents(const CompressedCsrGraph& g) {
  return WeaklyConnectedComponentsImpl(g);
}

Result<ComponentResult> ConnectedComponentsBfs(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  UG_RETURN_NOT_OK(g.RequireInEdges("ConnectedComponentsBfs"));
  ComponentResult out;
  out.label.assign(n, UINT32_MAX);
  uint32_t next = 0;
  std::deque<VertexId> queue;
  for (VertexId root = 0; root < n; ++root) {
    if (out.label[root] != UINT32_MAX) continue;
    uint32_t comp = next++;
    out.label[root] = comp;
    queue.push_back(root);
    while (!queue.empty()) {
      VertexId u = queue.front();
      queue.pop_front();
      auto relax = [&](VertexId v) {
        if (out.label[v] == UINT32_MAX) {
          out.label[v] = comp;
          queue.push_back(v);
        }
      };
      for (VertexId v : g.OutNeighbors(u)) relax(v);
      if (g.directed()) {
        for (VertexId v : g.InNeighbors(u)) relax(v);
      }
    }
  }
  out.num_components = next;
  return out;
}

namespace {

template <NeighborRangeGraph G>
Result<ComponentResult> ConnectedComponentsLabelPropImpl(
    const G& g, ComponentsOptions options) {
  obs::ScopedTrace span("ConnectedComponentsLabelProp");
  const VertexId n = g.num_vertices();
  UG_RETURN_NOT_OK(g.RequireInEdges("ConnectedComponentsLabelProp"));
  std::vector<uint32_t> cur(n), next(n);
  std::iota(cur.begin(), cur.end(), 0u);
  uint64_t rounds = 0;
  // Machine-independent work: vertices evaluated per round (the full-sweep
  // variant touches all n every round, the frontier variant only the active
  // set). Deterministic at any thread count, so BENCH.json can report it as
  // a rate-normalizing work counter.
  uint64_t activations = 0;

  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool_storage;
  if (threads > 1) pool_storage.emplace(threads);
  ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;
  auto any = [](bool a, bool b) { return a || b; };

  if (!options.use_frontier) {
    // One Jacobi round over [b, e): reads only `cur`, writes only next[b..e),
    // so concurrent chunks never conflict. Returns whether any label changed.
    auto round = [&](uint64_t b, uint64_t e) {
      bool changed = false;
      for (uint64_t i = b; i < e; ++i) {
        VertexId v = static_cast<VertexId>(i);
        uint32_t best = cur[v];
        best = std::min(best, cur[best]);  // pointer jumping
        for (VertexId u : g.OutNeighbors(v)) best = std::min(best, cur[u]);
        if (g.directed()) {
          for (VertexId u : g.InNeighbors(v)) best = std::min(best, cur[u]);
        }
        next[v] = best;
        changed |= best != cur[v];
      }
      return changed;
    };
    for (;;) {
      ++rounds;
      activations += n;
      bool changed =
          pool == nullptr ? round(0, n) : ParallelReduce(*pool, 0, n, false, round, any);
      cur.swap(next);
      if (!changed) break;
    }
  } else {
    // Frontier variant: a vertex is re-evaluated only while some neighbor's
    // label is still moving; everyone else carries cur[v] forward for O(1).
    // A label can only drop when a neighbor's label dropped last round, so
    // the fixpoint is the same min-label-per-component as the full sweep.
    // (Pointer jumping is dropped: cur[v] is not a graph neighbor, so a
    // jumped-to representative could never re-activate v.)
    Frontier active(n), changed(n), next_active(n);
    active.SetAll();
    // The sweep only flags vertices whose label dropped (O(1) per vertex);
    // their neighbors are activated after the round, and while most of the
    // graph is still moving the activation scatter is skipped entirely
    // (everyone stays active), keeping early rounds at full-sweep cost.
    auto round = [&](uint64_t b, uint64_t e) {
      bool any_changed = false;
      for (uint64_t i = b; i < e; ++i) {
        VertexId v = static_cast<VertexId>(i);
        if (!active.Test(v)) {
          next[v] = cur[v];
          continue;
        }
        uint32_t best = cur[v];
        for (VertexId u : g.OutNeighbors(v)) best = std::min(best, cur[u]);
        if (g.directed()) {
          for (VertexId u : g.InNeighbors(v)) best = std::min(best, cur[u]);
        }
        next[v] = best;
        if (best != cur[v]) {
          any_changed = true;
          if (pool != nullptr) {
            changed.AtomicTestAndSet(v);
          } else {
            changed.Set(v);
          }
        }
      }
      return any_changed;
    };
    for (;;) {
      ++rounds;
      activations += active.size();
      changed.ClearDense();
      bool any_changed =
          pool == nullptr ? round(0, n) : ParallelReduce(*pool, 0, n, false, round, any);
      cur.swap(next);
      if (!any_changed) break;
      changed.RecountDense();
      if (changed.size() > n / 8) {
        active.SetAll();
      } else {
        changed.ToSparse();
        next_active.ClearDense();
        uint64_t marked = 0;
        auto wake = [&](VertexId u) {
          marked += next_active.AtomicTestAndSet(u) ? 1 : 0;
        };
        for (VertexId v : changed.Vertices()) {
          for (VertexId u : g.OutNeighbors(v)) wake(u);
          if (g.directed()) {
            for (VertexId u : g.InNeighbors(v)) wake(u);
          }
        }
        next_active.SetCount(marked);
        std::swap(active, next_active);
      }
    }
  }
  ComponentResult result = Relabel(cur, n);
  obs::AddCounter("cc.labelprop.runs", 1);
  obs::AddCounter(options.use_frontier ? "cc.labelprop.frontier_runs"
                                       : "cc.labelprop.full_sweep_runs",
                  1);
  obs::AddCounter("cc.labelprop.rounds", static_cast<int64_t>(rounds));
  obs::AddCounter("cc.labelprop.vertices_activated",
                  static_cast<int64_t>(activations));
  obs::AddCounter("cc.labelprop.components", result.num_components);
  return result;
}

}  // namespace

Result<ComponentResult> ConnectedComponentsLabelProp(const CsrGraph& g,
                                                     ComponentsOptions options) {
  return ConnectedComponentsLabelPropImpl(g, options);
}

Result<ComponentResult> ConnectedComponentsLabelProp(const CompressedCsrGraph& g,
                                                     ComponentsOptions options) {
  return ConnectedComponentsLabelPropImpl(g, options);
}

ComponentResult StronglyConnectedComponents(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  constexpr uint32_t kUnset = UINT32_MAX;
  std::vector<uint32_t> index(n, kUnset);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> scc_stack;
  std::vector<uint32_t> rep(n, kUnset);
  uint32_t next_index = 0;
  uint32_t next_comp = 0;

  // Explicit DFS stack frames: (vertex, next neighbor offset).
  std::vector<std::pair<VertexId, uint64_t>> frames;
  for (VertexId start = 0; start < n; ++start) {
    if (index[start] != kUnset) continue;
    frames.emplace_back(start, 0);
    index[start] = lowlink[start] = next_index++;
    scc_stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      auto& [u, i] = frames.back();
      auto nbrs = g.OutNeighbors(u);
      if (i < nbrs.size()) {
        VertexId v = nbrs[i++];
        if (index[v] == kUnset) {
          index[v] = lowlink[v] = next_index++;
          scc_stack.push_back(v);
          on_stack[v] = true;
          frames.emplace_back(v, 0);
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        VertexId u_done = u;
        frames.pop_back();
        if (!frames.empty()) {
          VertexId parent = frames.back().first;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u_done]);
        }
        if (lowlink[u_done] == index[u_done]) {
          // u_done is an SCC root: pop its component.
          uint32_t comp = next_comp++;
          while (true) {
            VertexId w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = false;
            rep[w] = comp;
            if (w == u_done) break;
          }
        }
      }
    }
  }

  ComponentResult out;
  out.label = std::move(rep);
  out.num_components = next_comp;
  return out;
}

std::vector<VertexId> SingletonVertices(const CsrGraph& g) {
  ComponentResult cc = WeaklyConnectedComponents(g);
  std::vector<uint64_t> sizes = cc.ComponentSizes();
  std::vector<VertexId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (sizes[cc.label[v]] == 1) out.push_back(v);
  }
  return out;
}

}  // namespace ubigraph::algo
