// Shortest paths (Table 9: 43/89 participants). Unweighted BFS distances,
// Dijkstra, Bellman-Ford (negative weights + cycle detection), and
// bidirectional BFS for point-to-point queries.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

struct ShortestPathTree {
  std::vector<double> distance;   // kInfDistance if unreachable
  std::vector<VertexId> parent;   // kInvalidVertex if unreachable / source

  /// Reconstructs the path source -> target; empty if unreachable.
  std::vector<VertexId> PathTo(VertexId target) const;
};

/// Dijkstra from `source`. Fails on negative edge weights.
Result<ShortestPathTree> Dijkstra(const CsrGraph& g, VertexId source);

/// Dijkstra stopping as soon as `target` is settled; distance() still valid
/// for settled vertices only.
Result<double> DijkstraPointToPoint(const CsrGraph& g, VertexId source,
                                    VertexId target);

/// Bellman-Ford from `source`. Fails with Invalid on a reachable negative
/// cycle.
Result<ShortestPathTree> BellmanFord(const CsrGraph& g, VertexId source);

/// Hop distance between two vertices via bidirectional BFS; UINT32_MAX when
/// disconnected. Requires in-edges on directed graphs.
uint32_t BidirectionalBfsDistance(const CsrGraph& g, VertexId source,
                                  VertexId target);

/// All-pairs shortest hop distances via repeated BFS. Only sensible for small
/// graphs; the diameter estimator uses sampling instead.
std::vector<std::vector<uint32_t>> AllPairsHopDistances(const CsrGraph& g);

/// A weighted path with its total cost.
struct WeightedPath {
  std::vector<VertexId> vertices;  // source .. target
  double cost = 0.0;
};

/// Yen's algorithm: the k shortest loopless paths from source to target by
/// non-decreasing cost (fewer than k returned when the graph has fewer
/// distinct paths). Requires non-negative weights.
Result<std::vector<WeightedPath>> KShortestPaths(const CsrGraph& g,
                                                 VertexId source, VertexId target,
                                                 uint32_t k);

}  // namespace ubigraph::algo
