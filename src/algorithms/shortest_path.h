// Shortest paths (Table 9: 43/89 participants). Unweighted BFS distances,
// Dijkstra, Bellman-Ford (negative weights + cycle detection), and
// bidirectional BFS for point-to-point queries.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

inline constexpr double kInfDistance = std::numeric_limits<double>::infinity();

struct ShortestPathTree {
  std::vector<double> distance;   // kInfDistance if unreachable
  std::vector<VertexId> parent;   // kInvalidVertex if unreachable / source

  /// Reconstructs the path source -> target; empty if unreachable.
  std::vector<VertexId> PathTo(VertexId target) const;
};

/// Dijkstra from `source`. Fails on negative edge weights.
Result<ShortestPathTree> Dijkstra(const CsrGraph& g, VertexId source);

struct SsspOptions {
  /// 0 = hardware concurrency, 1 = exact serial path (default), else that
  /// many workers (the convention shared by every parallel kernel).
  uint32_t num_threads = 1;
  /// Bucket width for delta-stepping. 0 (the default) auto-tunes to the
  /// average edge weight, which makes roughly one bucket per expected hop.
  double delta = 0.0;
};

/// Delta-stepping SSSP (Meyer-Sanders) over the shared priority-bucket
/// layer: vertices are bucketed by floor(dist / delta); each bucket settles
/// its light edges (w <= delta) in sub-rounds before relaxing heavy edges
/// once. Distances are bitwise-equal to Dijkstra's on non-negative weights
/// at every thread count (shortest-path distances are the unique minimal
/// fixpoint, and each distance is produced by the same chain of FP
/// additions), and the parent tree is deterministic (min-id tight
/// predecessor). Fails on negative edge weights.
Result<ShortestPathTree> DeltaSteppingSssp(const CsrGraph& g, VertexId source,
                                           const SsspOptions& options = {});

/// Dijkstra stopping as soon as `target` is settled; distance() still valid
/// for settled vertices only.
Result<double> DijkstraPointToPoint(const CsrGraph& g, VertexId source,
                                    VertexId target);

/// Bellman-Ford from `source`. Fails with Invalid on a reachable negative
/// cycle.
Result<ShortestPathTree> BellmanFord(const CsrGraph& g, VertexId source);

/// Hop distance between two vertices via bidirectional BFS; UINT32_MAX when
/// disconnected. Directed graphs must carry the in-edge index (clear
/// InvalidArgument otherwise, like the pull kernels); endpoints out of range
/// are OutOfRange.
Result<uint32_t> BidirectionalBfsDistance(const CsrGraph& g, VertexId source,
                                          VertexId target);

/// All-pairs shortest hop distances via repeated BFS. Only sensible for small
/// graphs; the diameter estimator uses sampling instead.
std::vector<std::vector<uint32_t>> AllPairsHopDistances(const CsrGraph& g);

/// A weighted path with its total cost.
struct WeightedPath {
  std::vector<VertexId> vertices;  // source .. target
  double cost = 0.0;
};

/// Yen's algorithm: the k shortest loopless paths from source to target by
/// non-decreasing cost (fewer than k returned when the graph has fewer
/// distinct paths). Requires non-negative weights.
Result<std::vector<WeightedPath>> KShortestPaths(const CsrGraph& g,
                                                 VertexId source, VertexId target,
                                                 uint32_t k);

}  // namespace ubigraph::algo
