#include "algorithms/mst.h"

#include <algorithm>
#include <queue>

#include "algorithms/connected_components.h"

namespace ubigraph::algo {

namespace {

/// Undirected simple weighted edges with src < dst, keeping minimum weight
/// among parallel edges.
std::vector<Edge> CanonicalUndirectedEdges(const CsrGraph& g) {
  std::vector<Edge> edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      VertexId v = nbrs[i];
      if (u == v) continue;
      Edge e{std::min(u, v), std::max(u, v), ws[i]};
      edges.push_back(e);
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
  // Keep lightest per (src, dst).
  std::vector<Edge> out;
  for (const Edge& e : edges) {
    if (!out.empty() && out.back().src == e.src && out.back().dst == e.dst) continue;
    out.push_back(e);
  }
  return out;
}

}  // namespace

MstResult MinimumSpanningForestKruskal(const CsrGraph& g) {
  MstResult r;
  std::vector<Edge> edges = CanonicalUndirectedEdges(g);
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.weight < b.weight; });
  UnionFind uf(g.num_vertices());
  for (const Edge& e : edges) {
    if (uf.Union(e.src, e.dst)) {
      r.edges.push_back(e);
      r.total_weight += e.weight;
    }
  }
  r.num_trees = static_cast<uint32_t>(uf.num_sets());
  return r;
}

MstResult MinimumSpanningForestPrim(const CsrGraph& g) {
  MstResult r;
  const VertexId n = g.num_vertices();
  if (n == 0) return r;

  // Undirected adjacency with weights (minimum kept per neighbor pair is not
  // required for Prim's correctness — the heap naturally prefers lighter).
  std::vector<std::vector<std::pair<VertexId, double>>> adj(n);
  for (VertexId u = 0; u < n; ++u) {
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (u == nbrs[i]) continue;
      adj[u].emplace_back(nbrs[i], ws[i]);
      adj[nbrs[i]].emplace_back(u, ws[i]);
    }
  }

  struct HeapEntry {
    double w;
    VertexId to;
    VertexId from;
    bool operator>(const HeapEntry& o) const { return w > o.w; }
  };
  std::vector<bool> in_tree(n, false);
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;

  for (VertexId root = 0; root < n; ++root) {
    if (in_tree[root]) continue;
    ++r.num_trees;
    in_tree[root] = true;
    for (const auto& [v, w] : adj[root]) heap.push({w, v, root});
    while (!heap.empty()) {
      auto [w, to, from] = heap.top();
      heap.pop();
      if (in_tree[to]) continue;
      in_tree[to] = true;
      r.edges.push_back(Edge{std::min(from, to), std::max(from, to), w});
      r.total_weight += w;
      for (const auto& [v, vw] : adj[to]) {
        if (!in_tree[v]) heap.push({vw, v, to});
      }
    }
  }
  return r;
}

}  // namespace ubigraph::algo
