// Diameter estimation (Table 9: 5/89 participants): exact small-graph
// diameter, the double-sweep lower bound, and an iFUB-style refinement.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/csr_graph.h"

namespace ubigraph::algo {

/// Exact diameter of the largest weakly connected piece reachable in BFS
/// terms: max over vertices of BFS eccentricity, ignoring unreachable pairs.
/// O(V * (V + E)) — small graphs only.
uint32_t ExactDiameter(const CsrGraph& g);

/// Double-sweep: BFS from a seed, then BFS from the farthest vertex found.
/// Returns a lower bound on the diameter (exact on trees).
uint32_t DoubleSweepLowerBound(const CsrGraph& g, VertexId seed = 0);

struct DiameterEstimate {
  uint32_t lower_bound = 0;
  uint32_t upper_bound = 0;
  bool exact = false;  // bounds met
};

/// iFUB-style estimate: repeated eccentricity probes from high-degree /
/// far vertices narrow [lower, upper] until they meet or `budget` BFS runs
/// are spent. Intended for undirected views.
DiameterEstimate EstimateDiameterIfub(const CsrGraph& g, uint32_t budget, Rng* rng);

/// Effective diameter: the 90th-percentile pairwise distance, estimated from
/// `num_samples` BFS sources.
double EffectiveDiameter(const CsrGraph& g, uint32_t num_samples, Rng* rng,
                         double percentile = 0.9);

}  // namespace ubigraph::algo
