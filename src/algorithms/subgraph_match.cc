#include "algorithms/subgraph_match.h"

#include <algorithm>

#include "algorithms/triangle.h"

namespace ubigraph::algo {

namespace {

/// Precomputed undirected-or-directed adjacency used during matching.
struct MatchContext {
  const CsrGraph& data;
  bool undirected;
  std::vector<std::vector<VertexId>> data_adj;      // neighbors to check
  std::vector<std::vector<VertexId>> pattern_out;   // pattern adjacency
  std::vector<std::vector<VertexId>> pattern_in;
};

std::vector<std::vector<VertexId>> BuildAdj(const CsrGraph& g, bool undirected,
                                            bool reverse) {
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (reverse) adj[v].push_back(u);
      else adj[u].push_back(v);
      if (undirected) {
        if (reverse) adj[u].push_back(v);
        else adj[v].push_back(u);
      }
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  return adj;
}

bool HasAdj(const std::vector<std::vector<VertexId>>& adj, VertexId u, VertexId v) {
  const auto& a = adj[u];
  return std::binary_search(a.begin(), a.end(), v);
}

}  // namespace

uint64_t MatchSubgraph(const CsrGraph& data, const CsrGraph& pattern,
                       const SubgraphMatchOptions& options,
                       const std::function<bool(const std::vector<VertexId>&)>& emit) {
  const VertexId pn = pattern.num_vertices();
  if (pn == 0 || data.num_vertices() == 0) return 0;

  // Matching order: pattern vertices by descending degree (most constrained
  // first), but ensuring connectivity to already-matched vertices when
  // possible to keep candidate sets small.
  auto p_out = BuildAdj(pattern, options.undirected, false);
  auto p_in = BuildAdj(pattern, options.undirected, true);
  auto d_out = BuildAdj(data, options.undirected, false);
  auto d_in = BuildAdj(data, options.undirected, true);

  std::vector<VertexId> order;
  {
    std::vector<bool> placed(pn, false);
    std::vector<VertexId> by_degree(pn);
    for (VertexId i = 0; i < pn; ++i) by_degree[i] = i;
    std::sort(by_degree.begin(), by_degree.end(), [&](VertexId a, VertexId b) {
      size_t da = p_out[a].size() + p_in[a].size();
      size_t db = p_out[b].size() + p_in[b].size();
      if (da != db) return da > db;
      return a < b;
    });
    order.push_back(by_degree[0]);
    placed[by_degree[0]] = true;
    while (order.size() < pn) {
      // Prefer an unplaced vertex adjacent to the placed set.
      VertexId pick = kInvalidVertex;
      for (VertexId cand : by_degree) {
        if (placed[cand]) continue;
        bool connected = false;
        for (VertexId q : order) {
          if (HasAdj(p_out, q, cand) || HasAdj(p_in, q, cand)) {
            connected = true;
            break;
          }
        }
        if (connected) {
          pick = cand;
          break;
        }
      }
      if (pick == kInvalidVertex) {
        for (VertexId cand : by_degree) {
          if (!placed[cand]) {
            pick = cand;
            break;
          }
        }
      }
      placed[pick] = true;
      order.push_back(pick);
    }
  }

  std::vector<VertexId> assignment(pn, kInvalidVertex);
  std::vector<bool> used(data.num_vertices(), false);
  uint64_t matches = 0;
  bool stop = false;

  // Recursive backtracking over the chosen order.
  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (stop) return;
    if (depth == order.size()) {
      ++matches;
      if (!emit(assignment)) stop = true;
      if (options.max_matches != 0 && matches >= options.max_matches) stop = true;
      return;
    }
    VertexId p = order[depth];
    // Candidates: intersect with data-neighbors of an already-matched pattern
    // neighbor when available; otherwise all data vertices.
    const std::vector<VertexId>* seed = nullptr;
    bool seed_is_out = true;
    for (VertexId q : p_in[p]) {
      if (assignment[q] != kInvalidVertex) {
        seed = &d_out[assignment[q]];
        seed_is_out = true;
        break;
      }
    }
    if (seed == nullptr) {
      for (VertexId q : p_out[p]) {
        if (assignment[q] != kInvalidVertex) {
          seed = &d_in[assignment[q]];
          seed_is_out = false;
          break;
        }
      }
    }
    (void)seed_is_out;

    auto try_candidate = [&](VertexId c) {
      if (stop) return;
      if (options.injective && used[c]) return;
      // Degree prune.
      if (d_out[c].size() < p_out[p].size() || d_in[c].size() < p_in[p].size()) {
        return;
      }
      // Consistency with all matched pattern neighbors.
      for (VertexId q : p_out[p]) {
        if (assignment[q] != kInvalidVertex && !HasAdj(d_out, c, assignment[q])) {
          return;
        }
      }
      for (VertexId q : p_in[p]) {
        if (assignment[q] != kInvalidVertex && !HasAdj(d_in, c, assignment[q])) {
          return;
        }
      }
      assignment[p] = c;
      used[c] = true;
      recurse(depth + 1);
      used[c] = false;
      assignment[p] = kInvalidVertex;
    };

    if (seed != nullptr) {
      for (VertexId c : *seed) try_candidate(c);
    } else {
      for (VertexId c = 0; c < data.num_vertices(); ++c) try_candidate(c);
    }
  };
  recurse(0);
  return matches;
}

uint64_t CountSubgraphMatches(const CsrGraph& data, const CsrGraph& pattern,
                              SubgraphMatchOptions options) {
  return MatchSubgraph(data, pattern, options,
                       [](const std::vector<VertexId>&) { return true; });
}

uint64_t CountDiamonds(const CsrGraph& g) {
  // A diamond = an edge (u, v) shared by >= 2 triangles; each pair of common
  // neighbors of (u, v) that are each adjacent to both forms one diamond.
  // Count per undirected edge: C(common, 2).
  const VertexId n = g.num_vertices();
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  uint64_t diamonds = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : adj[u]) {
      if (v <= u) continue;
      uint64_t common = 0;
      size_t i = 0, j = 0;
      const auto& au = adj[u];
      const auto& av = adj[v];
      while (i < au.size() && j < av.size()) {
        if (au[i] < av[j]) ++i;
        else if (au[i] > av[j]) ++j;
        else {
          ++common;
          ++i;
          ++j;
        }
      }
      diamonds += common * (common - 1) / 2;
    }
  }
  return diamonds;
}

uint64_t CountFourCliques(const CsrGraph& g) {
  CsrGraph pattern = []() {
    EdgeList el(4);
    for (VertexId i = 0; i < 4; ++i) {
      for (VertexId j = i + 1; j < 4; ++j) el.Add(i, j);
    }
    return CsrGraph::FromEdges(std::move(el)).ValueOrDie();
  }();
  SubgraphMatchOptions opts;
  opts.undirected = true;
  uint64_t automorphisms = 24;  // 4!
  return CountSubgraphMatches(g, pattern, opts) / automorphisms;
}

CsrGraph MakeTrianglePattern() {
  EdgeList el(3);
  el.Add(0, 1);
  el.Add(1, 2);
  el.Add(2, 0);
  return CsrGraph::FromEdges(std::move(el)).ValueOrDie();
}

CsrGraph MakePathPattern(uint32_t length) {
  EdgeList el(length + 1);
  for (uint32_t i = 0; i < length; ++i) el.Add(i, i + 1);
  return CsrGraph::FromEdges(std::move(el)).ValueOrDie();
}

CsrGraph MakeStarPattern(uint32_t leaves) {
  EdgeList el(leaves + 1);
  for (uint32_t i = 1; i <= leaves; ++i) el.Add(0, i);
  return CsrGraph::FromEdges(std::move(el)).ValueOrDie();
}

CsrGraph MakeDiamondPattern() {
  // 4-cycle 0-1-2-3 with chord 0-2.
  EdgeList el(4);
  el.Add(0, 1);
  el.Add(1, 2);
  el.Add(2, 3);
  el.Add(3, 0);
  el.Add(0, 2);
  return CsrGraph::FromEdges(std::move(el)).ValueOrDie();
}

}  // namespace ubigraph::algo
