#include "stream/incremental_pagerank.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <optional>
#include <utility>

#include "common/parallel.h"
#include "graph/frontier.h"

namespace ubigraph::stream {

namespace {

// Inserts v into a sorted multiset vector, keeping ascending order.
void SortedInsert(std::vector<VertexId>& vec, VertexId v) {
  vec.insert(std::upper_bound(vec.begin(), vec.end(), v), v);
}

// Erases one instance of v from a sorted multiset vector. Returns false if
// absent.
bool SortedEraseOne(std::vector<VertexId>& vec, VertexId v) {
  auto it = std::lower_bound(vec.begin(), vec.end(), v);
  if (it == vec.end() || *it != v) return false;
  vec.erase(it);
  return true;
}

uint64_t Multiplicity(const std::vector<VertexId>& vec, VertexId v) {
  auto [lo, hi] = std::equal_range(vec.begin(), vec.end(), v);
  return static_cast<uint64_t>(hi - lo);
}

}  // namespace

IncrementalPageRank::IncrementalPageRank(VertexId n, Options options)
    : n_(n),
      options_(options),
      out_adj_(n),
      in_adj_(n),
      inv_outdeg_(n, 0.0),
      rank_(n, 0.0) {}

Result<IncrementalPageRank> IncrementalPageRank::Create(const EdgeList& edges,
                                                        Options options) {
  const VertexId n = edges.num_vertices();
  if (n == 0) return Status::Invalid("IncrementalPageRank on empty graph");
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::Invalid("damping must be in [0, 1)");
  }
  IncrementalPageRank engine(n, options);
  for (const Edge& e : edges.edges()) {
    if (e.src >= n || e.dst >= n) {
      return Status::OutOfRange("edge endpoint outside vertex universe");
    }
    engine.out_adj_[e.src].push_back(e.dst);
    engine.in_adj_[e.dst].push_back(e.src);
  }
  for (auto& adj : engine.out_adj_) std::sort(adj.begin(), adj.end());
  for (auto& adj : engine.in_adj_) std::sort(adj.begin(), adj.end());
  engine.num_edges_ = edges.num_edges();
  for (VertexId v = 0; v < n; ++v) {
    if (!engine.out_adj_[v].empty()) {
      engine.inv_outdeg_[v] =
          1.0 / static_cast<double>(engine.out_adj_[v].size());
    }
  }
  const double teleport = 1.0 / n;
  for (VertexId v = 0; v < n; ++v) engine.rank_[v] = teleport;
  engine.initial_result_ = engine.RunSweeps({}, /*start_full=*/true);
  return engine;
}

Result<IncrementalPageRank::BatchResult> IncrementalPageRank::ApplyBatch(
    std::span<const GraphDelta> deltas) {
  UG_RETURN_NOT_OK(ValidateDeltaEndpoints(deltas, n_));

  // Phase 1: validate removals against current multiplicities adjusted by
  // earlier deltas of this batch, so a bad batch is rejected before any
  // engine state mutates.
  std::map<std::pair<VertexId, VertexId>, int64_t> adjust;
  for (size_t i = 0; i < deltas.size(); ++i) {
    const GraphDelta& d = deltas[i];
    int64_t& adj = adjust[{d.src, d.dst}];
    if (d.kind == GraphDelta::Kind::kInsert) {
      ++adj;
      continue;
    }
    const int64_t live =
        static_cast<int64_t>(Multiplicity(out_adj_[d.src], d.dst)) + adj;
    if (live <= 0) {
      return Status::NotFound("delta " + std::to_string(i) + " removes arc (" +
                              std::to_string(d.src) + ", " +
                              std::to_string(d.dst) + ") with no live copy");
    }
    --adj;
  }

  // Phase 2: mutate adjacency, degrees, and edge count.
  for (const GraphDelta& d : deltas) {
    if (d.kind == GraphDelta::Kind::kInsert) {
      SortedInsert(out_adj_[d.src], d.dst);
      SortedInsert(in_adj_[d.dst], d.src);
      ++num_edges_;
    } else {
      SortedEraseOne(out_adj_[d.src], d.dst);
      SortedEraseOne(in_adj_[d.dst], d.src);
      --num_edges_;
    }
    const size_t deg = out_adj_[d.src].size();
    inv_outdeg_[d.src] = deg > 0 ? 1.0 / static_cast<double>(deg) : 0.0;
  }

  // Phase 3: seed the frontier with the vertices whose pull inputs changed —
  // each delta's destination (its in-sum gained or lost an arc) and every
  // current out-neighbor of its source (the source's per-arc weight
  // rank/outdeg changed). Source dangling transitions are global and handled
  // by the drift term inside the sweeps.
  std::vector<VertexId> seeds;
  for (const GraphDelta& d : deltas) {
    seeds.push_back(d.dst);
    for (VertexId w : out_adj_[d.src]) seeds.push_back(w);
  }

  BatchResult result = RunSweeps(std::move(seeds), /*start_full=*/false);
  IncrementalWork work;
  work.vertices_reactivated = result.vertices_reactivated;
  work.edges_rerelaxed = result.edges_rerelaxed;
  FlushIncrementalWork("pagerank", work);
  return result;
}

IncrementalPageRank::BatchResult IncrementalPageRank::RunSweeps(
    std::vector<VertexId> seeds, bool start_full) {
  const VertexId n = n_;
  const double d = options_.damping;
  const double teleport = 1.0 / n;
  // Same conservative skip threshold as kDelta: n sub-threshold per-vertex
  // changes sum to under tolerance.
  const double thr =
      options_.tolerance > 0 ? options_.tolerance / static_cast<double>(n) : 0.0;

  const unsigned threads = ResolveNumThreads(options_.num_threads);
  std::optional<ThreadPool> pool_storage;
  if (threads > 1) pool_storage.emplace(threads);
  ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;

  Frontier active(n), changed(n), next_active(n);
  if (start_full) {
    active.SetAll();
  } else {
    active.ClearDense();
    for (VertexId v : seeds) active.Set(v);
    active.RecountDense();
  }

  std::vector<double> next(n, 0.0), wrank(n, 0.0);
  // Serial paths reduce over the same fixed grain-1024 chunk tree the thread
  // pool uses, so every thread count produces bitwise-identical sums.
  auto plus = [](double a, double b) { return a + b; };
  auto dangling_map = [&](uint64_t b, uint64_t e) {
    double sum = 0.0;
    for (uint64_t v = b; v < e; ++v) {
      if (inv_outdeg_[v] == 0.0) sum += rank_[v];
    }
    return sum;
  };
  auto dangling_mass = [&]() {
    if (pool == nullptr) return SerialChunkReduce(0, n, 0.0, dangling_map, plus);
    return ParallelReduce(*pool, 0, n, 0.0, dangling_map, plus);
  };
  auto build_wrank = [&]() {
    if (pool == nullptr) {
      for (VertexId v = 0; v < n; ++v) wrank[v] = rank_[v] * inv_outdeg_[v];
    } else {
      ParallelFor(*pool, 0, n,
                  [&](uint64_t v) { wrank[v] = rank_[v] * inv_outdeg_[v]; });
    }
  };

  BatchResult result;
  for (uint32_t sweep_no = 0; sweep_no < options_.max_sweeps; ++sweep_no) {
    const double dangling = dangling_mass();
    build_wrank();
    result.vertices_reactivated += active.size();
    changed.ClearDense();
    // One sweep chunk: gather active vertices, drift-update quiescent ones.
    // Returns (L1 delta, in-edges gathered). Mirrors the kDelta sweep in
    // algorithms/pagerank.cc, including the rule that only an exactly
    // re-gathered vertex may flag itself as still moving.
    using Partial = std::pair<double, uint64_t>;
    auto sweep = [&](uint64_t b, uint64_t e) {
      Partial p{0.0, 0};
      for (uint64_t i = b; i < e; ++i) {
        VertexId v = static_cast<VertexId>(i);
        double nv;
        if (active.Test(v)) {
          const auto& in = in_adj_[v];
          double in_sum = 0.0;
          for (VertexId u : in) in_sum += wrank[u];
          p.second += in.size();
          nv = (1.0 - d) * teleport + d * (in_sum + dangling * teleport);
          if (std::abs(nv - rank_[v]) > thr) {
            if (pool != nullptr) {
              changed.AtomicTestAndSet(v);
            } else {
              changed.Set(v);
            }
          }
        } else {
          nv = rank_[v] + d * teleport * (dangling - prev_dangling_);
        }
        next[v] = nv;
        p.first += std::abs(nv - rank_[v]);
      }
      return p;
    };
    auto combine = [](Partial a, Partial b) {
      return Partial{a.first + b.first, a.second + b.second};
    };
    Partial total = pool == nullptr
                        ? SerialChunkReduce(0, n, Partial{0.0, 0}, sweep, combine)
                        : ParallelReduce(*pool, 0, n, Partial{0.0, 0}, sweep,
                                         combine);
    result.edges_rerelaxed += total.second;
    prev_dangling_ = dangling;
    const bool was_full = active.size() == n;
    rank_.swap(next);
    result.sweeps = sweep_no + 1;
    result.final_delta = total.first;
    if (total.first < options_.tolerance) {
      if (was_full) {
        // Certified: every vertex was re-gathered exactly this sweep, so the
        // residual is the true one (a partial sweep's L1 includes drift-only
        // approximations and could under-report).
        result.converged = true;
        break;
      }
      active.SetAll();
      continue;
    }
    changed.RecountDense();
    if (changed.size() > n / 8 || changed.empty()) {
      active.SetAll();
    } else {
      changed.ToSparse();
      next_active.ClearDense();
      uint64_t marked = 0;
      for (VertexId v : changed.Vertices()) {
        for (VertexId w : out_adj_[v]) {
          marked += next_active.AtomicTestAndSet(w) ? 1 : 0;
        }
      }
      next_active.SetCount(marked);
      std::swap(active, next_active);
    }
  }
  return result;
}

}  // namespace ubigraph::stream
