#include "stream/incremental_kcore.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <utility>

#include "algorithms/kcore.h"
#include "common/buckets.h"
#include "graph/csr_graph.h"

namespace ubigraph::stream {

Status IncrementalKCore::InsertEdge(VertexId u, VertexId v) {
  return InsertEdgeImpl(u, v, nullptr);
}

Status IncrementalKCore::RemoveEdge(VertexId u, VertexId v) {
  return RemoveEdgeImpl(u, v, nullptr);
}

Status IncrementalKCore::InsertEdgeImpl(VertexId u, VertexId v,
                                        IncrementalWork* work) {
  if (u >= core_.size() || v >= core_.size()) {
    return Status::OutOfRange("vertex out of range");
  }
  if (u == v) return Status::Invalid("self-loops not supported");
  if (adjacency_[u].count(v)) {
    return Status::AlreadyExists("edge already present");
  }
  adjacency_[u].insert(v);
  adjacency_[v].insert(u);
  ++num_edges_;

  // Subcore repair (Sariyüce et al.): only vertices with core number
  // r = min(core(u), core(v)) that are K==r-connected to the lower endpoint
  // can be promoted to r+1, and by at most 1.
  uint32_t r = std::min(core_[u], core_[v]);
  VertexId root = core_[u] <= core_[v] ? u : v;

  // Candidate set: BFS from root through vertices with core == r.
  std::vector<VertexId> candidates;
  std::unordered_map<VertexId, uint32_t> cd;  // candidate degree
  std::unordered_set<VertexId> in_candidates;
  std::deque<VertexId> queue{root};
  in_candidates.insert(root);
  uint64_t scanned = 0;
  while (!queue.empty()) {
    VertexId w = queue.front();
    queue.pop_front();
    candidates.push_back(w);
    uint32_t degree = 0;
    scanned += adjacency_[w].size();
    for (VertexId x : adjacency_[w]) {
      if (core_[x] > r) {
        ++degree;
      } else if (core_[x] == r) {
        ++degree;
        if (!in_candidates.count(x)) {
          in_candidates.insert(x);
          queue.push_back(x);
        }
      }
    }
    cd[w] = degree;
  }

  // Peel candidates that cannot be in the (r+1)-core: they need > r
  // qualifying neighbors (core > r, or surviving candidates).
  std::deque<VertexId> evict;
  for (VertexId w : candidates) {
    if (cd[w] <= r) evict.push_back(w);
  }
  std::unordered_set<VertexId> evicted;
  while (!evict.empty()) {
    VertexId w = evict.front();
    evict.pop_front();
    if (evicted.count(w)) continue;
    evicted.insert(w);
    scanned += adjacency_[w].size();
    for (VertexId x : adjacency_[w]) {
      if (in_candidates.count(x) && !evicted.count(x)) {
        if (--cd[x] <= r && !evicted.count(x)) evict.push_back(x);
      }
    }
  }
  for (VertexId w : candidates) {
    if (!evicted.count(w)) core_[w] = r + 1;
  }
  if (work != nullptr) {
    work->vertices_reactivated += candidates.size();
    work->edges_rerelaxed += scanned;
  }
  return Status::OK();
}

Status IncrementalKCore::RemoveEdgeImpl(VertexId u, VertexId v,
                                        IncrementalWork* work) {
  if (u >= core_.size() || v >= core_.size()) {
    return Status::OutOfRange("vertex out of range");
  }
  if (!adjacency_[u].count(v)) return Status::NotFound("edge not present");
  adjacency_[u].erase(v);
  adjacency_[v].erase(u);
  --num_edges_;
  if (options_.repair_deletions) {
    RepairAfterDeletion(u, v, work);
    ++deletion_repairs_;
  } else {
    RecomputeAllCores();
    ++full_rebuilds_;
    if (work != nullptr) {
      work->vertices_reactivated += core_.size();
      work->edges_rerelaxed += 2 * num_edges_;
      ++work->rebuilds;
    }
  }
  return Status::OK();
}

void IncrementalKCore::RepairAfterDeletion(VertexId u, VertexId v,
                                           IncrementalWork* work) {
  // Deletion subcore repair (Sariyüce et al.): with r = min(core(u),
  // core(v)), only vertices with core == r in the subcore of an endpoint
  // whose core IS r can lose their membership in the r-core, and they drop
  // by exactly 1. Vertices of higher core never depended on the demoted
  // ones; vertices of lower core are untouched by the theorem.
  const uint32_t r = std::min(core_[u], core_[v]);
  if (r == 0) return;

  // Candidate set: BFS through core==r vertices from the endpoint(s) at
  // level r (both when the edge joined two level-r subcores).
  std::vector<VertexId> candidates;
  std::unordered_map<VertexId, uint32_t> cd;  // # neighbors with core >= r
  std::unordered_set<VertexId> in_candidates;
  std::deque<VertexId> queue;
  if (core_[u] == r) {
    queue.push_back(u);
    in_candidates.insert(u);
  }
  if (core_[v] == r && !in_candidates.count(v)) {
    queue.push_back(v);
    in_candidates.insert(v);
  }
  uint64_t scanned = 0;
  while (!queue.empty()) {
    VertexId w = queue.front();
    queue.pop_front();
    candidates.push_back(w);
    uint32_t degree = 0;
    scanned += adjacency_[w].size();
    for (VertexId x : adjacency_[w]) {
      if (core_[x] >= r) ++degree;
      if (core_[x] == r && !in_candidates.count(x)) {
        in_candidates.insert(x);
        queue.push_back(x);
      }
    }
    cd[w] = degree;
  }

  // Bucketed peel over the shared priority-bucket layer: every candidate is
  // bucketed by its qualifying degree; buckets below r drain in order and
  // their fresh entries are demoted. A demotion re-inserts each surviving
  // subcore neighbor at its decremented degree (the structure clamps inserts
  // up to the cursor), so the pop-time recheck must test `cd < r` — a
  // clamped entry's bucket index says nothing about its current degree.
  BucketStructure peel(r + 1);
  for (VertexId w : candidates) peel.Insert(cd[w], w);
  std::unordered_set<VertexId> evicted;
  std::vector<VertexId> drained;
  uint64_t bucket;
  while ((bucket = peel.PopNextBucket(&drained)) != BucketStructure::kNoBucket) {
    if (bucket >= r) break;  // everything at >= r keeps its core number
    do {
      for (VertexId w : drained) {
        if (evicted.count(w) || cd[w] >= r) continue;  // stale entry
        evicted.insert(w);
        core_[w] = r - 1;
        scanned += adjacency_[w].size();
        for (VertexId x : adjacency_[w]) {
          if (in_candidates.count(x) && !evicted.count(x)) {
            peel.Insert(--cd[x], x);
          }
        }
      }
    } while (peel.PopSame(bucket, &drained));
  }
  if (work != nullptr) {
    work->vertices_reactivated += candidates.size();
    work->edges_rerelaxed += scanned;
  }
}

Result<IncrementalKCore::BatchResult> IncrementalKCore::ApplyBatch(
    std::span<const GraphDelta> deltas) {
  // Phase 1: validate every delta against the batch-adjusted edge set so a
  // bad batch is rejected before any repair mutates state. Arcs are
  // undirected here: (u, v) and (v, u) address the same edge.
  std::map<std::pair<VertexId, VertexId>, int> present;  // -1/0/+1 vs. base
  for (size_t i = 0; i < deltas.size(); ++i) {
    const GraphDelta& d = deltas[i];
    if (d.src >= core_.size() || d.dst >= core_.size()) {
      return Status::OutOfRange("delta " + std::to_string(i) +
                                " endpoint out of range");
    }
    if (d.src == d.dst) {
      return Status::Invalid("delta " + std::to_string(i) +
                             " is a self-loop (unsupported)");
    }
    auto key = std::minmax(d.src, d.dst);
    int& adj = present[{key.first, key.second}];
    const bool live =
        (adjacency_[d.src].count(d.dst) ? 1 : 0) + adj > 0;
    if (d.kind == GraphDelta::Kind::kInsert) {
      if (live) {
        return Status::AlreadyExists("delta " + std::to_string(i) +
                                     " inserts a duplicate edge");
      }
      ++adj;
    } else {
      if (!live) {
        return Status::NotFound("delta " + std::to_string(i) +
                                " removes a missing edge");
      }
      --adj;
    }
  }

  // Phase 2: apply in order, accumulating work. The per-delta impls cannot
  // fail now (phase 1 mirrored their checks), so Abort on the invariant.
  BatchResult result;
  IncrementalWork work;
  for (const GraphDelta& d : deltas) {
    if (d.kind == GraphDelta::Kind::kInsert) {
      InsertEdgeImpl(d.src, d.dst, &work).Abort();
    } else {
      const uint64_t rebuilds_before = full_rebuilds_;
      RemoveEdgeImpl(d.src, d.dst, &work).Abort();
      if (full_rebuilds_ > rebuilds_before) {
        ++result.full_rebuilds;
      } else {
        ++result.deletion_repairs;
      }
    }
  }
  result.vertices_reactivated = work.vertices_reactivated;
  result.edges_rerelaxed = work.edges_rerelaxed;
  FlushIncrementalWork("kcore", work);
  return result;
}

void IncrementalKCore::RecomputeAllCores() {
  // Full fallback: rebuild a CSR snapshot and rerun batch peeling, routing
  // the configured thread count to the shared kernel (core numbers are a
  // graph invariant — identical at every setting).
  auto csr = CsrGraph::FromEdges(Snapshot(),
                                 CsrOptions{.directed = false,
                                            .num_threads = options_.num_threads});
  core_ = algo::CoreDecomposition(
      csr.ValueOrDie(), algo::CoreOptions{.num_threads = options_.num_threads});
}

uint32_t IncrementalKCore::Degeneracy() const {
  uint32_t best = 0;
  for (uint32_t c : core_) best = std::max(best, c);
  return best;
}

EdgeList IncrementalKCore::Snapshot() const {
  EdgeList el(num_vertices());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : adjacency_[u]) {
      if (u < v) el.Add(u, v);
    }
  }
  el.EnsureVertices(num_vertices());
  return el;
}

}  // namespace ubigraph::stream
