#include "stream/incremental_kcore.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace ubigraph::stream {

Status IncrementalKCore::InsertEdge(VertexId u, VertexId v) {
  if (u >= core_.size() || v >= core_.size()) {
    return Status::OutOfRange("vertex out of range");
  }
  if (u == v) return Status::Invalid("self-loops not supported");
  if (adjacency_[u].count(v)) {
    return Status::AlreadyExists("edge already present");
  }
  adjacency_[u].insert(v);
  adjacency_[v].insert(u);
  ++num_edges_;

  // Subcore repair (Sariyüce et al.): only vertices with core number
  // r = min(core(u), core(v)) that are K==r-connected to the lower endpoint
  // can be promoted to r+1, and by at most 1.
  uint32_t r = std::min(core_[u], core_[v]);
  VertexId root = core_[u] <= core_[v] ? u : v;

  // Candidate set: BFS from root through vertices with core == r.
  std::vector<VertexId> candidates;
  std::unordered_map<VertexId, uint32_t> cd;  // candidate degree
  std::unordered_set<VertexId> in_candidates;
  std::deque<VertexId> queue{root};
  in_candidates.insert(root);
  while (!queue.empty()) {
    VertexId w = queue.front();
    queue.pop_front();
    candidates.push_back(w);
    uint32_t degree = 0;
    for (VertexId x : adjacency_[w]) {
      if (core_[x] > r) {
        ++degree;
      } else if (core_[x] == r) {
        ++degree;
        if (!in_candidates.count(x)) {
          in_candidates.insert(x);
          queue.push_back(x);
        }
      }
    }
    cd[w] = degree;
  }

  // Peel candidates that cannot be in the (r+1)-core: they need > r
  // qualifying neighbors (core > r, or surviving candidates).
  std::deque<VertexId> evict;
  for (VertexId w : candidates) {
    if (cd[w] <= r) evict.push_back(w);
  }
  std::unordered_set<VertexId> evicted;
  while (!evict.empty()) {
    VertexId w = evict.front();
    evict.pop_front();
    if (evicted.count(w)) continue;
    evicted.insert(w);
    for (VertexId x : adjacency_[w]) {
      if (in_candidates.count(x) && !evicted.count(x)) {
        if (--cd[x] <= r && !evicted.count(x)) evict.push_back(x);
      }
    }
  }
  for (VertexId w : candidates) {
    if (!evicted.count(w)) core_[w] = r + 1;
  }
  return Status::OK();
}

Status IncrementalKCore::RemoveEdge(VertexId u, VertexId v) {
  if (u >= core_.size() || v >= core_.size()) {
    return Status::OutOfRange("vertex out of range");
  }
  if (!adjacency_[u].count(v)) return Status::NotFound("edge not present");
  adjacency_[u].erase(v);
  adjacency_[v].erase(u);
  --num_edges_;
  RecomputeAllCores();
  ++full_rebuilds_;
  return Status::OK();
}

void IncrementalKCore::RecomputeAllCores() {
  // Batch peeling (same as algo::CoreDecomposition but over the live sets).
  const VertexId n = num_vertices();
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (VertexId w = 0; w < n; ++w) {
    degree[w] = static_cast<uint32_t>(adjacency_[w].size());
    max_degree = std::max(max_degree, degree[w]);
  }
  std::vector<std::vector<VertexId>> buckets(max_degree + 1);
  for (VertexId w = 0; w < n; ++w) buckets[degree[w]].push_back(w);
  std::vector<bool> removed(n, false);
  uint32_t d = 0;
  uint32_t level = 0;  // core numbers are non-decreasing over the peel
  core_.assign(n, 0);
  for (VertexId processed = 0; processed < n;) {
    while (d <= max_degree && buckets[d].empty()) ++d;
    if (d > max_degree) break;
    VertexId w = buckets[d].back();
    buckets[d].pop_back();
    if (removed[w] || degree[w] != d) continue;
    removed[w] = true;
    level = std::max(level, degree[w]);
    core_[w] = level;
    ++processed;
    for (VertexId x : adjacency_[w]) {
      if (!removed[x]) {
        --degree[x];
        buckets[degree[x]].push_back(x);
        if (degree[x] < d) d = degree[x];
      }
    }
  }
}

uint32_t IncrementalKCore::Degeneracy() const {
  uint32_t best = 0;
  for (uint32_t c : core_) best = std::max(best, c);
  return best;
}

EdgeList IncrementalKCore::Snapshot() const {
  EdgeList el(num_vertices());
  for (VertexId u = 0; u < num_vertices(); ++u) {
    for (VertexId v : adjacency_[u]) {
      if (u < v) el.Add(u, v);
    }
  }
  el.EnsureVertices(num_vertices());
  return el;
}

}  // namespace ubigraph::stream
