#include "stream/streaming_graph.h"

#include <numeric>

namespace ubigraph::stream {

StreamingGraph::StreamingGraph(VertexId num_vertices, StreamingOptions options)
    : options_(options),
      adjacency_(num_vertices),
      degree_(num_vertices, 0),
      parent_(num_vertices),
      components_(num_vertices) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

uint32_t StreamingGraph::Find(uint32_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

uint64_t StreamingGraph::CountCommonNeighbors(VertexId u, VertexId v) const {
  const auto& a = adjacency_[u];
  const auto& b = adjacency_[v];
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  uint64_t common = 0;
  for (const auto& [w, mult] : small) {
    (void)mult;
    if (w != u && w != v && large.count(w)) ++common;
  }
  return common;
}

Status StreamingGraph::AddEdge(VertexId u, VertexId v, uint64_t timestamp) {
  if (u >= adjacency_.size() || v >= adjacency_.size()) {
    return Status::OutOfRange("vertex out of range");
  }
  if (timestamp < now_) {
    return Status::Invalid("timestamps must be non-decreasing");
  }
  if (u == v) return Status::Invalid("self-loops not supported in the stream");
  now_ = timestamp;
  Expire();

  // New triangles: only when this is the first parallel instance of {u, v}.
  if (adjacency_[u].find(v) == adjacency_[u].end()) {
    triangles_ += CountCommonNeighbors(u, v);
  }
  ++adjacency_[u][v];
  ++adjacency_[v][u];
  ++degree_[u];
  ++degree_[v];
  live_.push_back(TimedEdge{u, v, timestamp});

  if (!dirty_) {
    uint32_t ru = Find(u), rv = Find(v);
    if (ru != rv) {
      parent_[ru] = rv;
      --components_;
    }
  }
  return Status::OK();
}

Status StreamingGraph::Advance(uint64_t timestamp) {
  if (timestamp < now_) {
    return Status::Invalid("timestamps must be non-decreasing");
  }
  now_ = timestamp;
  Expire();
  return Status::OK();
}

void StreamingGraph::Expire() {
  uint64_t cutoff = now_ >= options_.window ? now_ - options_.window : 0;
  while (!live_.empty() && live_.front().timestamp < cutoff) {
    TimedEdge e = live_.front();
    live_.pop_front();
    // Remove one multiplicity; triangles only change when the last parallel
    // instance disappears.
    auto itu = adjacency_[e.u].find(e.v);
    if (itu != adjacency_[e.u].end() && itu->second == 1) {
      // Erase first so CountCommonNeighbors doesn't see the dying edge.
      adjacency_[e.u].erase(itu);
      adjacency_[e.v].erase(e.u);
      triangles_ -= CountCommonNeighbors(e.u, e.v);
    } else {
      if (itu != adjacency_[e.u].end()) --itu->second;
      auto itv = adjacency_[e.v].find(e.u);
      if (itv != adjacency_[e.v].end()) --itv->second;
    }
    --degree_[e.u];
    --degree_[e.v];
    dirty_ = true;
    ++expiries_since_rebuild_;
  }
  if (dirty_ && expiries_since_rebuild_ >= options_.rebuild_threshold) {
    RebuildComponents();
  }
}

void StreamingGraph::RebuildComponents() {
  std::iota(parent_.begin(), parent_.end(), 0u);
  components_ = static_cast<uint32_t>(parent_.size());
  for (const TimedEdge& e : live_) {
    uint32_t ru = Find(e.u), rv = Find(e.v);
    if (ru != rv) {
      parent_[ru] = rv;
      --components_;
    }
  }
  dirty_ = false;
  expiries_since_rebuild_ = 0;
}

uint32_t StreamingGraph::NumComponents() {
  if (dirty_) RebuildComponents();
  return components_;
}

double StreamingGraph::MeanDegree() const {
  if (degree_.empty()) return 0.0;
  uint64_t total = 0;
  for (uint64_t d : degree_) total += d;
  return static_cast<double>(total) / static_cast<double>(degree_.size());
}

EdgeList StreamingGraph::Snapshot() const {
  EdgeList el(num_vertices());
  el.Reserve(live_.size());
  for (const TimedEdge& e : live_) el.Add(e.u, e.v);
  el.EnsureVertices(num_vertices());
  return el;
}

}  // namespace ubigraph::stream
