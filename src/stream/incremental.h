// Shared substrate for incremental kernel maintenance over update streams —
// the paper's top-ranked challenge pairing (§4.3: scalability + dynamic
// graphs; "incremental or streaming computation" of PageRank, components,
// and k-core is what practitioners actually run). The per-kernel engines
// (incremental_pagerank.h, incremental_components.h, incremental_kcore.h)
// consume GraphDelta batches — typically drained from a DynamicGraph's delta
// log — and maintain the exact answer a from-scratch run would produce,
// touching only the affected region of the graph.
//
// Observability contract: every ApplyBatch flushes its work tallies through
// FlushIncrementalWork into stream.incremental.<kernel>.* counters (vertices
// reactivated, edges re-relaxed, rebuilds) so the incremental-vs-recompute
// cost asymmetry is measurable machine-independently, not just in wall time.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/dynamic_graph.h"

namespace ubigraph::stream {

/// Work tallies one ApplyBatch accumulates locally and flushes once at the
/// end of the batch (the registry's flush-at-end discipline; see DESIGN.md
/// "Observability").
struct IncrementalWork {
  /// Vertices whose state was re-derived (gathers, union touches, repair
  /// candidates) instead of staying quiescent.
  uint64_t vertices_reactivated = 0;
  /// Edges walked while re-deriving — the machine-independent cost to compare
  /// against a full recompute's edge count.
  uint64_t edges_rerelaxed = 0;
  /// Full from-scratch reconstructions this batch forced.
  uint64_t rebuilds = 0;

  IncrementalWork& operator+=(const IncrementalWork& o) {
    vertices_reactivated += o.vertices_reactivated;
    edges_rerelaxed += o.edges_rerelaxed;
    rebuilds += o.rebuilds;
    return *this;
  }
};

/// Flushes `work` into the global metrics registry as
/// stream.incremental.<kernel>.{vertices_reactivated,edges_rerelaxed,
/// rebuilds,batches}. No-op while instrumentation is disabled.
void FlushIncrementalWork(std::string_view kernel, const IncrementalWork& work);

/// Remaps arbitrary component labels to the canonical form used across the
/// repo: labels are assigned in order of the smallest vertex id in each
/// component (the convention of algo::WeaklyConnectedComponents), so two
/// labelings of the same partition compare equal after canonicalization.
std::vector<uint32_t> CanonicalComponentLabels(std::span<const uint32_t> labels);

/// Checks every delta's endpoints against the vertex universe. The engines
/// call this before mutating any state so a bad batch is rejected atomically.
Status ValidateDeltaEndpoints(std::span<const GraphDelta> deltas,
                              VertexId num_vertices);

}  // namespace ubigraph::stream
