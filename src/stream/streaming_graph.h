// Streaming graphs (Table 8: 18 participants have streams whose old edges are
// discarded; §4.3 lists incremental statistics and approximate connected
// components among their computations). A sliding-window edge stream with
// incremental degree statistics, exact incremental triangle counting, and
// amortized connected components (incremental union + rebuild on expiry).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::stream {

struct StreamingOptions {
  /// Edges older than (now - window) are expired on each Advance/Add.
  uint64_t window = 1000;
  /// Rebuild connected components lazily after this many expirations.
  uint64_t rebuild_threshold = 256;
};

/// A timestamped undirected edge stream over a fixed vertex universe.
class StreamingGraph {
 public:
  StreamingGraph(VertexId num_vertices, StreamingOptions options = {});

  /// Ingests an edge at `timestamp`. Timestamps must be non-decreasing.
  Status AddEdge(VertexId u, VertexId v, uint64_t timestamp);

  /// Moves the clock forward without adding an edge (expires old edges).
  Status Advance(uint64_t timestamp);

  VertexId num_vertices() const { return static_cast<VertexId>(degree_.size()); }
  uint64_t num_live_edges() const { return live_.size(); }
  uint64_t now() const { return now_; }

  uint64_t Degree(VertexId v) const { return degree_[v]; }
  double MeanDegree() const;

  /// Exact triangle count of the live window, maintained incrementally on
  /// insert and decrementally on expiry.
  uint64_t TriangleCount() const { return triangles_; }

  /// Connected-component count of the live window. Incremental for unions;
  /// deletions mark the structure dirty and a rebuild happens lazily (either
  /// after rebuild_threshold expirations or on the next query).
  uint32_t NumComponents();

  /// Whether the component structure is currently exact (false between an
  /// expiry and the next rebuild).
  bool components_fresh() const { return !dirty_; }

  /// Snapshot of live edges as an EdgeList.
  EdgeList Snapshot() const;

 private:
  struct TimedEdge {
    VertexId u;
    VertexId v;
    uint64_t timestamp;
  };

  void Expire();
  void RebuildComponents();
  uint64_t CountCommonNeighbors(VertexId u, VertexId v) const;

  StreamingOptions options_;
  uint64_t now_ = 0;
  std::deque<TimedEdge> live_;
  // Multiset adjacency: neighbor -> multiplicity.
  std::vector<std::unordered_map<VertexId, uint32_t>> adjacency_;
  std::vector<uint64_t> degree_;
  uint64_t triangles_ = 0;

  // Union-find over live vertices; exact until a deletion happens.
  std::vector<uint32_t> parent_;
  uint32_t components_ = 0;
  bool dirty_ = false;
  uint64_t expiries_since_rebuild_ = 0;

  uint32_t Find(uint32_t x);
};

}  // namespace ubigraph::stream
