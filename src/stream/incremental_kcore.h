// Incremental k-core maintenance — the computation §4.3's streaming
// participants explicitly named ("incremental or streaming computation of
// ... k-core"). Maintains exact core numbers of an undirected simple graph
// under edge insertions using the subcore-repair algorithm of Sariyüce et
// al. (VLDB'13): an insertion can raise core numbers by at most one, and
// only within the connected K==r region around the new edge. Edge deletions
// fall back to a full recomputation (counted, so callers can see the cost
// asymmetry the literature documents).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::stream {

class IncrementalKCore {
 public:
  explicit IncrementalKCore(VertexId num_vertices)
      : adjacency_(num_vertices), core_(num_vertices, 0) {}

  /// Inserts an undirected edge and repairs core numbers locally.
  /// Duplicate edges and self-loops are rejected.
  Status InsertEdge(VertexId u, VertexId v);

  /// Removes an edge; core numbers are recomputed from scratch.
  Status RemoveEdge(VertexId u, VertexId v);

  VertexId num_vertices() const { return static_cast<VertexId>(core_.size()); }
  uint64_t num_edges() const { return num_edges_; }

  /// Current core number of a vertex.
  uint32_t CoreNumber(VertexId v) const { return core_[v]; }
  const std::vector<uint32_t>& core_numbers() const { return core_; }

  /// Largest core number.
  uint32_t Degeneracy() const;

  /// How many times the expensive full recomputation ran (deletions).
  uint64_t full_rebuilds() const { return full_rebuilds_; }

  /// Current edges as an EdgeList (each undirected edge once, u < v).
  EdgeList Snapshot() const;

 private:
  void RecomputeAllCores();

  std::vector<std::unordered_set<VertexId>> adjacency_;
  std::vector<uint32_t> core_;
  uint64_t num_edges_ = 0;
  uint64_t full_rebuilds_ = 0;
};

}  // namespace ubigraph::stream
