// Incremental k-core maintenance — the computation §4.3's streaming
// participants explicitly named ("incremental or streaming computation of
// ... k-core"). Maintains exact core numbers of an undirected simple graph
// under edge insertions AND deletions using the subcore-repair algorithms of
// Sariyüce et al. (VLDB'13): a single edge change moves core numbers by at
// most one, and only within the K==r-connected subcore around the changed
// edge (r = min of the endpoint cores). Insertions peel promotion candidates
// with a cascade; deletions peel demotion candidates through the shared
// priority-bucket layer (common/buckets.h), popping sub-r buckets in order.
// The legacy behavior — full recomputation on every deletion — remains
// available via Options::repair_deletions = false, keeping full_rebuilds()
// meaningful as the documented cost-asymmetry counter.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "graph/dynamic_graph.h"
#include "graph/edge_list.h"
#include "stream/incremental.h"

namespace ubigraph::stream {

struct IncrementalKCoreOptions {
  /// Routed to algo::CoreDecomposition when a full recomputation runs
  /// (core numbers are a graph invariant, identical at every setting).
  uint32_t num_threads = 1;
  /// When true (default), deletions run bounded local subcore repair; when
  /// false, every deletion falls back to a full recomputation (the
  /// pre-repair behavior, counted by full_rebuilds()).
  bool repair_deletions = true;
};

class IncrementalKCore {
 public:
  using Options = IncrementalKCoreOptions;

  explicit IncrementalKCore(VertexId num_vertices, Options options = {})
      : options_(options), adjacency_(num_vertices), core_(num_vertices, 0) {}

  /// Inserts an undirected edge and repairs core numbers locally.
  /// Duplicate edges and self-loops are rejected.
  Status InsertEdge(VertexId u, VertexId v);

  /// Removes an edge and repairs core numbers — locally when
  /// Options::repair_deletions is set, otherwise by full recomputation.
  Status RemoveEdge(VertexId u, VertexId v);

  /// Applies an ordered batch of deltas (arcs interpreted as undirected
  /// edges). The batch is validated against the batch-adjusted edge set
  /// first and rejected atomically: OutOfRange / Invalid (self-loop) /
  /// AlreadyExists / NotFound. On success flushes stream.incremental.kcore.*
  /// counters (single-edge InsertEdge/RemoveEdge calls do not flush).
  struct BatchResult {
    /// Subcore candidates examined across the batch's repairs.
    uint64_t vertices_reactivated = 0;
    /// Adjacency entries scanned across the batch's repairs/rebuilds.
    uint64_t edges_rerelaxed = 0;
    /// Deletions absorbed by bounded local repair.
    uint64_t deletion_repairs = 0;
    /// Deletions that fell back to full recomputation.
    uint64_t full_rebuilds = 0;
  };
  Result<BatchResult> ApplyBatch(std::span<const GraphDelta> deltas);

  VertexId num_vertices() const { return static_cast<VertexId>(core_.size()); }
  uint64_t num_edges() const { return num_edges_; }

  /// Current core number of a vertex.
  uint32_t CoreNumber(VertexId v) const { return core_[v]; }
  const std::vector<uint32_t>& core_numbers() const { return core_; }

  /// Largest core number.
  uint32_t Degeneracy() const;

  /// How many times the expensive full recomputation ran (deletions with
  /// repair_deletions disabled).
  uint64_t full_rebuilds() const { return full_rebuilds_; }
  /// How many deletions were absorbed by bounded local repair instead.
  uint64_t deletion_repairs() const { return deletion_repairs_; }

  /// Current edges as an EdgeList (each undirected edge once, u < v).
  EdgeList Snapshot() const;

 private:
  Status InsertEdgeImpl(VertexId u, VertexId v, IncrementalWork* work);
  Status RemoveEdgeImpl(VertexId u, VertexId v, IncrementalWork* work);
  /// Demotes the core==r subcore members around the removed edge that lost
  /// their r-th qualifying neighbor (bucketed peel; see .cc).
  void RepairAfterDeletion(VertexId u, VertexId v, IncrementalWork* work);
  void RecomputeAllCores();

  Options options_;
  std::vector<std::unordered_set<VertexId>> adjacency_;
  std::vector<uint32_t> core_;
  uint64_t num_edges_ = 0;
  uint64_t full_rebuilds_ = 0;
  uint64_t deletion_repairs_ = 0;
};

}  // namespace ubigraph::stream
