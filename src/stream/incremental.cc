#include "stream/incremental.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace ubigraph::stream {

void FlushIncrementalWork(std::string_view kernel, const IncrementalWork& work) {
  if (!obs::Enabled()) return;
  const std::string prefix = "stream.incremental." + std::string(kernel);
  obs::AddCounter(prefix + ".batches", 1);
  obs::AddCounter(prefix + ".vertices_reactivated",
                  static_cast<int64_t>(work.vertices_reactivated));
  obs::AddCounter(prefix + ".edges_rerelaxed",
                  static_cast<int64_t>(work.edges_rerelaxed));
  obs::AddCounter(prefix + ".rebuilds", static_cast<int64_t>(work.rebuilds));
}

std::vector<uint32_t> CanonicalComponentLabels(std::span<const uint32_t> labels) {
  // First-appearance renumbering: scanning vertices in ascending id order,
  // each distinct raw label gets the next canonical id the first time it is
  // seen. Since a component's smallest vertex is the first of its members to
  // be scanned, this reproduces the smallest-vertex-order convention of
  // algo::WeaklyConnectedComponents regardless of the raw label values.
  std::vector<uint32_t> canonical(labels.size());
  std::vector<uint32_t> remap;  // raw label -> canonical id (+1; 0 = unseen)
  uint32_t max_raw = 0;
  for (uint32_t l : labels) max_raw = std::max(max_raw, l);
  remap.assign(static_cast<size_t>(max_raw) + 1, 0);
  uint32_t next = 0;
  for (size_t v = 0; v < labels.size(); ++v) {
    uint32_t& slot = remap[labels[v]];
    if (slot == 0) slot = ++next;
    canonical[v] = slot - 1;
  }
  return canonical;
}

Status ValidateDeltaEndpoints(std::span<const GraphDelta> deltas,
                              VertexId num_vertices) {
  for (size_t i = 0; i < deltas.size(); ++i) {
    const GraphDelta& d = deltas[i];
    if (d.src >= num_vertices || d.dst >= num_vertices) {
      return Status::OutOfRange(
          "delta " + std::to_string(i) + " endpoint (" + std::to_string(d.src) +
          ", " + std::to_string(d.dst) + ") outside universe of " +
          std::to_string(num_vertices) + " vertices");
    }
  }
  return Status::OK();
}

}  // namespace ubigraph::stream
