// Incrementally maintained weakly connected components over GraphDelta
// batches. Insertions are absorbed by a union-find in near-constant time
// (component merges only ever coarsen the partition). Deletions can split a
// component, which union-find cannot undo, so a batch whose deletions remove
// the last undirected connection between two distinct endpoints triggers ONE
// full relabel at the end of the batch — counted in rebuilds(), the
// cost-asymmetry knob mirroring IncrementalKCore::full_rebuilds(). Deletions
// of parallel arcs (another copy survives) and self-loops never rebuild.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "algorithms/connected_components.h"
#include "common/result.h"
#include "graph/edge_list.h"
#include "stream/incremental.h"

namespace ubigraph::stream {

struct IncrementalComponentsOptions {
  /// Thread count handed to the label-propagation relabel on rebuilds.
  /// Labels are identical at every setting (min-label Jacobi fixpoint), so
  /// this only affects rebuild latency.
  uint32_t num_threads = 1;
};

class IncrementalComponents {
 public:
  using Options = IncrementalComponentsOptions;

  struct BatchResult {
    /// Component merges performed by insertions.
    uint64_t merges = 0;
    /// 1 when the batch's deletions forced a relabel, else 0.
    uint64_t rebuilds = 0;
    uint32_t num_components = 0;
  };

  /// Builds the engine over a directed edge snapshot (weak connectivity:
  /// direction is ignored, parallel arcs add multiplicity).
  static Result<IncrementalComponents> Create(const EdgeList& edges,
                                              Options options = {});

  /// Applies an ordered delta batch. Validated first and rejected atomically
  /// (OutOfRange endpoints; NotFound when removing an arc that is not live
  /// after earlier deltas of the batch). Flushes
  /// stream.incremental.components.* counters on success.
  Result<BatchResult> ApplyBatch(std::span<const GraphDelta> deltas);

  /// Canonical labels: assigned in order of each component's smallest vertex,
  /// matching algo::WeaklyConnectedComponents on the same live graph.
  std::vector<uint32_t> Labels() const;
  uint32_t num_components() const {
    return static_cast<uint32_t>(uf_.num_sets());
  }
  VertexId num_vertices() const { return n_; }
  uint64_t num_edges() const { return num_edges_; }
  /// Total full relabels forced by deletions since creation.
  uint64_t rebuilds() const { return rebuilds_; }

 private:
  IncrementalComponents(VertexId n, Options options);

  /// Re-derives the union-find from the live undirected multiplicity map.
  /// Returns the number of live arcs scanned (the rebuild's edge work).
  uint64_t Rebuild();

  VertexId n_ = 0;
  Options options_;
  uint64_t num_edges_ = 0;
  uint64_t rebuilds_ = 0;
  /// Live multiplicity per directed (src, dst) arc; zero-count keys erased.
  std::map<std::pair<VertexId, VertexId>, uint64_t> mult_;
  mutable algo::UnionFind uf_;
};

}  // namespace ubigraph::stream
