// Delta-maintained PageRank over GraphDelta batches. Extends the kDelta
// power-iteration mode (src/algorithms/pagerank.cc) from "skip quiescent
// vertices within one run" to "stay warm across structural updates": after a
// batch of edge inserts/deletes only the vertices whose in-sums or source
// weights actually changed are re-activated, and sweeps proceed from the
// previous fixpoint instead of a cold teleport vector.
//
// Exactness: a batch is converged only when a *full* sweep's L1 residual
// falls under tolerance (the same certification rule as kDelta), so the
// maintained scores satisfy the same fixpoint criterion a from-scratch run
// certifies. Note that two IEEE-754 fixpoint trajectories that satisfy the
// same criterion need not be bitwise equal — see DESIGN.md "Incremental
// maintenance" for the measured ulp-level gap vs. cold recompute — but
// results ARE bitwise-identical across thread counts: both the serial and
// parallel paths reduce over the same fixed grain-1024 chunk tree
// (SerialChunkReduce / ParallelReduce in src/common/parallel.h).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"
#include "stream/incremental.h"

namespace ubigraph::stream {

struct IncrementalPageRankOptions {
  double damping = 0.85;
  /// L1 residual threshold certified on full sweeps.
  double tolerance = 1e-9;
  /// Sweep budget per batch (and for the initial compute). Warm-started
  /// batches normally finish in a handful of sweeps; the budget only binds
  /// on adversarial batches, in which case the BatchResult reports
  /// converged = false and scores hold the best iterate.
  uint32_t max_sweeps = 200;
  /// 0 = hardware_concurrency, 1 = serial (default). Scores are
  /// bitwise-identical at every setting.
  uint32_t num_threads = 1;
};

class IncrementalPageRank {
 public:
  using Options = IncrementalPageRankOptions;

  /// Work and convergence report for one ApplyBatch (or the initial run).
  struct BatchResult {
    uint32_t sweeps = 0;
    double final_delta = 0.0;
    bool converged = false;
    /// Vertex gathers performed (sum of frontier sizes across sweeps).
    uint64_t vertices_reactivated = 0;
    /// In-edges traversed while gathering — compare against
    /// iterations * num_edges for a from-scratch run.
    uint64_t edges_rerelaxed = 0;
  };

  /// Builds the engine over a directed edge snapshot (multigraph: parallel
  /// arcs each contribute) and runs the initial computation to fixpoint.
  /// Fails on an empty graph or damping outside [0, 1).
  static Result<IncrementalPageRank> Create(const EdgeList& edges,
                                            Options options = {});

  /// Applies an ordered batch of edge deltas and re-converges. The batch is
  /// validated first and rejected atomically: OutOfRange for endpoints
  /// outside the vertex universe, NotFound for removing an arc the graph
  /// (adjusted for earlier deltas in the same batch) does not hold. Flushes
  /// stream.incremental.pagerank.* counters on success.
  Result<BatchResult> ApplyBatch(std::span<const GraphDelta> deltas);

  /// Current maintained scores (sum to ~1).
  const std::vector<double>& scores() const { return rank_; }
  VertexId num_vertices() const { return n_; }
  uint64_t num_edges() const { return num_edges_; }
  /// Report of the initial from-snapshot computation done by Create.
  const BatchResult& initial_result() const { return initial_result_; }

 private:
  IncrementalPageRank(VertexId n, Options options);

  /// Runs kDelta-style sweeps starting from the given active frontier until
  /// a full sweep certifies convergence (or the budget runs out).
  BatchResult RunSweeps(std::vector<VertexId> seeds, bool start_full);

  VertexId n_ = 0;
  Options options_;
  uint64_t num_edges_ = 0;
  // Sorted ascending per vertex; parallel arcs appear with multiplicity. The
  // ascending order matches CsrGraph's sorted neighbor ranges, so gathers
  // accumulate in the same order as the batch kernel's.
  std::vector<std::vector<VertexId>> out_adj_;
  std::vector<std::vector<VertexId>> in_adj_;
  std::vector<double> inv_outdeg_;
  std::vector<double> rank_;
  // Dangling mass of the sweep that produced rank_ — the drift baseline for
  // quiescent vertices (see the kDelta drift rule in algorithms/pagerank.cc).
  double prev_dangling_ = 0.0;
  BatchResult initial_result_;
};

}  // namespace ubigraph::stream
