#include "stream/incremental_components.h"

#include <string>

#include "graph/csr_graph.h"

namespace ubigraph::stream {

IncrementalComponents::IncrementalComponents(VertexId n, Options options)
    : n_(n), options_(options), uf_(n) {}

Result<IncrementalComponents> IncrementalComponents::Create(
    const EdgeList& edges, Options options) {
  const VertexId n = edges.num_vertices();
  if (n == 0) return Status::Invalid("IncrementalComponents on empty graph");
  IncrementalComponents engine(n, options);
  for (const Edge& e : edges.edges()) {
    if (e.src >= n || e.dst >= n) {
      return Status::OutOfRange("edge endpoint outside vertex universe");
    }
    ++engine.mult_[{e.src, e.dst}];
    ++engine.num_edges_;
    if (e.src != e.dst) engine.uf_.Union(e.src, e.dst);
  }
  return engine;
}

Result<IncrementalComponents::BatchResult> IncrementalComponents::ApplyBatch(
    std::span<const GraphDelta> deltas) {
  UG_RETURN_NOT_OK(ValidateDeltaEndpoints(deltas, n_));

  // Phase 1: validate removals against multiplicities adjusted by earlier
  // deltas of this batch; reject the whole batch before mutating.
  std::map<std::pair<VertexId, VertexId>, int64_t> adjust;
  for (size_t i = 0; i < deltas.size(); ++i) {
    const GraphDelta& d = deltas[i];
    int64_t& adj = adjust[{d.src, d.dst}];
    if (d.kind == GraphDelta::Kind::kInsert) {
      ++adj;
      continue;
    }
    auto it = mult_.find({d.src, d.dst});
    const int64_t live = (it == mult_.end() ? 0 : static_cast<int64_t>(it->second)) + adj;
    if (live <= 0) {
      return Status::NotFound("delta " + std::to_string(i) + " removes arc (" +
                              std::to_string(d.src) + ", " +
                              std::to_string(d.dst) + ") with no live copy");
    }
    --adj;
  }

  // Phase 2: apply. Inserts union immediately; a deletion only endangers
  // connectivity when it removes the LAST undirected connection between
  // distinct endpoints, in which case one rebuild runs at the end of the
  // batch (splits cannot be undone by union-find).
  BatchResult result;
  IncrementalWork work;
  bool needs_rebuild = false;
  auto undirected_mult = [&](VertexId a, VertexId b) -> uint64_t {
    uint64_t m = 0;
    if (auto it = mult_.find({a, b}); it != mult_.end()) m += it->second;
    if (auto it = mult_.find({b, a}); it != mult_.end()) m += it->second;
    return m;
  };
  for (const GraphDelta& d : deltas) {
    if (d.kind == GraphDelta::Kind::kInsert) {
      ++mult_[{d.src, d.dst}];
      ++num_edges_;
      if (d.src != d.dst) {
        ++work.edges_rerelaxed;
        if (uf_.Union(d.src, d.dst)) {
          ++result.merges;
          work.vertices_reactivated += 2;
        }
      }
    } else {
      auto it = mult_.find({d.src, d.dst});
      if (--it->second == 0) mult_.erase(it);
      --num_edges_;
      if (d.src != d.dst && undirected_mult(d.src, d.dst) == 0) {
        needs_rebuild = true;
      }
    }
  }

  if (needs_rebuild) {
    work.edges_rerelaxed += Rebuild();
    work.vertices_reactivated += n_;
    work.rebuilds = 1;
    result.rebuilds = 1;
  }
  result.num_components = num_components();
  FlushIncrementalWork("components", work);
  return result;
}

uint64_t IncrementalComponents::Rebuild() {
  // Relabel from scratch with the frontier variant of min-label propagation
  // (identical labels at any thread count), then reseed the union-find from
  // the labels so subsequent insertions resume in near-constant time.
  EdgeList live(n_);
  uint64_t scanned = 0;
  for (const auto& [arc, count] : mult_) {
    if (arc.first == arc.second) continue;
    live.Add(arc.first, arc.second);
    ++scanned;
  }
  auto csr = CsrGraph::FromEdges(std::move(live),
                                 CsrOptions{.directed = false,
                                            .deduplicate = true,
                                            .remove_self_loops = true,
                                            .num_threads = options_.num_threads});
  auto components = algo::ConnectedComponentsLabelProp(
      csr.ValueOrDie(),
      algo::ComponentsOptions{.num_threads = options_.num_threads,
                              .use_frontier = true});
  const std::vector<uint32_t>& label = components.ValueOrDie().label;
  uf_ = algo::UnionFind(n_);
  std::vector<VertexId> rep(components.ValueOrDie().num_components,
                            static_cast<VertexId>(n_));
  for (VertexId v = 0; v < n_; ++v) {
    VertexId& r = rep[label[v]];
    if (r == static_cast<VertexId>(n_)) {
      r = v;
    } else {
      uf_.Union(r, v);
    }
  }
  ++rebuilds_;
  return scanned;
}

std::vector<uint32_t> IncrementalComponents::Labels() const {
  std::vector<uint32_t> raw(n_);
  for (VertexId v = 0; v < n_; ++v) {
    raw[v] = static_cast<uint32_t>(uf_.Find(v));
  }
  return CanonicalComponentLabels(raw);
}

}  // namespace ubigraph::stream
