// Graph layout algorithms (visualization was the survey's #2 challenge and
// most popular non-query task). Force-directed (Fruchterman-Reingold),
// circular, layered hierarchical (the §6.2 "hierarchical graphs" request),
// and grid layouts, producing unit-square coordinates.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::viz {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

using Layout = std::vector<Point>;  // one point per vertex, in [0, 1]^2

struct ForceLayoutOptions {
  uint32_t iterations = 100;
  /// Initial temperature as a fraction of the frame (cooled linearly).
  double initial_temperature = 0.1;
  uint64_t seed = 42;
};

/// Fruchterman-Reingold force-directed layout over the undirected view.
Layout ForceDirectedLayout(const CsrGraph& g, ForceLayoutOptions options = {});

/// Vertices evenly spaced on a circle (in vertex-id order).
Layout CircularLayout(const CsrGraph& g);

/// Layered (Sugiyama-lite) layout for DAG-ish graphs: longest-path layering
/// over the condensation, then iterative barycenter ordering within layers to
/// reduce crossings. Works on any directed graph (cycles collapse to one
/// layer assignment via SCC condensation).
Layout HierarchicalLayout(const CsrGraph& g, uint32_t barycenter_sweeps = 4);

/// Row-major grid placement (ceil(sqrt(n)) columns).
Layout GridLayout(const CsrGraph& g);

/// Counts pairwise edge crossings of a straight-line drawing — the quality
/// metric used by the layout tests/benches. O(E^2); small graphs only.
uint64_t CountEdgeCrossings(const CsrGraph& g, const Layout& layout);

/// Mean edge length of the drawing.
double MeanEdgeLength(const CsrGraph& g, const Layout& layout);

}  // namespace ubigraph::viz
