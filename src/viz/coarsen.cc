#include "viz/coarsen.h"

#include <algorithm>
#include <unordered_map>

namespace ubigraph::viz {

Result<CoarsenedGraph> CoarsenByGroups(const CsrGraph& g,
                                       const std::vector<uint32_t>& group,
                                       uint32_t num_groups) {
  if (group.size() != g.num_vertices()) {
    return Status::Invalid("group assignment size mismatch");
  }
  for (uint32_t x : group) {
    if (x >= num_groups) return Status::Invalid("group id out of range");
  }
  CoarsenedGraph out;
  out.group_of = group;
  out.group_sizes.assign(num_groups, 0);
  for (uint32_t x : group) ++out.group_sizes[x];

  std::unordered_map<uint64_t, double> agg;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      uint32_t cu = group[u], cv = group[v];
      if (cu == cv) continue;
      agg[(static_cast<uint64_t>(cu) << 32) | cv] += 1.0;
    }
  }
  EdgeList el(num_groups);
  el.Reserve(agg.size());
  out.edge_multiplicity.reserve(agg.size());
  for (const auto& [key, mult] : agg) {
    el.Add(static_cast<VertexId>(key >> 32),
           static_cast<VertexId>(key & 0xFFFFFFFFu), mult);
  }
  el.EnsureVertices(num_groups);
  CsrOptions opts;
  opts.directed = g.directed();
  UG_ASSIGN_OR_RETURN(out.graph, CsrGraph::FromEdges(std::move(el), opts));
  // CSR construction sorts adjacency; regenerate multiplicities in CSR order.
  for (VertexId u = 0; u < out.graph.num_vertices(); ++u) {
    for (double w : out.graph.OutWeights(u)) out.edge_multiplicity.push_back(w);
  }
  return out;
}

Result<SampledGraph> SampleTopDegree(const CsrGraph& g, VertexId max_vertices) {
  if (max_vertices == 0) return Status::Invalid("max_vertices must be positive");
  SampledGraph out;
  std::vector<VertexId> verts(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) verts[v] = v;
  VertexId keep = std::min<VertexId>(max_vertices, g.num_vertices());
  std::partial_sort(verts.begin(), verts.begin() + keep, verts.end(),
                    [&](VertexId a, VertexId b) {
                      if (g.OutDegree(a) != g.OutDegree(b)) {
                        return g.OutDegree(a) > g.OutDegree(b);
                      }
                      return a < b;
                    });
  verts.resize(keep);
  std::sort(verts.begin(), verts.end());
  out.original_id = verts;
  std::unordered_map<VertexId, VertexId> remap;
  for (VertexId i = 0; i < verts.size(); ++i) remap[verts[i]] = i;

  EdgeList el(keep);
  for (VertexId u : verts) {
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      auto it = remap.find(nbrs[i]);
      if (it != remap.end()) el.Add(remap[u], it->second, ws[i]);
    }
  }
  el.EnsureVertices(keep);
  CsrOptions opts;
  opts.directed = g.directed();
  UG_ASSIGN_OR_RETURN(out.graph, CsrGraph::FromEdges(std::move(el), opts));
  return out;
}

}  // namespace ubigraph::viz
