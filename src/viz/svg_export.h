// SVG rendering of a laid-out graph, with per-vertex color/size/label
// customization (the §6.2 "customizability" challenge).
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "viz/layout.h"

namespace ubigraph::viz {

struct SvgStyle {
  double width = 800;
  double height = 600;
  double margin = 20;
  double vertex_radius = 4;
  std::string vertex_fill = "#4477AA";
  std::string edge_stroke = "#999999";
  double edge_width = 1.0;
  bool draw_arrowheads = false;       // for directed graphs
  bool draw_labels = false;           // vertex-id labels
  /// Optional overrides, indexed by vertex (empty = use defaults).
  std::vector<std::string> vertex_colors;
  std::vector<double> vertex_radii;
  std::vector<std::string> vertex_labels;
};

/// Renders the graph as a standalone SVG document.
std::string RenderSvg(const CsrGraph& g, const Layout& layout,
                      const SvgStyle& style = {});

/// Assigns a categorical color per value (e.g. community label) from a
/// 12-color palette, cycling when there are more categories.
std::vector<std::string> CategoricalColors(const std::vector<uint32_t>& categories);

}  // namespace ubigraph::viz
