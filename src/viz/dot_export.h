// Graphviz DOT export (Graphviz is one of the surveyed visualization tools;
// DOT is the interchange format its users requested most).
#pragma once

#include <string>
#include <vector>

#include "graph/csr_graph.h"
#include "graph/property_graph.h"

namespace ubigraph::viz {

struct DotOptions {
  std::string graph_name = "G";
  bool include_weights = false;
  /// Optional per-vertex labels / colors (empty = defaults).
  std::vector<std::string> vertex_labels;
  std::vector<std::string> vertex_colors;
};

/// Renders a CSR graph as DOT (digraph or graph per g.directed()).
std::string RenderDot(const CsrGraph& g, const DotOptions& options = {});

/// Renders a property graph as DOT with labels from the given property key
/// (falls back to the vertex label).
std::string RenderPropertyGraphDot(const PropertyGraph& g,
                                   const std::string& label_key = "name");

}  // namespace ubigraph::viz
