#include "viz/svg_export.h"

#include <cmath>

#include "common/strings.h"

namespace ubigraph::viz {

std::string RenderSvg(const CsrGraph& g, const Layout& layout,
                      const SvgStyle& style) {
  auto sx = [&](double x) {
    return style.margin + x * (style.width - 2 * style.margin);
  };
  auto sy = [&](double y) {
    return style.margin + y * (style.height - 2 * style.margin);
  };

  std::string out;
  out += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
         FormatDouble(style.width) + "\" height=\"" + FormatDouble(style.height) +
         "\" viewBox=\"0 0 " + FormatDouble(style.width) + " " +
         FormatDouble(style.height) + "\">\n";
  if (style.draw_arrowheads) {
    out +=
        "  <defs><marker id=\"arrow\" viewBox=\"0 0 10 10\" refX=\"10\" "
        "refY=\"5\" markerWidth=\"6\" markerHeight=\"6\" orient=\"auto\">"
        "<path d=\"M 0 0 L 10 5 L 0 10 z\" fill=\"" +
        style.edge_stroke + "\"/></marker></defs>\n";
  }

  out += "  <g stroke=\"" + style.edge_stroke + "\" stroke-width=\"" +
         FormatDouble(style.edge_width) + "\">\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (!g.directed() && v < u) continue;  // draw undirected edges once
      double x1 = sx(layout[u].x), y1 = sy(layout[u].y);
      double x2 = sx(layout[v].x), y2 = sy(layout[v].y);
      if (style.draw_arrowheads) {
        // Shorten the line so the arrowhead lands on the vertex boundary.
        double dx = x2 - x1, dy = y2 - y1;
        double len = std::sqrt(dx * dx + dy * dy);
        double r = style.vertex_radius;
        if (len > r) {
          x2 -= dx / len * r;
          y2 -= dy / len * r;
        }
      }
      out += "    <line x1=\"" + FormatDouble(x1) + "\" y1=\"" + FormatDouble(y1) +
             "\" x2=\"" + FormatDouble(x2) + "\" y2=\"" + FormatDouble(y2) + "\"";
      if (style.draw_arrowheads) out += " marker-end=\"url(#arrow)\"";
      out += "/>\n";
    }
  }
  out += "  </g>\n";

  out += "  <g>\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const std::string& fill = v < style.vertex_colors.size() &&
                                      !style.vertex_colors[v].empty()
                                  ? style.vertex_colors[v]
                                  : style.vertex_fill;
    double radius = v < style.vertex_radii.size() && style.vertex_radii[v] > 0
                        ? style.vertex_radii[v]
                        : style.vertex_radius;
    out += "    <circle cx=\"" + FormatDouble(sx(layout[v].x)) + "\" cy=\"" +
           FormatDouble(sy(layout[v].y)) + "\" r=\"" + FormatDouble(radius) +
           "\" fill=\"" + fill + "\"/>\n";
    if (style.draw_labels || v < style.vertex_labels.size()) {
      std::string label = v < style.vertex_labels.size() &&
                                  !style.vertex_labels[v].empty()
                              ? style.vertex_labels[v]
                              : (style.draw_labels ? std::to_string(v) : "");
      if (!label.empty()) {
        out += "    <text x=\"" + FormatDouble(sx(layout[v].x) + radius + 2) +
               "\" y=\"" + FormatDouble(sy(layout[v].y) + 3) +
               "\" font-size=\"9\" font-family=\"sans-serif\">" +
               XmlEscape(label) + "</text>\n";
      }
    }
  }
  out += "  </g>\n</svg>\n";
  return out;
}

std::vector<std::string> CategoricalColors(const std::vector<uint32_t>& categories) {
  static const char* kPalette[] = {
      "#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377",
      "#BBBBBB", "#332288", "#DDCC77", "#117733", "#88CCEE", "#CC6677"};
  constexpr size_t kPaletteSize = sizeof(kPalette) / sizeof(kPalette[0]);
  std::vector<std::string> colors;
  colors.reserve(categories.size());
  for (uint32_t c : categories) colors.emplace_back(kPalette[c % kPaletteSize]);
  return colors;
}

}  // namespace ubigraph::viz
