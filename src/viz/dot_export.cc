#include "viz/dot_export.h"

#include "common/strings.h"

namespace ubigraph::viz {

namespace {

std::string DotQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string RenderDot(const CsrGraph& g, const DotOptions& options) {
  std::string out;
  out += g.directed() ? "digraph " : "graph ";
  out += DotQuote(options.graph_name) + " {\n";
  const char* arrow = g.directed() ? " -> " : " -- ";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    bool has_label = v < options.vertex_labels.size() &&
                     !options.vertex_labels[v].empty();
    bool has_color = v < options.vertex_colors.size() &&
                     !options.vertex_colors[v].empty();
    if (has_label || has_color) {
      out += "  " + std::to_string(v) + " [";
      if (has_label) out += "label=" + DotQuote(options.vertex_labels[v]);
      if (has_label && has_color) out += ", ";
      if (has_color) {
        out += "style=filled, fillcolor=" + DotQuote(options.vertex_colors[v]);
      }
      out += "];\n";
    }
  }
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      VertexId v = nbrs[i];
      if (!g.directed() && v < u) continue;
      out += "  " + std::to_string(u) + arrow + std::to_string(v);
      if (options.include_weights) {
        out += " [label=" + DotQuote(FormatDouble(ws[i])) + "]";
      }
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string RenderPropertyGraphDot(const PropertyGraph& g,
                                   const std::string& label_key) {
  std::string out = "digraph G {\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    PropertyValue name = g.GetVertexProperty(v, label_key);
    std::string label = g.VertexLabel(v);
    if (std::holds_alternative<std::string>(name)) {
      label += ": " + std::get<std::string>(name);
    }
    out += "  " + std::to_string(v) + " [label=" + DotQuote(label) + "];\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    out += "  " + std::to_string(g.EdgeSrc(e)) + " -> " +
           std::to_string(g.EdgeDst(e)) + " [label=" + DotQuote(g.EdgeType(e)) +
           "];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace ubigraph::viz
