// Large-graph visualization support (§6.2: "rendering large graphs with
// thousands or even millions of vertices"): coarsen by community, or sample
// the highest-degree core, so huge graphs become drawable summaries.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::viz {

struct CoarsenedGraph {
  CsrGraph graph;                         // one vertex per group
  std::vector<uint32_t> group_of;         // original vertex -> coarse vertex
  std::vector<uint64_t> group_sizes;      // members per coarse vertex
  std::vector<double> edge_multiplicity;  // parallel original edges per coarse edge
};

/// Collapses each group (e.g. a community assignment) to one vertex; edge
/// weights accumulate crossing-edge multiplicities. Self-group edges dropped.
Result<CoarsenedGraph> CoarsenByGroups(const CsrGraph& g,
                                       const std::vector<uint32_t>& group,
                                       uint32_t num_groups);

/// Keeps only the `max_vertices` highest-degree vertices and the edges among
/// them (the "ego skeleton" view), remapping to dense ids.
struct SampledGraph {
  CsrGraph graph;
  std::vector<VertexId> original_id;  // sampled vertex -> original id
};
Result<SampledGraph> SampleTopDegree(const CsrGraph& g, VertexId max_vertices);

}  // namespace ubigraph::viz
