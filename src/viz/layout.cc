#include "viz/layout.h"

#include <algorithm>
#include <cmath>

#include "algorithms/connected_components.h"

namespace ubigraph::viz {

namespace {

void NormalizeToUnitSquare(Layout* layout) {
  if (layout->empty()) return;
  double min_x = 1e300, max_x = -1e300, min_y = 1e300, max_y = -1e300;
  for (const Point& p : *layout) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  double span_x = max_x - min_x, span_y = max_y - min_y;
  for (Point& p : *layout) {
    p.x = span_x > 0 ? (p.x - min_x) / span_x : 0.5;
    p.y = span_y > 0 ? (p.y - min_y) / span_y : 0.5;
  }
}

}  // namespace

Layout ForceDirectedLayout(const CsrGraph& g, ForceLayoutOptions options) {
  const VertexId n = g.num_vertices();
  Layout pos(n);
  if (n == 0) return pos;
  Rng rng(options.seed);
  for (Point& p : pos) {
    p.x = rng.NextDouble();
    p.y = rng.NextDouble();
  }
  if (n == 1) {
    pos[0] = {0.5, 0.5};
    return pos;
  }

  // Undirected unique edges.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
      else if (v < u && !g.HasEdge(v, u)) edges.emplace_back(v, u);
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  const double k = std::sqrt(1.0 / static_cast<double>(n));  // ideal distance
  std::vector<Point> disp(n);
  for (uint32_t iter = 0; iter < options.iterations; ++iter) {
    double temperature = options.initial_temperature *
                         (1.0 - static_cast<double>(iter) / options.iterations);
    for (Point& d : disp) d = {0.0, 0.0};
    // Repulsive forces: O(n^2) exact — fine for layout-scale graphs.
    for (VertexId i = 0; i < n; ++i) {
      for (VertexId j = i + 1; j < n; ++j) {
        double dx = pos[i].x - pos[j].x;
        double dy = pos[i].y - pos[j].y;
        double dist2 = dx * dx + dy * dy;
        double dist = std::sqrt(dist2);
        if (dist < 1e-9) {
          dx = 1e-4 * ((i * 2654435761u) % 17 - 8);
          dy = 1e-4 * ((j * 2654435761u) % 19 - 9);
          dist = std::sqrt(dx * dx + dy * dy);
          if (dist < 1e-12) {
            dx = 1e-4;
            dist = 1e-4;
          }
        }
        double force = k * k / dist;
        double fx = dx / dist * force;
        double fy = dy / dist * force;
        disp[i].x += fx;
        disp[i].y += fy;
        disp[j].x -= fx;
        disp[j].y -= fy;
      }
    }
    // Attractive forces along edges.
    for (const auto& [u, v] : edges) {
      double dx = pos[u].x - pos[v].x;
      double dy = pos[u].y - pos[v].y;
      double dist = std::sqrt(dx * dx + dy * dy);
      if (dist < 1e-9) continue;
      double force = dist * dist / k;
      double fx = dx / dist * force;
      double fy = dy / dist * force;
      disp[u].x -= fx;
      disp[u].y -= fy;
      disp[v].x += fx;
      disp[v].y += fy;
    }
    // Apply, limited by temperature.
    for (VertexId v = 0; v < n; ++v) {
      double len = std::sqrt(disp[v].x * disp[v].x + disp[v].y * disp[v].y);
      if (len < 1e-12) continue;
      double capped = std::min(len, temperature);
      pos[v].x += disp[v].x / len * capped;
      pos[v].y += disp[v].y / len * capped;
    }
  }
  NormalizeToUnitSquare(&pos);
  return pos;
}

Layout CircularLayout(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  Layout pos(n);
  for (VertexId v = 0; v < n; ++v) {
    double angle = 2.0 * M_PI * static_cast<double>(v) / std::max<VertexId>(n, 1);
    pos[v].x = 0.5 + 0.5 * std::cos(angle);
    pos[v].y = 0.5 + 0.5 * std::sin(angle);
  }
  return pos;
}

Layout HierarchicalLayout(const CsrGraph& g, uint32_t barycenter_sweeps) {
  const VertexId n = g.num_vertices();
  Layout pos(n);
  if (n == 0) return pos;

  // Layer = longest path depth over the SCC condensation.
  algo::ComponentResult scc = algo::StronglyConnectedComponents(g);
  const uint32_t k = scc.num_components;
  // Condensation adjacency. Tarjan labels are reverse-topological: an edge
  // goes from a higher label to a lower one, so process components in
  // descending label order for longest-path.
  std::vector<std::vector<uint32_t>> dag(k);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (scc.label[u] != scc.label[v]) dag[scc.label[u]].push_back(scc.label[v]);
    }
  }
  std::vector<uint32_t> layer_of_comp(k, 0);
  for (uint32_t c = 0; c < k; ++c) {
    // Tarjan labels are reverse-topological: every successor of c has a
    // smaller label and is already assigned. layer = max(successors) + 1.
    uint32_t layer = 0;
    for (uint32_t succ : dag[c]) {
      layer = std::max(layer, layer_of_comp[succ] + 1);
    }
    layer_of_comp[c] = layer;
  }
  uint32_t max_layer = 0;
  std::vector<uint32_t> layer(n);
  for (VertexId v = 0; v < n; ++v) {
    layer[v] = layer_of_comp[scc.label[v]];
    max_layer = std::max(max_layer, layer[v]);
  }
  // Flip so sources are at the top (layer 0).
  for (VertexId v = 0; v < n; ++v) layer[v] = max_layer - layer[v];

  // Group vertices per layer.
  std::vector<std::vector<VertexId>> layers(max_layer + 1);
  for (VertexId v = 0; v < n; ++v) layers[layer[v]].push_back(v);

  // Barycenter ordering sweeps to reduce crossings.
  std::vector<double> order_pos(n);
  for (const auto& l : layers) {
    for (size_t i = 0; i < l.size(); ++i) order_pos[l[i]] = static_cast<double>(i);
  }
  // Undirected adjacency for barycenters.
  std::vector<std::vector<VertexId>> adj(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
  for (uint32_t sweep = 0; sweep < barycenter_sweeps; ++sweep) {
    for (auto& l : layers) {
      std::vector<std::pair<double, VertexId>> keyed;
      keyed.reserve(l.size());
      for (VertexId v : l) {
        double sum = 0.0;
        uint32_t cnt = 0;
        for (VertexId u : adj[v]) {
          if (layer[u] != layer[v]) {
            sum += order_pos[u];
            ++cnt;
          }
        }
        keyed.emplace_back(cnt ? sum / cnt : order_pos[v], v);
      }
      std::stable_sort(keyed.begin(), keyed.end());
      for (size_t i = 0; i < keyed.size(); ++i) {
        l[i] = keyed[i].second;
        order_pos[l[i]] = static_cast<double>(i);
      }
    }
  }

  for (uint32_t li = 0; li <= max_layer; ++li) {
    const auto& l = layers[li];
    double y = max_layer == 0 ? 0.5
                              : static_cast<double>(li) / max_layer;
    for (size_t i = 0; i < l.size(); ++i) {
      double x = l.size() == 1 ? 0.5
                               : static_cast<double>(i) / (l.size() - 1);
      pos[l[i]] = {x, y};
    }
  }
  return pos;
}

Layout GridLayout(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  Layout pos(n);
  if (n == 0) return pos;
  uint32_t cols = static_cast<uint32_t>(std::ceil(std::sqrt(n)));
  uint32_t rows = (n + cols - 1) / cols;
  for (VertexId v = 0; v < n; ++v) {
    uint32_t r = v / cols, c = v % cols;
    pos[v].x = cols == 1 ? 0.5 : static_cast<double>(c) / (cols - 1);
    pos[v].y = rows == 1 ? 0.5 : static_cast<double>(r) / (rows - 1);
  }
  return pos;
}

namespace {

/// Proper segment intersection (shared endpoints do not count).
bool SegmentsCross(Point a, Point b, Point c, Point d) {
  auto orient = [](Point p, Point q, Point r) {
    double v = (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x);
    if (v > 1e-12) return 1;
    if (v < -1e-12) return -1;
    return 0;
  };
  int o1 = orient(a, b, c), o2 = orient(a, b, d);
  int o3 = orient(c, d, a), o4 = orient(c, d, b);
  return o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0;
}

}  // namespace

uint64_t CountEdgeCrossings(const CsrGraph& g, const Layout& layout) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  uint64_t crossings = 0;
  for (size_t i = 0; i < edges.size(); ++i) {
    for (size_t j = i + 1; j < edges.size(); ++j) {
      auto [a, b] = edges[i];
      auto [c, d] = edges[j];
      if (a == c || a == d || b == c || b == d) continue;  // share an endpoint
      if (SegmentsCross(layout[a], layout[b], layout[c], layout[d])) ++crossings;
    }
  }
  return crossings;
}

double MeanEdgeLength(const CsrGraph& g, const Layout& layout) {
  double total = 0.0;
  uint64_t count = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      double dx = layout[u].x - layout[v].x;
      double dy = layout[u].y - layout[v].y;
      total += std::sqrt(dx * dx + dy * dy);
      ++count;
    }
  }
  return count ? total / static_cast<double>(count) : 0.0;
}

}  // namespace ubigraph::viz
