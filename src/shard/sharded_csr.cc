#include "shard/sharded_csr.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "algorithms/partition.h"
#include "common/random.h"
#include "common/status.h"

namespace ubigraph::shard {
namespace {

std::string SegmentFileName(uint32_t s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "segment_%05u.ugsg", s);
  return buf;
}

constexpr const char* kManifestFileName = "manifest.ugsm";

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("sharded csr: cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IOError("sharded csr: read failed on " + path);
  }
  return bytes;
}

Status WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError("sharded csr: cannot create " + path);
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) {
    return Status::IOError("sharded csr: write failed on " + path);
  }
  return Status::OK();
}

/// Stable relabel order: new ids ascend by (part, original id), so each part
/// owns one contiguous new-id range and, within it, vertices keep their
/// original relative order. perm[old] = new.
std::vector<VertexId> PartitionToPermutation(
    const std::vector<uint32_t>& part, uint32_t num_parts,
    std::vector<uint64_t>* shard_begin) {
  std::vector<uint64_t> cursor(num_parts + 1, 0);
  for (uint32_t p : part) ++cursor[p + 1];
  for (uint32_t s = 0; s < num_parts; ++s) cursor[s + 1] += cursor[s];
  *shard_begin = cursor;
  std::vector<VertexId> perm(part.size());
  for (VertexId v = 0; v < part.size(); ++v) {
    perm[v] = static_cast<VertexId>(cursor[part[v]]++);
  }
  return perm;
}

}  // namespace

const char* ShardPartitionerName(ShardPartitioner p) {
  switch (p) {
    case ShardPartitioner::kContiguous:
      return "contiguous";
    case ShardPartitioner::kLdg:
      return "ldg";
    case ShardPartitioner::kBfsGrow:
      return "bfsgrow";
  }
  return "unknown";
}

Result<ShardedCsr> ShardedCsr::Build(const CsrGraph& g,
                                     const ShardOptions& options) {
  const VertexId n = g.num_vertices();
  if (n == 0) {
    return Status::Invalid("ShardedCsr::Build on empty graph");
  }
  if (options.num_shards == 0 || options.num_shards > 65535) {
    return Status::Invalid("ShardedCsr::Build: num_shards must be in "
                           "[1, 65535], got " +
                           std::to_string(options.num_shards));
  }
  const uint32_t S = options.num_shards;

  ShardedCsr sharded;
  ShardManifest& m = sharded.manifest_;
  m.encoding = options.encoding;
  m.directed = g.directed();
  m.num_vertices = n;
  m.num_edges = g.num_edges();

  const CsrGraph* relabeled = &g;
  CsrGraph relabeled_storage;
  if (options.partitioner == ShardPartitioner::kContiguous) {
    // Identity permutation, even contiguous ranges.
    const uint64_t per = (static_cast<uint64_t>(n) + S - 1) / S;
    m.shard_begin.resize(static_cast<size_t>(S) + 1);
    for (uint32_t s = 0; s <= S; ++s) {
      m.shard_begin[s] = std::min<uint64_t>(static_cast<uint64_t>(s) * per, n);
    }
    m.new_to_old.resize(n);
    for (VertexId v = 0; v < n; ++v) m.new_to_old[v] = v;
    if (!g.neighbors_sorted() &&
        options.encoding == SegmentEncoding::kCompressed) {
      return Status::Invalid(
          "ShardedCsr::Build: compressed segments need sorted adjacency "
          "(CsrOptions::sort_neighbors) under the contiguous partitioner, "
          "which keeps the graph's own rows");
    }
  } else {
    algo::Partitioning part;
    if (options.partitioner == ShardPartitioner::kLdg) {
      UG_ASSIGN_OR_RETURN(part,
                          algo::LdgPartition(g, S, options.ldg_capacity_slack));
    } else {
      Rng rng(options.seed);
      UG_ASSIGN_OR_RETURN(part, algo::BfsGrowPartition(g, S, &rng));
    }
    const std::vector<VertexId> perm =
        PartitionToPermutation(part.part, S, &m.shard_begin);
    // sort_neighbors: the gap encoding needs ascending rows, and sorting
    // keeps the anchor (a kernel on this exact relabeled graph) reproducible
    // from (graph, options) alone.
    PermuteOptions popts;
    popts.sort_neighbors = true;
    UG_ASSIGN_OR_RETURN(PermutedCsr permuted, g.Permute(perm, popts));
    relabeled_storage = std::move(permuted.graph);
    relabeled = &relabeled_storage;
    m.new_to_old = std::move(permuted.new_to_old);
  }

  m.degrees.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    m.degrees[v] = static_cast<uint32_t>(relabeled->OutDegree(v));
  }

  const std::vector<uint64_t>& offsets = relabeled->offsets();
  std::vector<std::string> blobs(S);
  for (uint32_t s = 0; s < S; ++s) {
    const VertexId begin = static_cast<VertexId>(m.shard_begin[s]);
    const VertexId end = static_cast<VertexId>(m.shard_begin[s + 1]);
    const uint64_t count = end - begin;
    std::vector<uint64_t> local_offsets(count + 1);
    for (uint64_t u = 0; u <= count; ++u) {
      local_offsets[u] = offsets[begin + u] - offsets[begin];
    }
    const std::span<const VertexId> targets(
        relabeled->targets().data() + offsets[begin],
        offsets[end] - offsets[begin]);
    blobs[s] = EncodeSegment(s, S, n, begin, end, local_offsets, targets,
                             options.encoding);
  }
  UG_ASSIGN_OR_RETURN(sharded.cache_, SegmentCache::FromBlobs(std::move(blobs)));

  sharded.shard_of_.resize(n);
  for (uint32_t s = 0; s < S; ++s) {
    for (uint64_t v = m.shard_begin[s]; v < m.shard_begin[s + 1]; ++v) {
      sharded.shard_of_[v] = static_cast<uint16_t>(s);
    }
  }
  return sharded;
}

Status ShardedCsr::WriteTo(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("sharded csr: cannot create directory " + dir +
                           ": " + ec.message());
  }
  UG_RETURN_NOT_OK(WriteWholeFile(dir + "/" + kManifestFileName,
                                  EncodeManifest(manifest_)));
  for (uint32_t s = 0; s < num_shards(); ++s) {
    UG_ASSIGN_OR_RETURN(std::span<const uint8_t> bytes,
                        cache_->SerializedBytes(s));
    UG_RETURN_NOT_OK(WriteWholeFile(
        dir + "/" + SegmentFileName(s),
        std::string(reinterpret_cast<const char*>(bytes.data()),
                    bytes.size())));
  }
  return Status::OK();
}

Result<ShardedCsr> ShardedCsr::Open(const std::string& dir,
                                    const ShardOpenOptions& options) {
  UG_ASSIGN_OR_RETURN(std::string manifest_bytes,
                      ReadWholeFile(dir + "/" + kManifestFileName));
  ShardedCsr sharded;
  UG_ASSIGN_OR_RETURN(
      sharded.manifest_,
      DecodeManifest({reinterpret_cast<const uint8_t*>(manifest_bytes.data()),
                      manifest_bytes.size()}));
  const uint32_t S = sharded.num_shards();
  if (S > 65535) {
    return Status::Corruption("sharded csr: manifest claims " +
                              std::to_string(S) + " shards; limit is 65535");
  }
  std::vector<std::string> paths(S);
  for (uint32_t s = 0; s < S; ++s) {
    paths[s] = dir + "/" + SegmentFileName(s);
  }
  SegmentCache::Options copts;
  copts.storage = options.storage;
  copts.budget_bytes = options.budget_bytes;
  UG_ASSIGN_OR_RETURN(sharded.cache_,
                      SegmentCache::FromFiles(std::move(paths), copts));

  const VertexId n = sharded.num_vertices();
  sharded.shard_of_.resize(n);
  for (uint32_t s = 0; s < S; ++s) {
    for (uint64_t v = sharded.manifest_.shard_begin[s];
         v < sharded.manifest_.shard_begin[s + 1]; ++v) {
      sharded.shard_of_[v] = static_cast<uint16_t>(s);
    }
  }
  sharded.dir_ = dir;
  return sharded;
}

std::span<const double> ShardedCsr::InvOutDegrees(ThreadPool* pool) const {
  std::call_once(derived_->inv_outdeg_once, [&] {
    const VertexId n = num_vertices();
    std::vector<double>& inv = derived_->inv_outdeg;
    inv.resize(n);
    const std::span<const uint32_t> deg = degrees();
    auto fill = [&](uint64_t b, uint64_t e) {
      for (uint64_t v = b; v < e; ++v) {
        inv[v] = deg[v] > 0 ? 1.0 / deg[v] : 0.0;
      }
    };
    if (pool != nullptr && pool->size() > 1) {
      ParallelForChunks(*pool, 0, n, fill);
    } else {
      fill(0, n);
    }
  });
  return derived_->inv_outdeg;
}

std::span<const VertexId> ShardedCsr::OldToNew(ThreadPool* pool) const {
  std::call_once(derived_->old_to_new_once, [&] {
    const VertexId n = num_vertices();
    std::vector<VertexId>& o2n = derived_->old_to_new;
    o2n.resize(n);
    const std::span<const VertexId> n2o = new_to_old();
    // Scatter inverse: disjoint writes (new_to_old is a permutation), so the
    // chunked parallel fill is race-free.
    auto fill = [&](uint64_t b, uint64_t e) {
      for (uint64_t v = b; v < e; ++v) {
        o2n[n2o[v]] = static_cast<VertexId>(v);
      }
    };
    if (pool != nullptr && pool->size() > 1) {
      ParallelForChunks(*pool, 0, n, fill);
    } else {
      fill(0, n);
    }
  });
  return derived_->old_to_new;
}

Result<SegmentCache::Pin> ShardedCsr::AcquireShard(uint32_t s) const {
  UG_ASSIGN_OR_RETURN(SegmentCache::Pin pin, cache_->Acquire(s));
  const SegmentView& v = pin.view();
  if (v.begin != shard_begin(s) || v.end != shard_begin(s + 1) ||
      v.num_vertices != num_vertices() ||
      (v.encoding == SegmentEncoding::kCompressed) !=
          (manifest_.encoding == SegmentEncoding::kCompressed)) {
    return Status::Corruption(
        "sharded csr: segment " + std::to_string(s) +
        " does not match the manifest (vertex range [" +
        std::to_string(v.begin) + ", " + std::to_string(v.end) +
        ") vs manifest [" + std::to_string(shard_begin(s)) + ", " +
        std::to_string(shard_begin(s + 1)) + "))");
  }
  return pin;
}

}  // namespace ubigraph::shard
