#include "shard/msg_stream.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/crc32.h"

namespace ubigraph::shard {

const char* MsgStrategyName(MsgStrategy s) {
  switch (s) {
    case MsgStrategy::kDenseCombine:
      return "dense_combine";
    case MsgStrategy::kUncombined:
      return "uncombined";
  }
  return "unknown";
}

Result<std::unique_ptr<SpillFile>> SpillFile::Create(const std::string& dir,
                                                     unsigned worker) {
  if (dir.empty()) {
    return Status::Invalid("spill file: empty scratch directory");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("spill file: cannot create directory " + dir +
                           ": " + ec.message());
  }
  // pid + a process-wide sequence number keep concurrent kernels (and
  // repeated iterations of the test matrix over one shard directory) from
  // colliding; O_EXCL turns any leftover name reuse into a hard error.
  static std::atomic<uint64_t> seq{0};
  char name[96];
  std::snprintf(name, sizeof name, "msg_%ld_%llu_w%u.spill",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(seq.fetch_add(1)), worker);
  std::string path = (std::filesystem::path(dir) / name).string();
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL | O_CLOEXEC, 0600);
  if (fd < 0) {
    return Status::IOError("spill file: open " + path + ": " +
                           std::strerror(errno));
  }
  return std::unique_ptr<SpillFile>(new SpillFile(fd, std::move(path)));
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) ::close(fd_);
  if (!path_.empty()) ::unlink(path_.c_str());
}

Status SpillFile::Append(const void* data, size_t len, uint64_t* offset_out) {
  *offset_out = size_;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t remaining = len;
  uint64_t at = size_;
  while (remaining > 0) {
    ssize_t n = ::pwrite(fd_, p, remaining, static_cast<off_t>(at));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("spill file: write " + path_ + ": " +
                             std::strerror(errno));
    }
    p += n;
    at += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  size_ += len;
  return Status::OK();
}

Status SpillFile::ReadAt(void* dst, size_t len, uint64_t offset) const {
  uint8_t* p = static_cast<uint8_t*>(dst);
  size_t remaining = len;
  uint64_t at = offset;
  while (remaining > 0) {
    ssize_t n = ::pread(fd_, p, remaining, static_cast<off_t>(at));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("spill file: read " + path_ + ": " +
                             std::strerror(errno));
    }
    if (n == 0) {
      return Status::Corruption("spill file: " + path_ +
                                " truncated (short read at offset " +
                                std::to_string(at) + ")");
    }
    p += n;
    at += static_cast<uint64_t>(n);
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SpillFile::Truncate() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::IOError("spill file: truncate " + path_ + ": " +
                           std::strerror(errno));
  }
  size_ = 0;
  return Status::OK();
}

namespace msg_internal {

Status AppendSpillBlock(SpillFile* file, uint32_t dst_shard,
                        uint32_t value_bytes, const void* dsts,
                        const void* vals, uint64_t count, uint64_t* offset_out,
                        uint64_t* bytes_out) {
  SpillBlockHeader hdr;
  hdr.magic = kSpillBlockMagic;
  hdr.dst_shard = dst_shard;
  hdr.value_bytes = value_bytes;
  hdr.count = count;
  const uint64_t dst_bytes = count * sizeof(VertexId);
  const uint64_t val_bytes = count * value_bytes;
  // One contiguous buffer per block: header + payload + trailing CRC over
  // everything before it, so a torn write anywhere in the block fails the
  // checksum on replay.
  std::vector<uint8_t> block(sizeof hdr + dst_bytes + val_bytes +
                             sizeof(uint32_t));
  std::memcpy(block.data(), &hdr, sizeof hdr);
  std::memcpy(block.data() + sizeof hdr, dsts, dst_bytes);
  if (val_bytes > 0) {
    std::memcpy(block.data() + sizeof hdr + dst_bytes, vals, val_bytes);
  }
  const uint32_t crc = Crc32(block.data(), block.size() - sizeof(uint32_t));
  std::memcpy(block.data() + block.size() - sizeof(uint32_t), &crc,
              sizeof crc);
  UG_RETURN_NOT_OK(file->Append(block.data(), block.size(), offset_out));
  *bytes_out = block.size();
  return Status::OK();
}

Status ReadSpillBlock(const SpillFile& file, uint32_t dst_shard,
                      uint32_t value_bytes, uint64_t offset, uint64_t count,
                      std::vector<uint8_t>* scratch) {
  const uint64_t dst_bytes = count * sizeof(VertexId);
  const uint64_t val_bytes = count * value_bytes;
  const uint64_t total =
      sizeof(SpillBlockHeader) + dst_bytes + val_bytes + sizeof(uint32_t);
  scratch->resize(total);
  UG_RETURN_NOT_OK(file.ReadAt(scratch->data(), total, offset));
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, scratch->data() + total - sizeof(uint32_t),
              sizeof stored_crc);
  const uint32_t actual_crc =
      Crc32(scratch->data(), total - sizeof(uint32_t));
  if (stored_crc != actual_crc) {
    return Status::Corruption("spill file: " + file.path() +
                              " block CRC mismatch at offset " +
                              std::to_string(offset));
  }
  SpillBlockHeader hdr;
  std::memcpy(&hdr, scratch->data(), sizeof hdr);
  if (hdr.magic != kSpillBlockMagic || hdr.dst_shard != dst_shard ||
      hdr.value_bytes != value_bytes || hdr.count != count) {
    return Status::Corruption(
        "spill file: " + file.path() + " block at offset " +
        std::to_string(offset) + " does not match its stream index");
  }
  return Status::OK();
}

}  // namespace msg_internal

}  // namespace ubigraph::shard
