// Message-combining and spill layer for the sharded kernels: the scratch that
// carries per-iteration (destination, value) traffic between the scatter and
// apply phases of shard_kernels.cc. PR 9 buffered that traffic as in-RAM
// per-(worker, destination-shard) vectors — O(scanned edges) heap per
// iteration (~12 B/edge for PageRank), which dwarfed the segment-cache budget
// at scale and made the execution only semi-external. Two strategies close
// that gap:
//
//   * kDenseCombine (default) — no message streams at all. Workers own
//     contiguous ascending blocks of DESTINATION shards; each worker scans
//     every (active) segment in ascending shard order and folds messages for
//     its own destinations directly into the dense output array
//     (next[v] for PageRank, dist/frontier flags for BFS, next-label for CC).
//     Because every destination is owned by exactly one worker and sources
//     are visited in globally ascending order, each accumulator receives its
//     contributions in exactly the SERIAL kernel's order — so results are
//     bitwise-identical to the uncombined oracle (and the in-RAM kernels) at
//     every thread count, shard count, and encoding. The trade is the classic
//     destination-partitioned streaming one (GridGraph): with W workers each
//     segment is scanned up to W times, but message memory drops from O(E)
//     sparse pairs to zero bytes beyond the O(V) state the kernel already
//     owns, and the single-worker path (the out-of-core benchmark
//     configuration) does strictly less work — dense 8 B adds instead of
//     12 B push_back + replay indirection.
//
//   * kUncombined — PR 9's exact emission-ordered streams, kept as the
//     bitwise oracle and as the strategy whose scatter scans each segment
//     once. MsgStreams<V> below buffers (dst, value) records per
//     (worker, destination shard); when the configured message_budget_bytes
//     is exceeded, full stream blocks are appended to CRC-checked scratch
//     files (one ".spill" file per worker, self-deleting on every exit path)
//     and replayed sequentially in the same ascending worker -> emission
//     order, so the replay association — and therefore the result — is
//     unchanged by where blocks happened to live.
//
// Budget semantics: message_budget_bytes bounds the LOGICAL buffered message
// bytes across all workers (each worker spills when its slice,
// budget/workers, would overflow). Vector growth slack means transient heap
// capacity can reach ~2x the logical bound; peak_msg_bytes reports the
// logical high-water mark, the number tests assert against the budget.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "graph/edge_list.h"

namespace ubigraph::shard {

/// How a sharded kernel moves messages from scatter to apply.
enum class MsgStrategy : uint8_t {
  /// Destination-owned dense accumulation (see file comment). No message
  /// scratch; bitwise-identical to kUncombined everywhere.
  kDenseCombine = 0,
  /// Emission-ordered per-(worker, dst-shard) streams — the PR 9 replay
  /// path, kept as the bitwise oracle. Spills under a message budget.
  kUncombined = 1,
};

const char* MsgStrategyName(MsgStrategy s);

/// Message-layer counters a kernel run reports (also flushed to the obs
/// registry as shard.msg.* by the kernels).
struct MsgStats {
  /// High-water mark of logical buffered message bytes (kUncombined) —
  /// 0 under kDenseCombine, which buffers nothing.
  uint64_t peak_msg_bytes = 0;
  uint64_t spill_bytes = 0;   ///< total bytes written to spill scratch
  uint64_t spill_blocks = 0;  ///< CRC-checked blocks written
  uint64_t spill_files = 0;   ///< scratch files created (<= workers)
  /// Edge messages folded into dense state with no stream record.
  uint64_t combined_edges = 0;
};

/// Message-layer options embedded in every sharded kernel's options struct.
struct MsgOptions {
  MsgStrategy strategy = MsgStrategy::kDenseCombine;
  /// kUncombined only: spill stream blocks to scratch once logical buffered
  /// bytes would exceed this. 0 = unlimited (never spill, PR 9 behavior).
  uint64_t message_budget_bytes = 0;
  /// Where spill scratch lives. "" = the ShardedCsr's own directory when it
  /// was Open()ed from disk, else the system temp directory.
  std::string spill_dir;
  /// When non-null, receives the run's message-layer counters.
  MsgStats* stats_out = nullptr;
};

/// One worker's append-only spill scratch file. Created lazily on first
/// spill; the destructor closes and unlinks it, so scratch cannot outlive
/// the owning MsgStreams on any exit path (success, error Status, or an
/// exception unwinding through the kernel).
class SpillFile {
 public:
  static Result<std::unique_ptr<SpillFile>> Create(const std::string& dir,
                                                   unsigned worker);
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends `len` bytes; returns the offset they start at.
  Status Append(const void* data, size_t len, uint64_t* offset_out);
  /// Reads exactly `len` bytes at `offset` (pread — safe from any thread).
  Status ReadAt(void* dst, size_t len, uint64_t offset) const;
  /// Truncates back to empty for the next iteration's blocks.
  Status Truncate();

  const std::string& path() const { return path_; }

 private:
  SpillFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
  uint64_t size_ = 0;
};

/// On-disk header of one spill block: [header][dst u32 * count]
/// [value * count][crc32 of header + payload]. Integers little-endian
/// (matching segment.h's discipline; the file never leaves the machine but
/// hostile or torn bytes must still fail cleanly, which the trailing CRC and
/// the field cross-checks against the in-RAM block index guarantee).
struct SpillBlockHeader {
  uint32_t magic = 0;
  uint32_t dst_shard = 0;
  uint32_t value_bytes = 0;
  uint32_t reserved = 0;
  uint64_t count = 0;
};
static_assert(sizeof(SpillBlockHeader) == 24, "on-disk layout");

inline constexpr uint32_t kSpillBlockMagic = 0x424d4755u;  // "UGMB"

/// Marker value type for streams that carry destinations only (BFS).
struct MsgNoValue {};

/// Per-(worker, destination-shard) message streams with budget-bounded spill.
/// V is the per-message payload (double for PageRank contributions, uint32_t
/// for CC labels, MsgNoValue for BFS discoveries).
///
/// Threading contract: Emit(w, ...) is called only by worker w (no locks —
/// workers own disjoint state); Replay(t, ...) may run concurrently for
/// different t after the scatter barrier (it reads immutable block indexes
/// and uses pread); Reset() runs on the coordinating thread between
/// iterations. The kernel's fork/join barriers provide the happens-before
/// edges, exactly as they did for PR 9's raw vectors.
template <typename V>
class MsgStreams {
 public:
  static constexpr uint64_t kValueBytes =
      std::is_same_v<V, MsgNoValue> ? 0 : sizeof(V);
  static constexpr uint64_t kRecordBytes = sizeof(VertexId) + kValueBytes;

  /// `spill_dir` may be empty only when budget_bytes == 0.
  static Result<MsgStreams> Create(unsigned workers, uint32_t shards,
                                   uint64_t budget_bytes,
                                   const std::string& spill_dir) {
    if (workers == 0 || shards == 0) {
      return Status::Invalid("msg streams: workers and shards must be > 0");
    }
    if (budget_bytes != 0 && spill_dir.empty()) {
      return Status::Invalid(
          "msg streams: a message budget needs a spill directory");
    }
    MsgStreams ms;
    ms.shards_ = shards;
    ms.spill_dir_ = spill_dir;
    ms.slice_bytes_ =
        budget_bytes == 0 ? 0 : std::max<uint64_t>(budget_bytes / workers, 1);
    ms.workers_.resize(workers);
    for (WorkerState& w : ms.workers_) w.bufs.resize(shards);
    return ms;
  }

  /// Appends one message from worker `w` to destination shard `t`. May spill
  /// the worker's buffered blocks first when its budget slice would overflow.
  Status Emit(unsigned w, uint32_t t, VertexId dst, V value = V{}) {
    WorkerState& wk = workers_[w];
    if (slice_bytes_ != 0 && wk.bytes + kRecordBytes > slice_bytes_) {
      UG_RETURN_NOT_OK(SpillWorker(w));
    }
    Buffer& b = wk.bufs[t];
    b.dst.push_back(dst);
    if constexpr (kValueBytes != 0) b.val.push_back(value);
    wk.bytes += kRecordBytes;
    if (wk.bytes > wk.peak_bytes) wk.peak_bytes = wk.bytes;
    return Status::OK();
  }

  /// Replays destination shard `t`'s messages in emission order, workers
  /// ascending — spilled blocks first (they were emitted before the in-RAM
  /// tail), each verified against its CRC and the in-RAM index before a
  /// single record reaches `fn`. fn(dst, value) (fn(dst) when V is
  /// MsgNoValue).
  template <typename Fn>
  Status Replay(uint32_t t, Fn&& fn) const {
    std::vector<uint8_t> scratch;
    for (const WorkerState& wk : workers_) {
      const Buffer& b = wk.bufs[t];
      for (const BlockRef& ref : b.blocks) {
        UG_RETURN_NOT_OK(ReadBlock(wk, t, ref, &scratch));
        const uint8_t* dsts = scratch.data() + sizeof(SpillBlockHeader);
        [[maybe_unused]] const uint8_t* vals =
            dsts + ref.count * sizeof(VertexId);
        for (uint64_t i = 0; i < ref.count; ++i) {
          VertexId dst;
          std::memcpy(&dst, dsts + i * sizeof(VertexId), sizeof dst);
          if constexpr (kValueBytes == 0) {
            fn(dst);
          } else {
            V value;
            std::memcpy(&value, vals + i * kValueBytes, sizeof value);
            fn(dst, value);
          }
        }
      }
      for (size_t i = 0; i < b.dst.size(); ++i) {
        if constexpr (kValueBytes == 0) {
          fn(b.dst[i]);
        } else {
          fn(b.dst[i], b.val[i]);
        }
      }
    }
    return Status::OK();
  }

  /// Clears all streams for the next iteration; spill files are truncated
  /// and reused, so scratch disk usage is bounded by one iteration's spill.
  Status Reset() {
    for (WorkerState& wk : workers_) {
      for (Buffer& b : wk.bufs) {
        b.dst.clear();
        b.val.clear();
        b.blocks.clear();
      }
      wk.bytes = 0;
      if (wk.file != nullptr) UG_RETURN_NOT_OK(wk.file->Truncate());
    }
    return Status::OK();
  }

  /// Aggregated counters. Call after a barrier (the workers' fields are not
  /// synchronized mid-scatter). peak_msg_bytes sums per-worker high-water
  /// marks — an upper bound on any instantaneous total, and <= the budget by
  /// construction (each worker's peak <= its slice).
  MsgStats stats() const {
    MsgStats s;
    for (const WorkerState& wk : workers_) {
      s.peak_msg_bytes += wk.peak_bytes;
      s.spill_bytes += wk.spill_bytes;
      s.spill_blocks += wk.spill_blocks;
      if (wk.file != nullptr) ++s.spill_files;
    }
    return s;
  }

  /// Paths of the scratch files created so far (tests use this to verify
  /// cleanup and to feed hostile bytes through Replay).
  std::vector<std::string> spill_paths() const {
    std::vector<std::string> paths;
    for (const WorkerState& wk : workers_) {
      if (wk.file != nullptr) paths.push_back(wk.file->path());
    }
    return paths;
  }

 private:
  struct BlockRef {
    uint64_t offset = 0;  // of the SpillBlockHeader in the worker's file
    uint64_t count = 0;
  };
  struct Buffer {
    std::vector<VertexId> dst;
    std::vector<V> val;            // unused (empty) when V is MsgNoValue
    std::vector<BlockRef> blocks;  // spilled prefix, in emission order
  };
  struct WorkerState {
    std::vector<Buffer> bufs;  // one per destination shard
    uint64_t bytes = 0;        // logical buffered bytes
    uint64_t peak_bytes = 0;
    uint64_t spill_bytes = 0;
    uint64_t spill_blocks = 0;
    std::unique_ptr<SpillFile> file;  // created on first spill
  };

  MsgStreams() = default;

  /// Writes every non-empty buffer of worker `w` as one CRC-checked block
  /// and releases the buffer capacity (the point of spilling is giving the
  /// RAM back, not just emptying vectors).
  Status SpillWorker(unsigned w);

  static Status ReadBlock(const WorkerState& wk, uint32_t t,
                          const BlockRef& ref, std::vector<uint8_t>* scratch);

  uint32_t shards_ = 0;
  uint64_t slice_bytes_ = 0;  // per-worker budget share; 0 = unlimited
  std::string spill_dir_;
  std::vector<WorkerState> workers_;
};

// Implementation helpers shared by the template instantiations (msg_stream.cc
// defines them for the three V types the kernels use).
namespace msg_internal {
Status AppendSpillBlock(SpillFile* file, uint32_t dst_shard,
                        uint32_t value_bytes, const void* dsts,
                        const void* vals, uint64_t count,
                        uint64_t* offset_out, uint64_t* bytes_out);
Status ReadSpillBlock(const SpillFile& file, uint32_t dst_shard,
                      uint32_t value_bytes, uint64_t offset, uint64_t count,
                      std::vector<uint8_t>* scratch);
}  // namespace msg_internal

template <typename V>
Status MsgStreams<V>::SpillWorker(unsigned w) {
  WorkerState& wk = workers_[w];
  if (wk.file == nullptr) {
    UG_ASSIGN_OR_RETURN(wk.file, SpillFile::Create(spill_dir_, w));
  }
  for (uint32_t t = 0; t < shards_; ++t) {
    Buffer& b = wk.bufs[t];
    if (b.dst.empty()) continue;
    uint64_t offset = 0, bytes = 0;
    UG_RETURN_NOT_OK(msg_internal::AppendSpillBlock(
        wk.file.get(), t, static_cast<uint32_t>(kValueBytes), b.dst.data(),
        b.val.data(), b.dst.size(), &offset, &bytes));
    b.blocks.push_back(BlockRef{offset, b.dst.size()});
    wk.spill_bytes += bytes;
    ++wk.spill_blocks;
    // swap-with-empty releases capacity; clear() would keep the heap.
    std::vector<VertexId>().swap(b.dst);
    std::vector<V>().swap(b.val);
  }
  wk.bytes = 0;
  return Status::OK();
}

template <typename V>
Status MsgStreams<V>::ReadBlock(const WorkerState& wk, uint32_t t,
                                const BlockRef& ref,
                                std::vector<uint8_t>* scratch) {
  return msg_internal::ReadSpillBlock(*wk.file, t,
                                      static_cast<uint32_t>(kValueBytes),
                                      ref.offset, ref.count, scratch);
}

}  // namespace ubigraph::shard
