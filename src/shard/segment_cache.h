// Byte-budgeted cache of decoded segment views. Three backings share one
// Acquire() interface so the kernels never branch on where bytes live:
//
//   FromBlobs   — in-memory segment blobs (the Build path); always resident.
//   FromFiles + kResident — whole files read into heap buffers at open;
//                 always resident (the "RAM is big enough" path).
//   FromFiles + kMapped   — files mmap'ed lazily per Acquire under a byte
//                 budget; least-recently-used unpinned segments are unmapped
//                 to stay within it (the out-of-core path).
//
// Acquire(shard) returns an RAII Pin whose SegmentView stays valid until the
// Pin drops; pinned segments are never evicted, so a kernel can hold its
// working shard while the cache cycles others. If every loaded segment is
// pinned the cache runs over budget rather than deadlocking (counted in
// shard.cache.over_budget). The budget bounds this process's mapped segment
// bytes — the OS page cache may keep more, the standard semi-external caveat.
//
// Integrity: segment headers are probed at open (magic / version / size), and
// the full CRC + target-id check runs once per file on its first load; later
// re-loads after eviction repeat only the structural checks that keep the
// decoders in bounds.
//
// Thread safety: Acquire and Pin release are safe from any thread. Loads run
// under the cache mutex — concurrent misses serialize, which is the behavior
// a disk-bound cache wants anyway.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "shard/segment.h"

namespace ubigraph::shard {

/// Where FromFiles keeps segment bytes.
enum class SegmentStorage : uint8_t {
  kResident = 0,  ///< eager heap buffers, never evicted
  kMapped = 1,    ///< lazy mmap under the byte budget, LRU-evicted
};

class SegmentCache {
 public:
  struct Options {
    SegmentStorage storage = SegmentStorage::kResident;
    /// Max bytes of concurrently loaded segments (kMapped only; 0 = no
    /// limit). A budget smaller than the largest single segment still works:
    /// that segment loads over budget while pinned.
    uint64_t budget_bytes = 0;
  };

  /// Holds one segment resident while alive. Movable, not copyable.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& o) noexcept : cache_(o.cache_), shard_(o.shard_), view_(o.view_) {
      o.cache_ = nullptr;
    }
    Pin& operator=(Pin&& o) noexcept;
    ~Pin() { Release(); }
    const SegmentView& view() const { return *view_; }

   private:
    friend class SegmentCache;
    Pin(SegmentCache* cache, uint32_t shard, const SegmentView* view)
        : cache_(cache), shard_(shard), view_(view) {}
    void Release();

    SegmentCache* cache_ = nullptr;
    uint32_t shard_ = 0;
    const SegmentView* view_ = nullptr;
  };

  SegmentCache(const SegmentCache&) = delete;
  SegmentCache& operator=(const SegmentCache&) = delete;
  ~SegmentCache();

  /// Wraps encoded in-memory segments (ordered by shard id). Each blob is
  /// decoded and fully verified up front. Heap-allocated because outstanding
  /// Pins point back into the cache.
  static Result<std::unique_ptr<SegmentCache>> FromBlobs(
      std::vector<std::string> blobs);

  /// Opens on-disk segment files (ordered by shard id). Headers are probed
  /// immediately; payload verification happens per the class comment.
  static Result<std::unique_ptr<SegmentCache>> FromFiles(
      std::vector<std::string> paths, const Options& options);

  /// Loads (if needed), pins, and returns shard's decoded view.
  Result<Pin> Acquire(uint32_t shard);

  /// Blob-backed entries only (the Build path): the serialized segment
  /// bytes, for ShardedCsr::WriteTo. File-backed caches already have files.
  Result<std::span<const uint8_t>> SerializedBytes(uint32_t shard) const;

  uint32_t num_segments() const {
    return static_cast<uint32_t>(entries_.size());
  }
  /// Sum of all segments' serialized sizes — what "fully loaded" would cost.
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t budget_bytes() const { return options_.budget_bytes; }
  uint64_t resident_bytes() const;
  /// High-water mark of resident_bytes over this cache's lifetime — the
  /// number perf_sharded reports as peak_segment_bytes. This counts SEGMENT
  /// bytes only (mapped or heap-resident adjacency); kernel scratch such as
  /// the per-(worker, dst-shard) message buffers (~12 B per scanned edge per
  /// iteration, see shard_kernels.h) is separate heap the cache cannot see.
  uint64_t peak_segment_bytes() const;

 private:
  struct Entry {
    std::string blob;   // FromBlobs source, or kResident file contents
    std::string path;   // file-backed source ("" for blobs)
    uint64_t size = 0;  // serialized bytes (blob size or file size)
    void* map_addr = nullptr;  // non-null while mmap'ed
    SegmentView view;
    bool loaded = false;
    bool verified = false;  // full CRC + id-range check already ran
    uint32_t pins = 0;
    uint64_t lru_stamp = 0;
  };

  SegmentCache() = default;
  Status LoadLocked(uint32_t shard);
  void EvictLocked(uint32_t shard);
  void Unpin(uint32_t shard);

  Options options_;
  uint64_t total_bytes_ = 0;

  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  uint64_t resident_bytes_ = 0;
  uint64_t peak_resident_bytes_ = 0;
  uint64_t lru_clock_ = 0;

  // Handles looked up once at construction; recorded only when obs::Enabled().
  struct Counters;
  const Counters* counters_ = nullptr;
};

}  // namespace ubigraph::shard
