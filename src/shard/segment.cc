#include "shard/segment.h"

#include <cstring>

#include "common/crc32.h"
#include "common/status.h"

namespace ubigraph::shard {
namespace {

template <typename T>
void AppendPod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void AppendArray(std::string& out, const T* p, size_t n) {
  out.append(reinterpret_cast<const char*>(p), n * sizeof(T));
}

/// Checks one compressed row's byte span without decoding values: exactly
/// `degree` varint terminators (bytes with the continuation bit clear), no
/// varint longer than 5 bytes (a u32 gap never needs more), and the span
/// ends on a terminator. Together these guarantee the block decoder consumes
/// exactly this span — no out-of-bounds read, no shift past 64 bits — for
/// ANY byte content, so structurally-valid hostile files are safe to scan.
Status CheckVarintRow(const uint8_t* bytes, uint64_t len, uint32_t degree,
                      VertexId row) {
  uint64_t terminators = 0;
  uint32_t run = 0;  // continuation bytes since the last terminator
  for (uint64_t i = 0; i < len; ++i) {
    if (bytes[i] & 0x80) {
      if (++run > 4) {
        return Status::Corruption("segment decode: varint longer than 5 bytes "
                                  "in row " + std::to_string(row));
      }
    } else {
      ++terminators;
      run = 0;
    }
  }
  if (terminators != degree || (len > 0 && (bytes[len - 1] & 0x80))) {
    return Status::Corruption(
        "segment decode: varint stream of row " + std::to_string(row) +
        " does not hold exactly its declared degree (" +
        std::to_string(degree) + " ids in " + std::to_string(len) + " bytes)");
  }
  return Status::OK();
}

}  // namespace

const char* SegmentEncodingName(SegmentEncoding e) {
  return e == SegmentEncoding::kPlain ? "plain" : "compressed";
}

std::string EncodeSegment(uint32_t shard_id, uint32_t num_shards,
                          VertexId num_vertices_global, VertexId begin,
                          VertexId end, std::span<const uint64_t> row_offsets,
                          std::span<const VertexId> targets,
                          SegmentEncoding encoding) {
  const uint64_t count = end - begin;
  SegmentHeader h;
  std::memcpy(h.magic, kSegmentMagic, sizeof h.magic);
  h.flags = encoding == SegmentEncoding::kCompressed ? kSegmentFlagCompressed : 0;
  h.shard_id = shard_id;
  h.num_shards = num_shards;
  h.num_vertices = num_vertices_global;
  h.vertex_begin = begin;
  h.vertex_end = end;
  h.num_edges = targets.size();

  std::string out;
  if (encoding == SegmentEncoding::kPlain) {
    h.payload_bytes =
        (count + 1) * sizeof(uint64_t) + targets.size() * sizeof(VertexId);
    out.reserve(sizeof h + h.payload_bytes + sizeof(uint32_t));
    AppendPod(out, h);
    AppendArray(out, row_offsets.data(), count + 1);
    AppendArray(out, targets.data(), targets.size());
  } else {
    std::vector<uint64_t> byte_offsets(count + 1, 0);
    std::vector<uint32_t> degrees(count);
    std::vector<uint8_t> bytes;
    bytes.reserve(targets.size() * 2);
    for (uint64_t u = 0; u < count; ++u) {
      degrees[u] = static_cast<uint32_t>(row_offsets[u + 1] - row_offsets[u]);
      AppendGapEncodedRow(bytes, targets.subspan(row_offsets[u], degrees[u]));
      byte_offsets[u + 1] = bytes.size();
    }
    h.payload_bytes = (count + 1) * sizeof(uint64_t) +
                      count * sizeof(uint32_t) + bytes.size();
    out.reserve(sizeof h + h.payload_bytes + sizeof(uint32_t));
    AppendPod(out, h);
    AppendArray(out, byte_offsets.data(), byte_offsets.size());
    AppendArray(out, degrees.data(), degrees.size());
    AppendArray(out, bytes.data(), bytes.size());
  }
  AppendPod(out, Crc32(out.data(), out.size()));
  return out;
}

Result<SegmentView> DecodeSegment(std::span<const uint8_t> data, bool verify) {
  if (data.size() < sizeof(SegmentHeader) + sizeof(uint32_t)) {
    return Status::Corruption(
        "segment decode: " + std::to_string(data.size()) +
        " bytes is shorter than the 64-byte header plus checksum");
  }
  if (reinterpret_cast<uintptr_t>(data.data()) % alignof(uint64_t) != 0) {
    return Status::Invalid(
        "segment decode: buffer must be 8-byte aligned for zero-copy offset "
        "views (heap allocations and mmap pages are)");
  }
  SegmentHeader h;
  std::memcpy(&h, data.data(), sizeof h);
  if (std::memcmp(h.magic, kSegmentMagic, sizeof h.magic) != 0) {
    return Status::Invalid("segment decode: bad magic — not a UGSG segment");
  }
  if (h.version != kSegmentFormatVersion) {
    return Status::Invalid("segment decode: format version " +
                           std::to_string(h.version) + " unsupported (reader "
                           "understands " +
                           std::to_string(kSegmentFormatVersion) + ")");
  }
  if (h.flags & ~kSegmentFlagCompressed) {
    return Status::Invalid("segment decode: unknown flag bits 0x" +
                           std::to_string(h.flags));
  }
  if (h.vertex_begin > h.vertex_end || h.vertex_end > h.num_vertices) {
    return Status::Corruption("segment decode: vertex range [" +
                              std::to_string(h.vertex_begin) + ", " +
                              std::to_string(h.vertex_end) +
                              ") inconsistent with graph vertex count " +
                              std::to_string(h.num_vertices));
  }
  if (h.payload_bytes !=
      data.size() - sizeof(SegmentHeader) - sizeof(uint32_t)) {
    return Status::Corruption(
        "segment decode: header claims " + std::to_string(h.payload_bytes) +
        " payload bytes but the file holds " +
        std::to_string(data.size() - sizeof(SegmentHeader) - sizeof(uint32_t)));
  }
  if (verify) {
    uint32_t stored;
    std::memcpy(&stored, data.data() + data.size() - sizeof stored,
                sizeof stored);
    const uint32_t actual = Crc32(data.data(), data.size() - sizeof stored);
    if (stored != actual) {
      return Status::Corruption("segment decode: checksum mismatch (stored " +
                                std::to_string(stored) + ", computed " +
                                std::to_string(actual) + ")");
    }
  }

  const uint8_t* payload = data.data() + sizeof(SegmentHeader);
  const uint64_t count = h.vertex_end - h.vertex_begin;
  const uint64_t offsets_bytes = (count + 1) * sizeof(uint64_t);
  if (h.payload_bytes < offsets_bytes) {
    return Status::Corruption(
        "segment decode: payload too small for the row-offset array");
  }

  SegmentView v;
  v.shard_id = h.shard_id;
  v.num_vertices = h.num_vertices;
  v.begin = static_cast<VertexId>(h.vertex_begin);
  v.end = static_cast<VertexId>(h.vertex_end);
  v.num_edges = h.num_edges;
  v.offsets = reinterpret_cast<const uint64_t*>(payload);
  for (uint64_t u = 0; u < count; ++u) {
    if (v.offsets[u] > v.offsets[u + 1]) {
      return Status::Corruption("segment decode: row offsets not ascending at "
                                "row " + std::to_string(u));
    }
  }
  if (v.offsets[0] != 0) {
    return Status::Corruption("segment decode: row offsets must start at 0");
  }

  if ((h.flags & kSegmentFlagCompressed) == 0) {
    v.encoding = SegmentEncoding::kPlain;
    // Derive the edge count from the real payload size (division, never a
    // multiply of the attacker-controlled header field): num_edges around
    // 2^62 would make `num_edges * sizeof(VertexId)` wrap u64 and pass a
    // product-based size check, letting offsets/targets index far out of
    // bounds. payload_bytes itself is already pinned to the file size above.
    const uint64_t targets_bytes = h.payload_bytes - offsets_bytes;
    if (targets_bytes % sizeof(VertexId) != 0 ||
        h.num_edges != targets_bytes / sizeof(VertexId) ||
        v.offsets[count] != h.num_edges) {
      return Status::Corruption(
          "segment decode: plain payload size does not match the header's "
          "edge count");
    }
    v.targets = reinterpret_cast<const VertexId*>(payload + offsets_bytes);
    if (verify) {
      for (uint64_t e = 0; e < h.num_edges; ++e) {
        if (v.targets[e] >= h.num_vertices) {
          return Status::Corruption(
              "segment decode: target id " + std::to_string(v.targets[e]) +
              " out of range for " + std::to_string(h.num_vertices) +
              " vertices");
        }
      }
    }
    return v;
  }

  v.encoding = SegmentEncoding::kCompressed;
  const uint64_t degrees_bytes = count * sizeof(uint32_t);
  if (h.payload_bytes < offsets_bytes + degrees_bytes) {
    return Status::Corruption(
        "segment decode: payload too small for the degree array");
  }
  v.degrees = reinterpret_cast<const uint32_t*>(payload + offsets_bytes);
  v.bytes = payload + offsets_bytes + degrees_bytes;
  const uint64_t bytes_len = h.payload_bytes - offsets_bytes - degrees_bytes;
  if (v.offsets[count] != bytes_len) {
    return Status::Corruption(
        "segment decode: byte offsets do not span the varint stream (" +
        std::to_string(v.offsets[count]) + " vs " + std::to_string(bytes_len) +
        " bytes)");
  }
  uint64_t degree_sum = 0;
  for (uint64_t u = 0; u < count; ++u) {
    UG_RETURN_NOT_OK(CheckVarintRow(v.bytes + v.offsets[u],
                                    v.offsets[u + 1] - v.offsets[u],
                                    v.degrees[u], static_cast<VertexId>(u)));
    degree_sum += v.degrees[u];
  }
  if (degree_sum != h.num_edges) {
    return Status::Corruption("segment decode: degree sum " +
                              std::to_string(degree_sum) +
                              " does not match the header's edge count " +
                              std::to_string(h.num_edges));
  }
  if (verify) {
    // Decode once and bound every id. Gap accumulation can wrap u32 on
    // hostile streams, so monotonicity cannot be assumed: check each id.
    for (uint64_t u = 0; u < count; ++u) {
      for (VertexId t : CompressedCsrGraph::NeighborRange(
               v.bytes + v.offsets[u], v.degrees[u])) {
        if (t >= h.num_vertices) {
          return Status::Corruption(
              "segment decode: decoded target id " + std::to_string(t) +
              " out of range for " + std::to_string(h.num_vertices) +
              " vertices");
        }
      }
    }
  }
  return v;
}

namespace {

/// Manifest file header (40 bytes, 8-byte aligned tail) followed by
/// u64 shard_begin[S+1], u32 degrees[V], u32 new_to_old[V], u32 crc.
struct ManifestHeader {
  char magic[4];
  uint32_t version = kManifestFormatVersion;
  uint32_t flags = 0;
  uint32_t num_shards = 0;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint64_t reserved = 0;
};
static_assert(sizeof(ManifestHeader) == 40);

inline constexpr uint32_t kManifestFlagCompressed = 1u << 0;
inline constexpr uint32_t kManifestFlagDirected = 1u << 1;

}  // namespace

std::string EncodeManifest(const ShardManifest& m) {
  ManifestHeader h;
  std::memcpy(h.magic, kManifestMagic, sizeof h.magic);
  h.flags =
      (m.encoding == SegmentEncoding::kCompressed ? kManifestFlagCompressed
                                                  : 0) |
      (m.directed ? kManifestFlagDirected : 0);
  h.num_shards = static_cast<uint32_t>(m.shard_begin.size() - 1);
  h.num_vertices = m.num_vertices;
  h.num_edges = m.num_edges;

  std::string out;
  out.reserve(sizeof h + m.shard_begin.size() * sizeof(uint64_t) +
              m.degrees.size() * sizeof(uint32_t) +
              m.new_to_old.size() * sizeof(VertexId) + sizeof(uint32_t));
  AppendPod(out, h);
  AppendArray(out, m.shard_begin.data(), m.shard_begin.size());
  AppendArray(out, m.degrees.data(), m.degrees.size());
  AppendArray(out, m.new_to_old.data(), m.new_to_old.size());
  AppendPod(out, Crc32(out.data(), out.size()));
  return out;
}

Result<ShardManifest> DecodeManifest(std::span<const uint8_t> data) {
  if (data.size() < sizeof(ManifestHeader) + sizeof(uint32_t)) {
    return Status::Corruption(
        "manifest decode: " + std::to_string(data.size()) +
        " bytes is shorter than the 40-byte header plus checksum");
  }
  ManifestHeader h;
  std::memcpy(&h, data.data(), sizeof h);
  if (std::memcmp(h.magic, kManifestMagic, sizeof h.magic) != 0) {
    return Status::Invalid("manifest decode: bad magic — not a UGSM manifest");
  }
  if (h.version != kManifestFormatVersion) {
    return Status::Invalid("manifest decode: format version " +
                           std::to_string(h.version) + " unsupported (reader "
                           "understands " +
                           std::to_string(kManifestFormatVersion) + ")");
  }
  if (h.flags & ~(kManifestFlagCompressed | kManifestFlagDirected)) {
    return Status::Invalid("manifest decode: unknown flag bits 0x" +
                           std::to_string(h.flags));
  }
  // num_vertices == 0 is rejected to mirror ShardedCsr::Build's empty-graph
  // check: a degenerate manifest would otherwise open cleanly and feed n = 0
  // into kernels (1.0/n teleport, empty-array indexing).
  if (h.num_shards == 0 || h.num_vertices == 0 || h.num_vertices > UINT32_MAX) {
    return Status::Corruption("manifest decode: implausible shape (" +
                              std::to_string(h.num_shards) + " shards, " +
                              std::to_string(h.num_vertices) + " vertices)");
  }
  const uint64_t expected =
      sizeof h + (static_cast<uint64_t>(h.num_shards) + 1) * sizeof(uint64_t) +
      h.num_vertices * (sizeof(uint32_t) + sizeof(VertexId)) +
      sizeof(uint32_t);
  if (data.size() != expected) {
    return Status::Corruption("manifest decode: file is " +
                              std::to_string(data.size()) + " bytes, header "
                              "implies " + std::to_string(expected));
  }
  uint32_t stored;
  std::memcpy(&stored, data.data() + data.size() - sizeof stored,
              sizeof stored);
  const uint32_t actual = Crc32(data.data(), data.size() - sizeof stored);
  if (stored != actual) {
    return Status::Corruption("manifest decode: checksum mismatch (stored " +
                              std::to_string(stored) + ", computed " +
                              std::to_string(actual) + ")");
  }

  ShardManifest m;
  m.encoding = (h.flags & kManifestFlagCompressed) ? SegmentEncoding::kCompressed
                                                   : SegmentEncoding::kPlain;
  m.directed = (h.flags & kManifestFlagDirected) != 0;
  m.num_vertices = h.num_vertices;
  m.num_edges = h.num_edges;
  const uint8_t* p = data.data() + sizeof h;
  m.shard_begin.resize(static_cast<size_t>(h.num_shards) + 1);
  std::memcpy(m.shard_begin.data(), p,
              m.shard_begin.size() * sizeof(uint64_t));
  p += m.shard_begin.size() * sizeof(uint64_t);
  m.degrees.resize(h.num_vertices);
  std::memcpy(m.degrees.data(), p, m.degrees.size() * sizeof(uint32_t));
  p += m.degrees.size() * sizeof(uint32_t);
  m.new_to_old.resize(h.num_vertices);
  std::memcpy(m.new_to_old.data(), p, m.new_to_old.size() * sizeof(VertexId));

  if (m.shard_begin.front() != 0 || m.shard_begin.back() != h.num_vertices) {
    return Status::Corruption(
        "manifest decode: shard boundaries must run from 0 to the vertex "
        "count");
  }
  for (size_t s = 0; s + 1 < m.shard_begin.size(); ++s) {
    if (m.shard_begin[s] > m.shard_begin[s + 1]) {
      return Status::Corruption(
          "manifest decode: shard boundaries not ascending at shard " +
          std::to_string(s));
    }
  }
  uint64_t degree_sum = 0;
  for (uint32_t d : m.degrees) degree_sum += d;
  if (degree_sum != h.num_edges) {
    return Status::Corruption("manifest decode: degree sum " +
                              std::to_string(degree_sum) +
                              " does not match the header's edge count " +
                              std::to_string(h.num_edges));
  }
  std::vector<bool> seen(h.num_vertices, false);
  for (VertexId old : m.new_to_old) {
    if (old >= h.num_vertices || seen[old]) {
      return Status::Corruption(
          "manifest decode: new_to_old is not a permutation of the vertex "
          "ids");
    }
    seen[old] = true;
  }
  return m;
}

}  // namespace ubigraph::shard
