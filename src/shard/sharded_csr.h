// ShardedCsr: a graph split into contiguous relabeled vertex ranges, one
// serialized segment per shard (segment.h), served through a SegmentCache
// (segment_cache.h). This is the out-of-core substrate: a kernel keeps O(V)
// vertex state in RAM and streams the O(E) adjacency shard-at-a-time, so the
// graph's total segment bytes never need to be resident at once.
//
// Build() partitions the original graph (contiguous split, LDG, or BFS-grow),
// relabels vertices by (part, original id) — a stable permutation, so each
// shard owns one contiguous range of new ids — and encodes per-shard
// segments in memory. WriteTo()/Open() round-trip the whole thing through a
// directory of files (manifest.ugsm + segment_NNN.ugsg) for the mmap-backed
// out-of-core mode. Edge weights are not carried; weighted kernels stay on
// CsrGraph.
//
// Determinism contract (see DESIGN.md "Sharded out-of-core execution"): the
// permutation depends only on the partitioner inputs (graph, shard count,
// seed), never on thread count, and kContiguous is the identity permutation
// at every shard count — so kernels that replay messages in ascending
// worker/shard order (shard_kernels.h) reproduce the in-RAM kernels' exact
// float associations.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/parallel.h"

#include "common/result.h"
#include "graph/csr_graph.h"
#include "shard/segment.h"
#include "shard/segment_cache.h"

namespace ubigraph::shard {

/// How Build assigns vertices to shards.
enum class ShardPartitioner : uint8_t {
  /// Even contiguous ranges of the ORIGINAL vertex ids (identity
  /// permutation). No locality optimization, but sharded kernel output is
  /// bitwise-identical to the in-RAM kernels on the original graph at every
  /// shard count.
  kContiguous = 0,
  /// algo::LdgPartition — streaming linear deterministic greedy.
  kLdg = 1,
  /// algo::BfsGrowPartition — seeded BFS region growing (deterministic for a
  /// fixed seed; pinned by tests/partition_test.cc).
  kBfsGrow = 2,
};

const char* ShardPartitionerName(ShardPartitioner p);

struct ShardOptions {
  uint32_t num_shards = 4;  // in [1, 65535]
  ShardPartitioner partitioner = ShardPartitioner::kContiguous;
  SegmentEncoding encoding = SegmentEncoding::kPlain;
  /// kBfsGrow seed.
  uint64_t seed = 42;
  /// kLdg capacity slack (>= 1.0).
  double ldg_capacity_slack = 1.1;
};

struct ShardOpenOptions {
  SegmentStorage storage = SegmentStorage::kMapped;
  /// See SegmentCache::Options::budget_bytes.
  uint64_t budget_bytes = 0;
};

class ShardedCsr {
 public:
  /// Partitions, relabels, and encodes `g` into in-memory segments.
  /// Neighbor rows are re-sorted by new id during the relabel (required by
  /// the gap encoding; push/BFS/CC kernels are invariant to within-row
  /// order).
  static Result<ShardedCsr> Build(const CsrGraph& g,
                                  const ShardOptions& options = {});

  /// Writes manifest + one segment file per shard into `dir` (created if
  /// missing). Only valid on a Build-produced (in-memory) instance.
  Status WriteTo(const std::string& dir) const;

  /// Opens a WriteTo directory. The manifest is fully validated here;
  /// segment headers are probed here and payloads verified on first load.
  static Result<ShardedCsr> Open(const std::string& dir,
                                 const ShardOpenOptions& options = {});

  VertexId num_vertices() const {
    return static_cast<VertexId>(manifest_.num_vertices);
  }
  uint64_t num_edges() const { return manifest_.num_edges; }
  uint32_t num_shards() const {
    return static_cast<uint32_t>(manifest_.shard_begin.size() - 1);
  }
  bool directed() const { return manifest_.directed; }
  SegmentEncoding encoding() const { return manifest_.encoding; }

  /// First relabeled id of shard s; shard_begin(num_shards()) == V.
  VertexId shard_begin(uint32_t s) const {
    return static_cast<VertexId>(manifest_.shard_begin[s]);
  }
  uint32_t shard_of(VertexId v) const { return shard_of_[v]; }

  /// Out-degree per relabeled id (resident; kernels use it for dangling and
  /// inverse-degree state without touching segments).
  std::span<const uint32_t> degrees() const { return manifest_.degrees; }
  /// Relabeled id -> original id (resident). Kernels translate results back
  /// through this so callers always see original ids.
  std::span<const VertexId> new_to_old() const { return manifest_.new_to_old; }

  /// 1/out-degree per relabeled id (0.0 for sinks) — PageRank's per-source
  /// contribution factor. Built on first use (parallelized over `pool` when
  /// given) and cached for the life of this instance; a ShardedCsr is
  /// immutable after Build/Open, so the cache can never go stale. Thread-safe.
  std::span<const double> InvOutDegrees(ThreadPool* pool = nullptr) const;

  /// Original id -> relabeled id, the inverse of new_to_old(). Same caching
  /// and threading contract as InvOutDegrees().
  std::span<const VertexId> OldToNew(ThreadPool* pool = nullptr) const;

  /// The directory this instance was Open()ed from; empty for Build-produced
  /// (in-memory) instances. Kernels place message spill scratch here so it
  /// shares the segment files' filesystem.
  const std::string& dir() const { return dir_; }

  SegmentCache& cache() const { return *cache_; }

  /// Acquire + cross-check: the pinned view must cover exactly this shard's
  /// manifest range (catches a valid segment file swapped in from another
  /// graph or layout).
  Result<SegmentCache::Pin> AcquireShard(uint32_t s) const;

 private:
  // Lazily-built derived state (satellite of the kernel hot-path hoist: the
  // kernels used to rebuild these serially on every call). Boxed so the
  // std::once_flags don't make ShardedCsr unmovable.
  struct Derived {
    std::once_flag inv_outdeg_once;
    std::once_flag old_to_new_once;
    std::vector<double> inv_outdeg;
    std::vector<VertexId> old_to_new;
  };

  ShardedCsr() : derived_(std::make_unique<Derived>()) {}

  ShardManifest manifest_;
  std::vector<uint16_t> shard_of_;  // size V; why num_shards <= 65535
  std::unique_ptr<SegmentCache> cache_;
  std::string dir_;  // set by Open()
  std::unique_ptr<Derived> derived_;
};

}  // namespace ubigraph::shard
