// On-disk CSR segment format for sharded, out-of-core execution. A graph is
// split into per-shard segments (ShardedCsr, sharded_csr.h); each segment
// holds the out-adjacency rows of one contiguous shard of the relabeled
// vertex space and is serialized as a standalone file:
//
//   [SegmentHeader, 64 bytes]
//   payload, one of:
//     plain:      u64 row_offsets[count+1]  (edge offsets, local, from 0)
//                 u32 targets[num_edges]    (global relabeled vertex ids)
//     compressed: u64 byte_offsets[count+1] (into `bytes`, local, from 0)
//                 u32 degrees[count]
//                 u8  bytes[]               (delta-gap LEB128 varints — the
//                                            exact CompressedCsrGraph coding)
//   [u32 crc32 of header + payload]
//
// All integers little-endian; the header is 64 bytes so both payload arrays
// start 8-byte aligned, which lets a decoded view alias a read buffer or an
// mmap'ed file directly (no copy, no fix-up pass). A graph-level manifest
// file carries what kernels keep resident (shard boundaries, per-vertex
// degrees, the new->old id map) under the same CRC discipline.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/compressed_csr.h"
#include "graph/edge_list.h"

namespace ubigraph::shard {

inline constexpr char kSegmentMagic[4] = {'U', 'G', 'S', 'G'};
inline constexpr char kManifestMagic[4] = {'U', 'G', 'S', 'M'};
inline constexpr uint32_t kSegmentFormatVersion = 1;
inline constexpr uint32_t kManifestFormatVersion = 1;

/// How a segment stores its adjacency rows.
enum class SegmentEncoding : uint8_t {
  /// Raw u32 target arrays — zero decode cost, 4 bytes per stored edge.
  kPlain = 0,
  /// Delta-gap varint rows (CompressedCsrGraph's coding) — roughly half the
  /// bytes on sorted power-law adjacency, decoded 16 ids per block.
  kCompressed = 1,
};

const char* SegmentEncodingName(SegmentEncoding e);

/// Fixed-size on-disk segment header. Kept at 64 bytes so the payload arrays
/// that follow are 8-byte aligned in any page-aligned mapping of the file.
struct SegmentHeader {
  char magic[4];
  uint32_t version = kSegmentFormatVersion;
  uint32_t flags = 0;  // bit 0: compressed encoding
  uint32_t shard_id = 0;
  uint32_t num_shards = 0;
  uint32_t num_vertices = 0;  // of the whole graph — bounds every target id
  uint64_t vertex_begin = 0;  // global relabeled-id range [begin, end)
  uint64_t vertex_end = 0;
  uint64_t num_edges = 0;
  uint64_t payload_bytes = 0;
  uint64_t reserved1 = 0;
};
static_assert(sizeof(SegmentHeader) == 64, "payload alignment depends on this");

inline constexpr uint32_t kSegmentFlagCompressed = 1u << 0;

/// A decoded, zero-copy view into one segment's serialized bytes. Valid only
/// while the underlying buffer (blob or mapping) stays alive — the cache's
/// pin protocol (segment_cache.h) guarantees that for kernels.
struct SegmentView {
  uint32_t shard_id = 0;
  VertexId num_vertices = 0;  // whole-graph vertex count from the header
  VertexId begin = 0;         // global relabeled-id range [begin, end)
  VertexId end = 0;
  uint64_t num_edges = 0;
  SegmentEncoding encoding = SegmentEncoding::kPlain;
  const uint64_t* offsets = nullptr;   // size count()+1 (edge or byte offsets)
  const VertexId* targets = nullptr;   // plain only, size num_edges
  const uint32_t* degrees = nullptr;   // compressed only, size count()
  const uint8_t* bytes = nullptr;      // compressed only

  VertexId count() const { return end - begin; }

  uint64_t OutDegree(VertexId global) const {
    const VertexId u = global - begin;
    return encoding == SegmentEncoding::kPlain ? offsets[u + 1] - offsets[u]
                                               : degrees[u];
  }
  /// Plain-row access; only valid when encoding == kPlain.
  std::span<const VertexId> PlainNeighbors(VertexId global) const {
    const VertexId u = global - begin;
    return {targets + offsets[u], targets + offsets[u + 1]};
  }
  /// Varint-row access; only valid when encoding == kCompressed.
  CompressedCsrGraph::NeighborRange PackedNeighbors(VertexId global) const {
    const VertexId u = global - begin;
    return {bytes + offsets[u], degrees[u]};
  }

  /// Calls row(u, neighbor_range) for every u in [from, to) — the one branch
  /// on the encoding happens per segment scan, not per vertex.
  template <typename RowFn>
  void ScanRows(VertexId from, VertexId to, RowFn&& row) const {
    if (encoding == SegmentEncoding::kPlain) {
      for (VertexId u = from; u < to; ++u) row(u, PlainNeighbors(u));
    } else {
      for (VertexId u = from; u < to; ++u) row(u, PackedNeighbors(u));
    }
  }
};

/// Serializes rows [begin, end) of a relabeled adjacency into a segment blob.
/// `row_offsets` are local edge offsets (size end-begin+1, starting at 0)
/// into `targets`, whose ids must be ascending within each row for the
/// compressed encoding (duplicates allowed — gap 0).
std::string EncodeSegment(uint32_t shard_id, uint32_t num_shards,
                          VertexId num_vertices_global, VertexId begin,
                          VertexId end, std::span<const uint64_t> row_offsets,
                          std::span<const VertexId> targets,
                          SegmentEncoding encoding);

/// Validates and decodes a serialized segment without copying: the returned
/// view aliases `data`, which must be 8-byte aligned (heap buffers and mmap
/// pages are). Structural checks (magic, version, sizes, offset monotonicity,
/// varint stream well-formedness) always run and guarantee the view's
/// decoders cannot read out of bounds; `verify` additionally checks the
/// trailing CRC and that every target id is < the header's vertex count —
/// the cache runs that once per file, not on every re-load. Hostile bytes
/// yield a clear Status, never UB.
Result<SegmentView> DecodeSegment(std::span<const uint8_t> data, bool verify);

/// Graph-level metadata kept fully resident: what every sharded kernel needs
/// without touching a segment (O(V + S) state, no O(E) arrays).
struct ShardManifest {
  SegmentEncoding encoding = SegmentEncoding::kPlain;
  bool directed = true;
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  std::vector<uint64_t> shard_begin;  // size num_shards+1, ascending
  std::vector<uint32_t> degrees;      // out-degree per relabeled id, size V
  std::vector<VertexId> new_to_old;   // relabeled id -> original id, size V
};

std::string EncodeManifest(const ShardManifest& m);
Result<ShardManifest> DecodeManifest(std::span<const uint8_t> data);

}  // namespace ubigraph::shard
