#include "shard/shard_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>

#include "algorithms/traversal.h"
#include "common/parallel.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace ubigraph::shard {
namespace {

/// Contiguous ascending shard ownership: worker w owns shards
/// [w*per, (w+1)*per). Ascending blocks are what makes the per-destination
/// replay order (workers ascending, shards ascending, rows ascending) equal
/// to one global ascending source sweep.
struct ShardPlan {
  uint32_t num_shards;
  unsigned workers;
  uint32_t per;

  ShardPlan(uint32_t s, unsigned w)
      : num_shards(s), workers(w), per((s + w - 1) / w) {}
  uint32_t lo(unsigned w) const {
    return std::min<uint32_t>(w * per, num_shards);
  }
  uint32_t hi(unsigned w) const {
    return std::min<uint32_t>(lo(w) + per, num_shards);
  }
};

/// Runs fn(w) for every worker, on the pool when present. Workers record
/// failures into their own slot of `status`; the first non-OK (lowest w)
/// wins, deterministically.
template <typename Fn>
Status RunWorkers(ThreadPool* pool, unsigned workers, Fn&& fn) {
  std::vector<Status> status(workers);
  if (pool == nullptr) {
    status[0] = fn(0u);
  } else {
    for (unsigned w = 0; w < workers; ++w) {
      pool->Submit([&status, &fn, w] { status[w] = fn(w); });
    }
    pool->Wait();
  }
  for (unsigned w = 0; w < workers; ++w) {
    UG_RETURN_NOT_OK(status[w]);
  }
  return Status::OK();
}

}  // namespace

Result<ShardedPageRankResult> ShardedPageRank(
    const ShardedCsr& g, const ShardedPageRankOptions& options) {
  const VertexId n = g.num_vertices();
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::Invalid("damping must be in [0, 1)");
  }
  const uint32_t S = g.num_shards();
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool_storage;
  if (threads > 1) pool_storage.emplace(threads);
  ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;
  const unsigned W = pool == nullptr ? 1 : pool->size();
  const ShardPlan plan(S, W);

  const double d = options.damping;
  const double tp = 1.0 / n;
  const std::span<const uint32_t> degrees = g.degrees();
  // Same operands as the in-RAM kernel's inv_outdeg (1.0 / double(degree)),
  // so every contribution is the identical double.
  std::vector<double> inv_outdeg(n, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    if (degrees[v] > 0) inv_outdeg[v] = 1.0 / static_cast<double>(degrees[v]);
  }

  std::vector<double> rank(n, tp), next(n);
  // Per-(worker, destination shard) message streams, emission-ordered.
  std::vector<std::vector<std::vector<VertexId>>> msg_dst(
      W, std::vector<std::vector<VertexId>>(S));
  std::vector<std::vector<std::vector<double>>> msg_val(
      W, std::vector<std::vector<double>>(S));

  ShardedPageRankResult result;
  uint64_t edges_streamed = 0;

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    // Straight serial loops for the two global reductions: their float
    // association must match the serial in-RAM kernel regardless of W.
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (degrees[v] == 0) dangling += rank[v];
    }

    UG_RETURN_NOT_OK(RunWorkers(pool, W, [&](unsigned w) -> Status {
      for (uint32_t t = 0; t < S; ++t) {
        msg_dst[w][t].clear();
        msg_val[w][t].clear();
      }
      for (uint32_t s = plan.lo(w); s < plan.hi(w); ++s) {
        UG_ASSIGN_OR_RETURN(SegmentCache::Pin pin, g.AcquireShard(s));
        const SegmentView& view = pin.view();
        view.ScanRows(view.begin, view.end, [&](VertexId u, auto&& nbrs) {
          if (inv_outdeg[u] == 0.0) return;
          const double contrib = d * rank[u] * inv_outdeg[u];
          for (VertexId v : nbrs) {
            const uint32_t t = g.shard_of(v);
            msg_dst[w][t].push_back(v);
            msg_val[w][t].push_back(contrib);
          }
        });
      }
      return Status::OK();
    }));

    // Apply destination shards independently (disjoint next[] ranges),
    // replaying each shard's streams in ascending worker order.
    auto apply = [&](uint32_t t) {
      const VertexId shard_b = g.shard_begin(t);
      const VertexId shard_e = g.shard_begin(t + 1);
      for (VertexId v = shard_b; v < shard_e; ++v) {
        next[v] = (1.0 - d) * tp + d * dangling * tp;
      }
      for (unsigned w = 0; w < W; ++w) {
        const auto& ds = msg_dst[w][t];
        const auto& vs = msg_val[w][t];
        for (size_t i = 0; i < ds.size(); ++i) next[ds[i]] += vs[i];
      }
    };
    if (pool == nullptr) {
      for (uint32_t t = 0; t < S; ++t) apply(t);
    } else {
      ParallelFor(*pool, 0, S,
                  [&](uint64_t t) { apply(static_cast<uint32_t>(t)); });
    }

    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    edges_streamed += g.num_edges();
    rank.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  const std::span<const VertexId> n2o = g.new_to_old();
  result.scores.resize(n);
  for (VertexId v = 0; v < n; ++v) result.scores[n2o[v]] = rank[v];
  obs::AddCounter("shard.pagerank.edges_streamed",
                  static_cast<int64_t>(edges_streamed));
  return result;
}

Result<std::vector<uint32_t>> ShardedBfs(
    const ShardedCsr& g, VertexId source,
    const ShardedTraversalOptions& options) {
  const VertexId n = g.num_vertices();
  if (source >= n) {
    return Status::OutOfRange("ShardedBfs: source " + std::to_string(source) +
                              " out of range for " + std::to_string(n) +
                              " vertices");
  }
  const uint32_t S = g.num_shards();
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool_storage;
  if (threads > 1) pool_storage.emplace(threads);
  ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;
  const unsigned W = pool == nullptr ? 1 : pool->size();
  const ShardPlan plan(S, W);

  const std::span<const VertexId> n2o = g.new_to_old();
  std::vector<VertexId> old_to_new(n);
  for (VertexId v = 0; v < n; ++v) old_to_new[n2o[v]] = v;
  const VertexId src = old_to_new[source];

  std::vector<uint32_t> dist(n, algo::kUnreachable);
  dist[src] = 0;
  // Frontier-vertex count per shard: shards at zero are never acquired in a
  // level — the segment-skipping that makes sparse levels cheap out of core.
  std::vector<uint64_t> active(S, 0);
  active[g.shard_of(src)] = 1;

  std::vector<std::vector<std::vector<VertexId>>> msg_dst(
      W, std::vector<std::vector<VertexId>>(S));
  std::vector<uint64_t> worker_edges(W, 0);

  for (uint32_t level = 0;; ++level) {
    UG_RETURN_NOT_OK(RunWorkers(pool, W, [&](unsigned w) -> Status {
      for (uint32_t t = 0; t < S; ++t) msg_dst[w][t].clear();
      uint64_t scanned = 0;
      for (uint32_t s = plan.lo(w); s < plan.hi(w); ++s) {
        if (active[s] == 0) continue;
        UG_ASSIGN_OR_RETURN(SegmentCache::Pin pin, g.AcquireShard(s));
        const SegmentView& view = pin.view();
        view.ScanRows(view.begin, view.end, [&](VertexId u, auto&& nbrs) {
          if (dist[u] != level) return;
          scanned += nbrs.size();
          for (VertexId v : nbrs) {
            if (dist[v] == algo::kUnreachable) {
              msg_dst[w][g.shard_of(v)].push_back(v);
            }
          }
        });
      }
      worker_edges[w] += scanned;
      return Status::OK();
    }));

    auto apply = [&](uint32_t t) {
      uint64_t discovered = 0;
      for (unsigned w = 0; w < W; ++w) {
        for (VertexId v : msg_dst[w][t]) {
          if (dist[v] == algo::kUnreachable) {
            dist[v] = level + 1;
            ++discovered;
          }
        }
      }
      active[t] = discovered;
    };
    if (pool == nullptr) {
      for (uint32_t t = 0; t < S; ++t) apply(t);
    } else {
      ParallelFor(*pool, 0, S,
                  [&](uint64_t t) { apply(static_cast<uint32_t>(t)); });
    }

    uint64_t total = 0;
    for (uint32_t t = 0; t < S; ++t) total += active[t];
    if (total == 0) break;
  }

  std::vector<uint32_t> out(n);
  for (VertexId v = 0; v < n; ++v) out[n2o[v]] = dist[v];
  uint64_t edges_scanned = 0;
  for (unsigned w = 0; w < W; ++w) edges_scanned += worker_edges[w];
  obs::AddCounter("shard.bfs.edges_scanned",
                  static_cast<int64_t>(edges_scanned));
  return out;
}

Result<algo::ComponentResult> ShardedComponents(
    const ShardedCsr& g, const ShardedTraversalOptions& options) {
  const VertexId n = g.num_vertices();
  const uint32_t S = g.num_shards();
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool_storage;
  if (threads > 1) pool_storage.emplace(threads);
  ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;
  const unsigned W = pool == nullptr ? 1 : pool->size();
  const ShardPlan plan(S, W);

  // Jacobi min-label over the previous round's labels only: min is
  // order-insensitive, so the fixpoint (and every intermediate round) is
  // identical at any worker/shard layout. Reverse messages (v -> u's label)
  // make connectivity weak on directed graphs without an in-edge index, and
  // the cur[cur[u]] pointer jump keeps round counts near the label-prop
  // kernel's instead of the graph diameter.
  std::vector<uint32_t> cur(n), next(n);
  for (VertexId v = 0; v < n; ++v) cur[v] = v;

  std::vector<std::vector<std::vector<VertexId>>> msg_dst(
      W, std::vector<std::vector<VertexId>>(S));
  std::vector<std::vector<std::vector<uint32_t>>> msg_val(
      W, std::vector<std::vector<uint32_t>>(S));
  uint64_t edges_scanned = 0;
  uint32_t rounds = 0;

  while (true) {
    // Scatter: worker w owns next[u] for u in its shards (no other worker
    // writes them before the barrier), so local minima apply in place;
    // reverse influence crosses shards as (v, cur[u]) messages.
    UG_RETURN_NOT_OK(RunWorkers(pool, W, [&](unsigned w) -> Status {
      for (uint32_t t = 0; t < S; ++t) {
        msg_dst[w][t].clear();
        msg_val[w][t].clear();
      }
      for (uint32_t s = plan.lo(w); s < plan.hi(w); ++s) {
        UG_ASSIGN_OR_RETURN(SegmentCache::Pin pin, g.AcquireShard(s));
        const SegmentView& view = pin.view();
        view.ScanRows(view.begin, view.end, [&](VertexId u, auto&& nbrs) {
          uint32_t best = std::min(cur[u], cur[cur[u]]);
          const uint32_t label_u = cur[u];
          for (VertexId v : nbrs) {
            best = std::min(best, cur[v]);
            if (label_u < cur[v]) {
              const uint32_t t = g.shard_of(v);
              msg_dst[w][t].push_back(v);
              msg_val[w][t].push_back(label_u);
            }
          }
          next[u] = best;
        });
      }
      return Status::OK();
    }));

    auto apply = [&](uint32_t t) {
      for (unsigned w = 0; w < W; ++w) {
        const auto& ds = msg_dst[w][t];
        const auto& vs = msg_val[w][t];
        for (size_t i = 0; i < ds.size(); ++i) {
          next[ds[i]] = std::min(next[ds[i]], vs[i]);
        }
      }
    };
    if (pool == nullptr) {
      for (uint32_t t = 0; t < S; ++t) apply(t);
    } else {
      ParallelFor(*pool, 0, S,
                  [&](uint64_t t) { apply(static_cast<uint32_t>(t)); });
    }

    edges_scanned += g.num_edges();
    ++rounds;
    bool changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (next[v] != cur[v]) {
        changed = true;
        break;
      }
    }
    cur.swap(next);
    if (!changed) break;
    // next[] is stale after the swap; the coming round rewrites every entry
    // (scatter covers all rows, including degree-0 ones, via ScanRows).
  }

  // Canonical labels in ORIGINAL id space: first appearance in ascending
  // original order, exactly algo::WeaklyConnectedComponents' numbering.
  const std::span<const VertexId> n2o = g.new_to_old();
  std::vector<VertexId> old_to_new(n);
  for (VertexId v = 0; v < n; ++v) old_to_new[n2o[v]] = v;
  algo::ComponentResult result;
  result.label.resize(n);
  std::vector<uint32_t> canon(n, UINT32_MAX);
  uint32_t num = 0;
  for (VertexId old = 0; old < n; ++old) {
    const uint32_t root = cur[old_to_new[old]];
    if (canon[root] == UINT32_MAX) canon[root] = num++;
    result.label[old] = canon[root];
  }
  result.num_components = num;
  obs::AddCounter("shard.cc.edges_scanned",
                  static_cast<int64_t>(edges_scanned));
  obs::AddCounter("shard.cc.rounds", rounds);
  return result;
}

}  // namespace ubigraph::shard
