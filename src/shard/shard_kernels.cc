#include "shard/shard_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <optional>

#include "algorithms/traversal.h"
#include "common/parallel.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace ubigraph::shard {
namespace {

/// Contiguous ascending shard ownership: worker w owns shards
/// [w*per, (w+1)*per). Ascending blocks are what makes both strategies'
/// per-destination fold order (workers ascending, shards ascending, rows
/// ascending) equal to one global ascending source sweep.
struct ShardPlan {
  uint32_t num_shards;
  unsigned workers;
  uint32_t per;

  ShardPlan(uint32_t s, unsigned w)
      : num_shards(s), workers(w), per((s + w - 1) / w) {}
  uint32_t lo(unsigned w) const {
    return std::min<uint32_t>(w * per, num_shards);
  }
  uint32_t hi(unsigned w) const {
    return std::min<uint32_t>(lo(w) + per, num_shards);
  }
};

/// Runs fn(w) for every worker, on the pool when present. Workers record
/// failures into their own slot of `status`; the first non-OK (lowest w)
/// wins, deterministically.
template <typename Fn>
Status RunWorkers(ThreadPool* pool, unsigned workers, Fn&& fn) {
  std::vector<Status> status(workers);
  if (pool == nullptr) {
    status[0] = fn(0u);
  } else {
    for (unsigned w = 0; w < workers; ++w) {
      pool->Submit([&status, &fn, w] { status[w] = fn(w); });
    }
    pool->Wait();
  }
  for (unsigned w = 0; w < workers; ++w) {
    UG_RETURN_NOT_OK(status[w]);
  }
  return Status::OK();
}

/// Applies destination shards [0, S) via fn(t) -> Status, serially or on the
/// pool; the first failure (lowest t) wins, deterministically.
template <typename Fn>
Status ApplyShards(ThreadPool* pool, uint32_t S, Fn&& fn) {
  if (pool == nullptr) {
    for (uint32_t t = 0; t < S; ++t) UG_RETURN_NOT_OK(fn(t));
    return Status::OK();
  }
  std::vector<Status> status(S);
  ParallelFor(*pool, 0, S,
              [&](uint64_t t) { status[t] = fn(static_cast<uint32_t>(t)); });
  for (uint32_t t = 0; t < S; ++t) {
    UG_RETURN_NOT_OK(status[t]);
  }
  return Status::OK();
}

Status ValidateMsgOptions(const MsgOptions& msg) {
  if (msg.strategy != MsgStrategy::kDenseCombine &&
      msg.strategy != MsgStrategy::kUncombined) {
    return Status::Invalid("sharded kernel: unknown message strategy");
  }
  return Status::OK();
}

/// Spill scratch placement: explicit option first, then the graph's own
/// segment directory (so scratch shares the segments' filesystem), then the
/// system temp directory for Build-produced in-memory graphs.
std::string ResolveSpillDir(const ShardedCsr& g, const MsgOptions& msg) {
  if (!msg.spill_dir.empty()) return msg.spill_dir;
  if (!g.dir().empty()) return g.dir();
  std::error_code ec;
  const std::filesystem::path tmp = std::filesystem::temp_directory_path(ec);
  return ec ? std::string{"."} : tmp.string();
}

/// Copies the run's message-layer stats to the caller and flushes the
/// additive ones to the obs registry (peak_msg_bytes is a high-water mark,
/// not additive — it travels via stats_out only).
void FlushMsgStats(const MsgStats& stats, const MsgOptions& msg) {
  if (msg.stats_out != nullptr) *msg.stats_out = stats;
  obs::AddCounter("shard.msg.combined_edges",
                  static_cast<int64_t>(stats.combined_edges));
  obs::AddCounter("shard.msg.spill_bytes",
                  static_cast<int64_t>(stats.spill_bytes));
  obs::AddCounter("shard.msg.spill_files",
                  static_cast<int64_t>(stats.spill_files));
}

}  // namespace

Result<ShardedPageRankResult> ShardedPageRank(
    const ShardedCsr& g, const ShardedPageRankOptions& options) {
  const VertexId n = g.num_vertices();
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::Invalid("damping must be in [0, 1)");
  }
  UG_RETURN_NOT_OK(ValidateMsgOptions(options.msg));
  const uint32_t S = g.num_shards();
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool_storage;
  if (threads > 1) pool_storage.emplace(threads);
  ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;
  const unsigned W = pool == nullptr ? 1 : pool->size();
  const ShardPlan plan(S, W);
  const bool dense = options.msg.strategy == MsgStrategy::kDenseCombine;

  const double d = options.damping;
  const double tp = 1.0 / n;
  const std::span<const uint32_t> degrees = g.degrees();
  // Same operands as the in-RAM kernel's inv_outdeg (1.0 / double(degree)),
  // so every contribution is the identical double. Cached on the graph —
  // repeated kernel calls no longer rebuild it.
  const std::span<const double> inv_outdeg = g.InvOutDegrees(pool);

  std::vector<double> rank(n, tp), next(n);
  std::optional<MsgStreams<double>> streams;
  if (!dense) {
    UG_ASSIGN_OR_RETURN(
        streams, MsgStreams<double>::Create(W, S,
                                            options.msg.message_budget_bytes,
                                            ResolveSpillDir(g, options.msg)));
  }
  std::vector<uint64_t> worker_combined(W, 0);

  ShardedPageRankResult result;
  uint64_t edges_streamed = 0;

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    // Straight serial loops for the two global reductions: their float
    // association must match the serial in-RAM kernel regardless of W.
    double dangling = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      if (degrees[v] == 0) dangling += rank[v];
    }
    const double base = (1.0 - d) * tp + d * dangling * tp;

    if (dense) {
      // Destination-owned fused scatter/apply: worker w owns next[] over its
      // shard block, seeds it with base, and folds contributions for its own
      // destinations while scanning ALL segments in ascending order — each
      // next[v] is built by one worker in globally ascending source order,
      // i.e. the serial push association, with zero message buffering.
      UG_RETURN_NOT_OK(RunWorkers(pool, W, [&](unsigned w) -> Status {
        const VertexId db = g.shard_begin(plan.lo(w));
        const VertexId de = g.shard_begin(plan.hi(w));
        if (db == de) return Status::OK();
        for (VertexId v = db; v < de; ++v) next[v] = base;
        uint64_t applied = 0;
        const bool owns_all = db == 0 && de == n;
        for (uint32_t s = 0; s < S; ++s) {
          UG_ASSIGN_OR_RETURN(SegmentCache::Pin pin, g.AcquireShard(s));
          const SegmentView& view = pin.view();
          if (owns_all) {
            view.ScanRows(view.begin, view.end, [&](VertexId u, auto&& nbrs) {
              if (inv_outdeg[u] == 0.0) return;
              const double contrib = d * rank[u] * inv_outdeg[u];
              for (VertexId v : nbrs) next[v] += contrib;
              applied += nbrs.size();
            });
          } else {
            view.ScanRows(view.begin, view.end, [&](VertexId u, auto&& nbrs) {
              if (inv_outdeg[u] == 0.0) return;
              const double contrib = d * rank[u] * inv_outdeg[u];
              for (VertexId v : nbrs) {
                if (v >= db && v < de) {
                  next[v] += contrib;
                  ++applied;
                }
              }
            });
          }
        }
        worker_combined[w] += applied;
        return Status::OK();
      }));
    } else {
      UG_RETURN_NOT_OK(streams->Reset());
      UG_RETURN_NOT_OK(RunWorkers(pool, W, [&](unsigned w) -> Status {
        Status emit_status;
        for (uint32_t s = plan.lo(w); s < plan.hi(w) && emit_status.ok();
             ++s) {
          UG_ASSIGN_OR_RETURN(SegmentCache::Pin pin, g.AcquireShard(s));
          const SegmentView& view = pin.view();
          view.ScanRows(view.begin, view.end, [&](VertexId u, auto&& nbrs) {
            if (!emit_status.ok() || inv_outdeg[u] == 0.0) return;
            const double contrib = d * rank[u] * inv_outdeg[u];
            for (VertexId v : nbrs) {
              Status st = streams->Emit(w, g.shard_of(v), v, contrib);
              if (!st.ok()) {
                emit_status = std::move(st);
                return;
              }
            }
          });
        }
        return emit_status;
      }));
      // Apply destination shards independently (disjoint next[] ranges),
      // replaying each shard's streams in ascending worker order.
      UG_RETURN_NOT_OK(ApplyShards(pool, S, [&](uint32_t t) -> Status {
        const VertexId shard_b = g.shard_begin(t);
        const VertexId shard_e = g.shard_begin(t + 1);
        for (VertexId v = shard_b; v < shard_e; ++v) next[v] = base;
        return streams->Replay(
            t, [&](VertexId dst, double val) { next[dst] += val; });
      }));
    }

    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) delta += std::abs(next[v] - rank[v]);
    edges_streamed += g.num_edges();
    rank.swap(next);
    result.iterations = iter + 1;
    result.final_delta = delta;
    if (delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  const std::span<const VertexId> n2o = g.new_to_old();
  result.scores.resize(n);
  for (VertexId v = 0; v < n; ++v) result.scores[n2o[v]] = rank[v];
  obs::AddCounter("shard.pagerank.edges_streamed",
                  static_cast<int64_t>(edges_streamed));
  MsgStats stats = streams ? streams->stats() : MsgStats{};
  for (unsigned w = 0; w < W; ++w) stats.combined_edges += worker_combined[w];
  FlushMsgStats(stats, options.msg);
  return result;
}

Result<std::vector<uint32_t>> ShardedBfs(
    const ShardedCsr& g, VertexId source,
    const ShardedTraversalOptions& options) {
  const VertexId n = g.num_vertices();
  if (source >= n) {
    return Status::OutOfRange("ShardedBfs: source " + std::to_string(source) +
                              " out of range for " + std::to_string(n) +
                              " vertices");
  }
  UG_RETURN_NOT_OK(ValidateMsgOptions(options.msg));
  const uint32_t S = g.num_shards();
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool_storage;
  if (threads > 1) pool_storage.emplace(threads);
  ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;
  const unsigned W = pool == nullptr ? 1 : pool->size();
  const ShardPlan plan(S, W);
  const bool dense = options.msg.strategy == MsgStrategy::kDenseCombine;

  const std::span<const VertexId> n2o = g.new_to_old();
  const VertexId src = g.OldToNew(pool)[source];

  std::vector<uint32_t> dist(n, algo::kUnreachable);
  dist[src] = 0;
  // Frontier-vertex count per shard: shards at zero are never acquired in a
  // level — the segment-skipping that makes sparse levels cheap out of core.
  std::vector<uint64_t> active(S, 0);
  active[g.shard_of(src)] = 1;

  std::vector<uint64_t> worker_edges(W, 0), worker_combined(W, 0);

  if (dense) {
    // Byte-per-vertex frontier flags, double-buffered: cur_f is read-only
    // during a level's scan, next_f and dist are written only by the worker
    // owning the destination's shard block — so discoveries combine at the
    // destination with no message traffic and no write sharing.
    std::vector<uint8_t> cur_f(n, 0), next_f(n, 0);
    cur_f[src] = 1;
    std::vector<uint64_t> next_active(S, 0);
    for (uint32_t level = 0;; ++level) {
      UG_RETURN_NOT_OK(RunWorkers(pool, W, [&](unsigned w) -> Status {
        const uint32_t slo = plan.lo(w), shi = plan.hi(w);
        const VertexId db = g.shard_begin(slo);
        const VertexId de = g.shard_begin(shi);
        if (db == de) return Status::OK();
        std::fill(next_f.begin() + db, next_f.begin() + de, 0);
        for (uint32_t t = slo; t < shi; ++t) next_active[t] = 0;
        uint64_t scanned = 0, applied = 0;
        for (uint32_t s = 0; s < S; ++s) {
          if (active[s] == 0) continue;
          UG_ASSIGN_OR_RETURN(SegmentCache::Pin pin, g.AcquireShard(s));
          const SegmentView& view = pin.view();
          // Each frontier edge is counted once, by the worker that owns its
          // SOURCE shard (every worker scans every active segment here).
          const bool count_rows = s >= slo && s < shi;
          view.ScanRows(view.begin, view.end, [&](VertexId u, auto&& nbrs) {
            if (!cur_f[u]) return;
            if (count_rows) scanned += nbrs.size();
            for (VertexId v : nbrs) {
              if (v >= db && v < de && dist[v] == algo::kUnreachable) {
                dist[v] = level + 1;
                next_f[v] = 1;
                ++next_active[g.shard_of(v)];
                ++applied;
              }
            }
          });
        }
        worker_edges[w] += scanned;
        worker_combined[w] += applied;
        return Status::OK();
      }));

      uint64_t total = 0;
      for (uint32_t t = 0; t < S; ++t) {
        active[t] = next_active[t];
        total += active[t];
      }
      if (total == 0) break;
      cur_f.swap(next_f);
    }
  } else {
    UG_ASSIGN_OR_RETURN(
        MsgStreams<MsgNoValue> streams,
        MsgStreams<MsgNoValue>::Create(W, S, options.msg.message_budget_bytes,
                                       ResolveSpillDir(g, options.msg)));
    for (uint32_t level = 0;; ++level) {
      UG_RETURN_NOT_OK(streams.Reset());
      UG_RETURN_NOT_OK(RunWorkers(pool, W, [&](unsigned w) -> Status {
        Status emit_status;
        uint64_t scanned = 0;
        for (uint32_t s = plan.lo(w); s < plan.hi(w) && emit_status.ok();
             ++s) {
          if (active[s] == 0) continue;
          UG_ASSIGN_OR_RETURN(SegmentCache::Pin pin, g.AcquireShard(s));
          const SegmentView& view = pin.view();
          view.ScanRows(view.begin, view.end, [&](VertexId u, auto&& nbrs) {
            if (!emit_status.ok() || dist[u] != level) return;
            scanned += nbrs.size();
            for (VertexId v : nbrs) {
              if (dist[v] == algo::kUnreachable) {
                Status st = streams.Emit(w, g.shard_of(v), v);
                if (!st.ok()) {
                  emit_status = std::move(st);
                  return;
                }
              }
            }
          });
        }
        worker_edges[w] += scanned;
        return emit_status;
      }));

      UG_RETURN_NOT_OK(ApplyShards(pool, S, [&](uint32_t t) -> Status {
        uint64_t discovered = 0;
        UG_RETURN_NOT_OK(streams.Replay(t, [&](VertexId v) {
          if (dist[v] == algo::kUnreachable) {
            dist[v] = level + 1;
            ++discovered;
          }
        }));
        active[t] = discovered;
        return Status::OK();
      }));

      uint64_t total = 0;
      for (uint32_t t = 0; t < S; ++t) total += active[t];
      if (total == 0) break;
    }
    MsgStats stats = streams.stats();
    FlushMsgStats(stats, options.msg);
  }

  std::vector<uint32_t> out(n);
  for (VertexId v = 0; v < n; ++v) out[n2o[v]] = dist[v];
  uint64_t edges_scanned = 0;
  for (unsigned w = 0; w < W; ++w) edges_scanned += worker_edges[w];
  obs::AddCounter("shard.bfs.edges_scanned",
                  static_cast<int64_t>(edges_scanned));
  if (dense) {
    MsgStats stats;
    for (unsigned w = 0; w < W; ++w) {
      stats.combined_edges += worker_combined[w];
    }
    FlushMsgStats(stats, options.msg);
  }
  return out;
}

Result<algo::ComponentResult> ShardedComponents(
    const ShardedCsr& g, const ShardedTraversalOptions& options) {
  const VertexId n = g.num_vertices();
  UG_RETURN_NOT_OK(ValidateMsgOptions(options.msg));
  const uint32_t S = g.num_shards();
  const unsigned threads = ResolveNumThreads(options.num_threads);
  std::optional<ThreadPool> pool_storage;
  if (threads > 1) pool_storage.emplace(threads);
  ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;
  const unsigned W = pool == nullptr ? 1 : pool->size();
  const ShardPlan plan(S, W);
  const bool dense = options.msg.strategy == MsgStrategy::kDenseCombine;

  // Jacobi min-label over the previous round's labels only: min is
  // order-insensitive, so the fixpoint (and every intermediate round) is
  // identical at any worker/shard layout and under either message strategy.
  // Reverse messages (v -> u's label) make connectivity weak on directed
  // graphs without an in-edge index, and the cur[cur[u]] pointer jump keeps
  // round counts near the label-prop kernel's instead of the graph diameter.
  std::vector<uint32_t> cur(n), next(n);
  for (VertexId v = 0; v < n; ++v) cur[v] = v;

  std::optional<MsgStreams<uint32_t>> streams;
  if (!dense) {
    UG_ASSIGN_OR_RETURN(
        streams, MsgStreams<uint32_t>::Create(
                     W, S, options.msg.message_budget_bytes,
                     ResolveSpillDir(g, options.msg)));
  }
  std::vector<uint64_t> worker_combined(W, 0);
  uint64_t edges_scanned = 0;
  uint32_t rounds = 0;

  while (true) {
    if (dense) {
      // Destination-owned fold: the owner seeds next[v] with the pointer
      // jump, then every worker scanning a row u min-merges label_u into its
      // OWN destinations, and u's owner min-merges the row minimum into
      // next[u]. Min commutes, so this equals the replay oracle exactly.
      UG_RETURN_NOT_OK(RunWorkers(pool, W, [&](unsigned w) -> Status {
        const VertexId db = g.shard_begin(plan.lo(w));
        const VertexId de = g.shard_begin(plan.hi(w));
        if (db == de) return Status::OK();
        for (VertexId v = db; v < de; ++v) {
          next[v] = std::min(cur[v], cur[cur[v]]);
        }
        uint64_t applied = 0;
        for (uint32_t s = 0; s < S; ++s) {
          UG_ASSIGN_OR_RETURN(SegmentCache::Pin pin, g.AcquireShard(s));
          const SegmentView& view = pin.view();
          view.ScanRows(view.begin, view.end, [&](VertexId u, auto&& nbrs) {
            const uint32_t label_u = cur[u];
            if (u >= db && u < de) {
              uint32_t best = next[u];
              for (VertexId v : nbrs) {
                best = std::min(best, cur[v]);
                if (v >= db && v < de) {
                  next[v] = std::min(next[v], label_u);
                  ++applied;
                }
              }
              next[u] = best;
            } else {
              for (VertexId v : nbrs) {
                if (v >= db && v < de) {
                  next[v] = std::min(next[v], label_u);
                  ++applied;
                }
              }
            }
          });
        }
        worker_combined[w] += applied;
        return Status::OK();
      }));
    } else {
      UG_RETURN_NOT_OK(streams->Reset());
      // Scatter: worker w owns next[u] for u in its shards (no other worker
      // writes them before the barrier), so local minima apply in place;
      // reverse influence crosses shards as (v, cur[u]) messages.
      UG_RETURN_NOT_OK(RunWorkers(pool, W, [&](unsigned w) -> Status {
        Status emit_status;
        for (uint32_t s = plan.lo(w); s < plan.hi(w) && emit_status.ok();
             ++s) {
          UG_ASSIGN_OR_RETURN(SegmentCache::Pin pin, g.AcquireShard(s));
          const SegmentView& view = pin.view();
          view.ScanRows(view.begin, view.end, [&](VertexId u, auto&& nbrs) {
            if (!emit_status.ok()) return;
            uint32_t best = std::min(cur[u], cur[cur[u]]);
            const uint32_t label_u = cur[u];
            for (VertexId v : nbrs) {
              best = std::min(best, cur[v]);
              if (label_u < cur[v]) {
                Status st = streams->Emit(w, g.shard_of(v), v, label_u);
                if (!st.ok()) {
                  emit_status = std::move(st);
                  return;
                }
              }
            }
            next[u] = best;
          });
        }
        return emit_status;
      }));

      UG_RETURN_NOT_OK(ApplyShards(pool, S, [&](uint32_t t) -> Status {
        return streams->Replay(t, [&](VertexId dst, uint32_t label) {
          next[dst] = std::min(next[dst], label);
        });
      }));
    }

    edges_scanned += g.num_edges();
    ++rounds;
    bool changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (next[v] != cur[v]) {
        changed = true;
        break;
      }
    }
    cur.swap(next);
    if (!changed) break;
    // next[] is stale after the swap; the coming round rewrites every entry
    // (the dense seed loop / scatter covers all vertices, including
    // degree-0 ones).
  }

  // Canonical labels in ORIGINAL id space: first appearance in ascending
  // original order, exactly algo::WeaklyConnectedComponents' numbering.
  const std::span<const VertexId> old_to_new = g.OldToNew(pool);
  algo::ComponentResult result;
  result.label.resize(n);
  std::vector<uint32_t> canon(n, UINT32_MAX);
  uint32_t num = 0;
  for (VertexId old = 0; old < n; ++old) {
    const uint32_t root = cur[old_to_new[old]];
    if (canon[root] == UINT32_MAX) canon[root] = num++;
    result.label[old] = canon[root];
  }
  result.num_components = num;
  obs::AddCounter("shard.cc.edges_scanned",
                  static_cast<int64_t>(edges_scanned));
  obs::AddCounter("shard.cc.rounds", rounds);
  MsgStats stats = streams ? streams->stats() : MsgStats{};
  for (unsigned w = 0; w < W; ++w) stats.combined_edges += worker_combined[w];
  FlushMsgStats(stats, options.msg);
  return result;
}

}  // namespace ubigraph::shard
