// Shard-at-a-time kernels over a ShardedCsr: PageRank, BFS, and weakly
// connected components that stream segments through the cache instead of
// holding an in-RAM adjacency. All results are reported in ORIGINAL vertex
// ids (translated through the manifest's new_to_old map), so callers compare
// them 1:1 with the src/algorithms kernels.
//
// Two execution strategies, selected by MsgOptions::strategy (msg_stream.h):
//
//   * MsgStrategy::kDenseCombine (default) — destination-owned dense
//     accumulation. Workers own contiguous ascending blocks of DESTINATION
//     shards; each worker scans every (active) segment in ascending order
//     and folds the messages aimed at its own destinations directly into the
//     dense per-vertex state (next-rank, distance + frontier flags,
//     next-label), combining at the destination with no message buffering at
//     all. Each destination is owned by exactly one worker and sources are
//     visited in globally ascending order, so every accumulator sees its
//     contributions in the SERIAL in-RAM push kernel's float association —
//     at any thread count and any shard count. The trade: with W workers a
//     segment is scanned up to W times (destination-partitioned streaming),
//     but per-iteration message memory is zero.
//
//   * MsgStrategy::kUncombined — the propagation-blocking replay path (the
//     bitwise oracle, and the strategy that scans each segment exactly
//     once): workers own contiguous ascending blocks of shards, scan their
//     rows in ascending order, and emit per-(worker, destination shard)
//     message streams; a barrier later, destination shards are applied
//     independently, each replaying its streams in ascending worker order —
//     again globally ascending source order. Streams live in RAM up to
//     MsgOptions::message_budget_bytes and spill to CRC-checked scratch
//     files beyond it (replayed in the same order, so results do not depend
//     on where a block lived).
//
// Both strategies therefore produce bitwise-identical results — to each
// other and across every {threads} x {shards} x {encoding} combination.
// Dangling mass and the L1 delta are straight serial O(V) loops for the same
// reason. Consequences, enforced by tests/sharded_test.cc:
//
//   * PageRank under ShardPartitioner::kContiguous (identity relabel) is
//     bitwise-identical to serial push-mode algo::PageRank on the original
//     graph for every strategy/threads/shards/encoding combination.
//   * Under kLdg/kBfsGrow the permutation itself depends on the shard count,
//     so the per-configuration anchor is serial push PageRank on the
//     relabeled graph (g.Permute of the same permutation) — still exact.
//   * BFS distances and component labels are unique graph invariants:
//     bitwise-equal to the in-RAM kernels under every partitioner.
//
// RAM budget: O(V) vertex state; segment bytes bounded by the cache budget;
// message bytes zero (kDenseCombine) or bounded by message_budget_bytes
// (kUncombined with spill). This is what makes the execution fully
// out-of-core rather than semi-external.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/connected_components.h"
#include "common/result.h"
#include "shard/msg_stream.h"
#include "shard/sharded_csr.h"

namespace ubigraph::shard {

struct ShardedPageRankOptions {
  double damping = 0.85;
  /// L1 convergence threshold; 0 with max_iterations = fixed-work runs.
  double tolerance = 1e-9;
  uint32_t max_iterations = 100;
  /// 0 = hardware_concurrency, 1 = exact serial path (default), >= 2 = that
  /// many workers. Scores are bitwise-identical at every setting.
  uint32_t num_threads = 1;
  /// Message strategy, budget, spill placement, stats out. See msg_stream.h.
  MsgOptions msg;
};

struct ShardedPageRankResult {
  std::vector<double> scores;  // indexed by ORIGINAL vertex id, sums to 1
  uint32_t iterations = 0;
  double final_delta = 0.0;
  bool converged = false;
};

Result<ShardedPageRankResult> ShardedPageRank(
    const ShardedCsr& g, const ShardedPageRankOptions& options = {});

struct ShardedTraversalOptions {
  /// Same convention as ShardedPageRankOptions::num_threads.
  uint32_t num_threads = 1;
  /// Message strategy, budget, spill placement, stats out. See msg_stream.h.
  MsgOptions msg;
};

/// Level-synchronous BFS from `source` (an ORIGINAL vertex id). Returns hop
/// distances indexed by original id, algo::kUnreachable where unreached —
/// the same contract as algo::BfsDistances. Shards with no frontier vertex
/// in a level are skipped without touching their segments.
Result<std::vector<uint32_t>> ShardedBfs(
    const ShardedCsr& g, VertexId source,
    const ShardedTraversalOptions& options = {});

/// Weakly connected components by Jacobi min-label propagation with pointer
/// jumping; edge direction is ignored (each scanned arc also sends its
/// reverse message). Labels match algo::WeaklyConnectedComponents exactly:
/// canonical ids assigned by first appearance in ascending ORIGINAL vertex
/// order.
Result<algo::ComponentResult> ShardedComponents(
    const ShardedCsr& g, const ShardedTraversalOptions& options = {});

}  // namespace ubigraph::shard
