// Shard-at-a-time kernels over a ShardedCsr: PageRank, BFS, and weakly
// connected components that stream segments through the cache instead of
// holding an in-RAM adjacency. All results are reported in ORIGINAL vertex
// ids (translated through the manifest's new_to_old map), so callers compare
// them 1:1 with the src/algorithms kernels.
//
// Execution template (the propagation-blocking idiom from kBlocked PageRank):
// workers own contiguous ascending blocks of shards; each worker scans its
// shards' rows in ascending vertex order and emits per-(worker, destination
// shard) message streams; a barrier later, destination shards are applied
// independently, each replaying its streams in ascending worker order. A
// worker's sources all precede the next worker's, so every destination
// receives its contributions in globally ascending source order — the float
// association of the SERIAL in-RAM push kernel — at any thread count and any
// shard count. Dangling mass and the L1 delta are straight serial O(V) loops
// for the same reason. Consequences, enforced by tests/sharded_test.cc:
//
//   * PageRank under ShardPartitioner::kContiguous (identity relabel) is
//     bitwise-identical to serial push-mode algo::PageRank on the original
//     graph for every {threads} x {shards} x {encoding} combination.
//   * Under kLdg/kBfsGrow the permutation itself depends on the shard count,
//     so the per-configuration anchor is serial push PageRank on the
//     relabeled graph (g.Permute of the same permutation) — still exact.
//   * BFS distances and component labels are unique graph invariants:
//     bitwise-equal to the in-RAM kernels under every partitioner.
//
// RAM budget: O(V) vertex state plus the per-iteration message streams
// (12 bytes per scanned edge, same as kBlocked's bins — message spill to
// disk is future work); segment bytes stay bounded by the cache budget.
#pragma once

#include <cstdint>
#include <vector>

#include "algorithms/connected_components.h"
#include "common/result.h"
#include "shard/sharded_csr.h"

namespace ubigraph::shard {

struct ShardedPageRankOptions {
  double damping = 0.85;
  /// L1 convergence threshold; 0 with max_iterations = fixed-work runs.
  double tolerance = 1e-9;
  uint32_t max_iterations = 100;
  /// 0 = hardware_concurrency, 1 = exact serial path (default), >= 2 = that
  /// many workers. Scores are bitwise-identical at every setting.
  uint32_t num_threads = 1;
};

struct ShardedPageRankResult {
  std::vector<double> scores;  // indexed by ORIGINAL vertex id, sums to 1
  uint32_t iterations = 0;
  double final_delta = 0.0;
  bool converged = false;
};

Result<ShardedPageRankResult> ShardedPageRank(
    const ShardedCsr& g, const ShardedPageRankOptions& options = {});

struct ShardedTraversalOptions {
  /// Same convention as ShardedPageRankOptions::num_threads.
  uint32_t num_threads = 1;
};

/// Level-synchronous BFS from `source` (an ORIGINAL vertex id). Returns hop
/// distances indexed by original id, algo::kUnreachable where unreached —
/// the same contract as algo::BfsDistances. Shards with no frontier vertex
/// in a level are skipped without touching their segments.
Result<std::vector<uint32_t>> ShardedBfs(
    const ShardedCsr& g, VertexId source,
    const ShardedTraversalOptions& options = {});

/// Weakly connected components by Jacobi min-label propagation with pointer
/// jumping; edge direction is ignored (each scanned arc also sends its
/// reverse message). Labels match algo::WeaklyConnectedComponents exactly:
/// canonical ids assigned by first appearance in ascending ORIGINAL vertex
/// order.
Result<algo::ComponentResult> ShardedComponents(
    const ShardedCsr& g, const ShardedTraversalOptions& options = {});

}  // namespace ubigraph::shard
