#include "shard/segment_cache.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/status.h"
#include "obs/metrics.h"

namespace ubigraph::shard {

struct SegmentCache::Counters {
  obs::Counter* hits;
  obs::Counter* misses;
  obs::Counter* evictions;
  obs::Counter* bytes_loaded;
  obs::Counter* over_budget;

  static const Counters* Get() {
    static const Counters c = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return Counters{reg.GetCounter("shard.cache.hits"),
                      reg.GetCounter("shard.cache.misses"),
                      reg.GetCounter("shard.cache.evictions"),
                      reg.GetCounter("shard.cache.bytes_loaded"),
                      reg.GetCounter("shard.cache.over_budget")};
    }();
    return &c;
  }
};

namespace {

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("segment cache: cannot open " + path);
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IOError("segment cache: read failed on " + path);
  }
  return bytes;
}

/// Validates a file's leading SegmentHeader and size without touching the
/// payload, so open fails fast on wrong-format files before any mmap.
Status ProbeHeader(const std::string& path, uint32_t expected_shard,
                   uint64_t* size_out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("segment cache: cannot open " + path);
  }
  char raw[sizeof(SegmentHeader)];
  in.read(raw, sizeof raw);
  if (in.gcount() != static_cast<std::streamsize>(sizeof raw)) {
    return Status::Corruption("segment cache: " + path +
                              " is shorter than a segment header");
  }
  SegmentHeader h;
  std::memcpy(&h, raw, sizeof h);
  if (std::memcmp(h.magic, kSegmentMagic, sizeof h.magic) != 0) {
    return Status::Invalid("segment cache: " + path +
                           " has bad magic — not a UGSG segment");
  }
  if (h.version != kSegmentFormatVersion) {
    return Status::Invalid(
        "segment cache: " + path + " uses format version " +
        std::to_string(h.version) + "; reader understands " +
        std::to_string(kSegmentFormatVersion));
  }
  if (h.shard_id != expected_shard) {
    return Status::Invalid("segment cache: " + path + " holds shard " +
                           std::to_string(h.shard_id) + ", expected " +
                           std::to_string(expected_shard));
  }
  in.seekg(0, std::ios::end);
  const uint64_t size = static_cast<uint64_t>(in.tellg());
  if (size != sizeof(SegmentHeader) + h.payload_bytes + sizeof(uint32_t)) {
    return Status::Corruption(
        "segment cache: " + path + " is " + std::to_string(size) +
        " bytes; its header implies " +
        std::to_string(sizeof(SegmentHeader) + h.payload_bytes +
                       sizeof(uint32_t)));
  }
  *size_out = size;
  return Status::OK();
}

}  // namespace

SegmentCache::Pin& SegmentCache::Pin::operator=(Pin&& o) noexcept {
  if (this != &o) {
    Release();
    cache_ = o.cache_;
    shard_ = o.shard_;
    view_ = o.view_;
    o.cache_ = nullptr;
  }
  return *this;
}

void SegmentCache::Pin::Release() {
  if (cache_ != nullptr) {
    cache_->Unpin(shard_);
    cache_ = nullptr;
  }
}

SegmentCache::~SegmentCache() {
  for (uint32_t s = 0; s < entries_.size(); ++s) {
    if (entries_[s].map_addr != nullptr) EvictLocked(s);
  }
}

Result<std::unique_ptr<SegmentCache>> SegmentCache::FromBlobs(
    std::vector<std::string> blobs) {
  std::unique_ptr<SegmentCache> cache(new SegmentCache());
  cache->counters_ = Counters::Get();
  cache->entries_.resize(blobs.size());
  for (uint32_t s = 0; s < blobs.size(); ++s) {
    Entry& e = cache->entries_[s];
    e.blob = std::move(blobs[s]);
    e.size = e.blob.size();
    UG_ASSIGN_OR_RETURN(
        e.view,
        DecodeSegment({reinterpret_cast<const uint8_t*>(e.blob.data()),
                       e.blob.size()},
                      /*verify=*/true));
    if (e.view.shard_id != s) {
      return Status::Invalid("segment cache: blob " + std::to_string(s) +
                             " holds shard " + std::to_string(e.view.shard_id));
    }
    e.loaded = true;
    e.verified = true;
    cache->total_bytes_ += e.size;
  }
  cache->resident_bytes_ = cache->total_bytes_;
  cache->peak_resident_bytes_ = cache->total_bytes_;
  return cache;
}

Result<std::unique_ptr<SegmentCache>> SegmentCache::FromFiles(
    std::vector<std::string> paths, const Options& options) {
  std::unique_ptr<SegmentCache> cache(new SegmentCache());
  cache->counters_ = Counters::Get();
  cache->options_ = options;
  cache->entries_.resize(paths.size());
  for (uint32_t s = 0; s < paths.size(); ++s) {
    Entry& e = cache->entries_[s];
    e.path = std::move(paths[s]);
    UG_RETURN_NOT_OK(ProbeHeader(e.path, s, &e.size));
    cache->total_bytes_ += e.size;
  }
  if (options.storage == SegmentStorage::kResident) {
    for (uint32_t s = 0; s < cache->entries_.size(); ++s) {
      UG_RETURN_NOT_OK(cache->LoadLocked(s));
    }
  }
  return cache;
}

Result<SegmentCache::Pin> SegmentCache::Acquire(uint32_t shard) {
  if (shard >= entries_.size()) {
    return Status::OutOfRange("segment cache: shard " + std::to_string(shard) +
                              " of " + std::to_string(entries_.size()));
  }
  const bool record = obs::Enabled();
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[shard];
  if (e.loaded) {
    if (record) counters_->hits->Increment();
  } else {
    if (record) counters_->misses->Increment();
    // Make room first: evict least-recently-used unpinned segments until the
    // new load fits the budget or nothing evictable remains (then load
    // anyway — a stalled kernel is worse than a transient overshoot).
    while (options_.budget_bytes != 0 &&
           resident_bytes_ + e.size > options_.budget_bytes) {
      uint32_t victim = std::numeric_limits<uint32_t>::max();
      uint64_t oldest = std::numeric_limits<uint64_t>::max();
      for (uint32_t s = 0; s < entries_.size(); ++s) {
        const Entry& c = entries_[s];
        if (c.loaded && c.pins == 0 && c.map_addr != nullptr &&
            c.lru_stamp < oldest) {
          victim = s;
          oldest = c.lru_stamp;
        }
      }
      if (victim == std::numeric_limits<uint32_t>::max()) {
        if (record) counters_->over_budget->Increment();
        break;
      }
      EvictLocked(victim);
      if (record) counters_->evictions->Increment();
    }
    UG_RETURN_NOT_OK(LoadLocked(shard));
    if (record) {
      counters_->bytes_loaded->Add(static_cast<int64_t>(e.size));
    }
  }
  ++e.pins;
  e.lru_stamp = ++lru_clock_;
  return Pin(this, shard, &e.view);
}

Status SegmentCache::LoadLocked(uint32_t shard) {
  Entry& e = entries_[shard];
  const uint8_t* data = nullptr;
  if (options_.storage == SegmentStorage::kResident) {
    UG_ASSIGN_OR_RETURN(e.blob, ReadFileBytes(e.path));
    data = reinterpret_cast<const uint8_t*>(e.blob.data());
  } else {
    const int fd = ::open(e.path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError("segment cache: open(" + e.path +
                             "): " + std::strerror(errno));
    }
    void* addr = ::mmap(nullptr, e.size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (addr == MAP_FAILED) {
      return Status::IOError("segment cache: mmap(" + e.path +
                             "): " + std::strerror(errno));
    }
    e.map_addr = addr;
    data = static_cast<const uint8_t*>(addr);
  }
  Result<SegmentView> view = DecodeSegment({data, e.size}, !e.verified);
  if (!view.ok()) {
    EvictLocked(shard);
    return view.status();
  }
  e.view = std::move(view).ValueUnsafe();
  e.loaded = true;
  e.verified = true;
  resident_bytes_ += e.size;
  if (resident_bytes_ > peak_resident_bytes_) {
    peak_resident_bytes_ = resident_bytes_;
  }
  return Status::OK();
}

void SegmentCache::EvictLocked(uint32_t shard) {
  Entry& e = entries_[shard];
  if (e.map_addr != nullptr) {
    ::munmap(e.map_addr, e.size);
    e.map_addr = nullptr;
  }
  // File-backed entries may hold the file contents in a heap buffer (the
  // kResident path); release it so a failed decode doesn't retain the whole
  // file in an entry marked unloaded. Blob-backed entries (FromBlobs) own
  // their bytes for the cache's lifetime and are never evicted.
  if (!e.path.empty()) {
    e.blob = std::string{};
  }
  if (e.loaded) {
    e.loaded = false;
    resident_bytes_ -= e.size;
  }
  e.view = SegmentView{};
}

void SegmentCache::Unpin(uint32_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  --entries_[shard].pins;
}

Result<std::span<const uint8_t>> SegmentCache::SerializedBytes(
    uint32_t shard) const {
  if (shard >= entries_.size()) {
    return Status::OutOfRange("segment cache: shard " + std::to_string(shard) +
                              " of " + std::to_string(entries_.size()));
  }
  const Entry& e = entries_[shard];
  if (!e.path.empty()) {
    return Status::NotImplemented(
        "segment cache: SerializedBytes is for in-memory (Build) caches; "
        "file-backed segments already live on disk");
  }
  return std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(e.blob.data()), e.blob.size());
}

uint64_t SegmentCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

uint64_t SegmentCache::peak_segment_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_resident_bytes_;
}

}  // namespace ubigraph::shard
