#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.h"

namespace ubigraph::ml {

namespace {

double SquaredDistance(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            uint32_t k, KMeansOptions options) {
  if (points.empty()) return Status::Invalid("no points");
  if (k == 0) return Status::Invalid("k must be positive");
  if (k > points.size()) return Status::Invalid("k exceeds number of points");
  const size_t d = points[0].size();
  for (const auto& p : points) {
    if (p.size() != d) return Status::Invalid("ragged point matrix");
  }

  Rng rng(options.seed);
  KMeansResult r;

  // k-means++ seeding.
  r.centroids.push_back(points[rng.NextBounded(points.size())]);
  std::vector<double> dist2(points.size(), std::numeric_limits<double>::max());
  while (r.centroids.size() < k) {
    for (size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i], SquaredDistance(points[i], r.centroids.back()));
    }
    size_t pick = rng.SampleWeighted(dist2);
    if (pick >= points.size()) pick = rng.NextBounded(points.size());
    r.centroids.push_back(points[pick]);
  }

  r.assignment.assign(points.size(), 0);
  std::vector<std::vector<double>> sums(k, std::vector<double>(d, 0.0));
  std::vector<uint64_t> counts(k, 0);

  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assign.
    for (size_t i = 0; i < points.size(); ++i) {
      double best = std::numeric_limits<double>::max();
      uint32_t best_c = 0;
      for (uint32_t c = 0; c < k; ++c) {
        double dd = SquaredDistance(points[i], r.centroids[c]);
        if (dd < best) {
          best = dd;
          best_c = c;
        }
      }
      r.assignment[i] = best_c;
    }
    // Update.
    for (uint32_t c = 0; c < k; ++c) {
      std::fill(sums[c].begin(), sums[c].end(), 0.0);
      counts[c] = 0;
    }
    for (size_t i = 0; i < points.size(); ++i) {
      uint32_t c = r.assignment[i];
      ++counts[c];
      for (size_t j = 0; j < d; ++j) sums[c][j] += points[i][j];
    }
    double movement = 0.0;
    for (uint32_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its centroid
      for (size_t j = 0; j < d; ++j) {
        double nv = sums[c][j] / static_cast<double>(counts[c]);
        movement += std::abs(nv - r.centroids[c][j]);
        r.centroids[c][j] = nv;
      }
    }
    r.iterations = iter + 1;
    if (movement < options.tolerance) {
      r.converged = true;
      break;
    }
  }

  r.inertia = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    r.inertia += SquaredDistance(points[i], r.centroids[r.assignment[i]]);
  }
  return r;
}

void NormalizeFeatures(std::vector<std::vector<double>>* points) {
  if (points->empty()) return;
  const size_t d = (*points)[0].size();
  for (size_t j = 0; j < d; ++j) {
    double lo = std::numeric_limits<double>::max();
    double hi = std::numeric_limits<double>::lowest();
    for (const auto& p : *points) {
      lo = std::min(lo, p[j]);
      hi = std::max(hi, p[j]);
    }
    double span = hi - lo;
    for (auto& p : *points) {
      p[j] = span > 0 ? (p[j] - lo) / span : 0.0;
    }
  }
}

}  // namespace ubigraph::ml
