// Linear and logistic regression (Table 10a: 11/89 participants) by full-batch
// gradient descent, with graph-derived feature extraction so vertices can be
// classified/regressed from their structural properties.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::ml {

struct RegressionOptions {
  uint32_t epochs = 500;
  double learning_rate = 0.1;
  double l2 = 1e-4;
};

/// w.x + b model trained with squared loss.
class LinearRegression {
 public:
  /// X: row-major n x d design matrix, y: n targets.
  static Result<LinearRegression> Fit(const std::vector<std::vector<double>>& x,
                                      const std::vector<double>& y,
                                      RegressionOptions options = {});

  double Predict(const std::vector<double>& features) const;
  const std::vector<double>& weights() const { return w_; }
  double bias() const { return b_; }
  double TrainMse(const std::vector<std::vector<double>>& x,
                  const std::vector<double>& y) const;

 private:
  std::vector<double> w_;
  double b_ = 0.0;
};

/// sigmoid(w.x + b) binary classifier trained with log loss.
class LogisticRegression {
 public:
  /// y entries must be 0 or 1.
  static Result<LogisticRegression> Fit(const std::vector<std::vector<double>>& x,
                                        const std::vector<int>& y,
                                        RegressionOptions options = {});

  double PredictProbability(const std::vector<double>& features) const;
  int PredictClass(const std::vector<double>& features) const {
    return PredictProbability(features) >= 0.5 ? 1 : 0;
  }
  double Accuracy(const std::vector<std::vector<double>>& x,
                  const std::vector<int>& y) const;

 private:
  std::vector<double> w_;
  double b_ = 0.0;
};

/// Structural features per vertex: {out-degree, in-degree, local clustering
/// coefficient, core number, PageRank} — the standard baseline feature set
/// for vertex-level prediction tasks.
std::vector<std::vector<double>> ExtractVertexFeatures(const CsrGraph& g);

}  // namespace ubigraph::ml
