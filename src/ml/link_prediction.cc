#include "ml/link_prediction.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"

namespace ubigraph::ml {

namespace {

std::vector<std::vector<VertexId>> UndirectedSortedAdjacency(const CsrGraph& g) {
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  return adj;
}

double ScoreWithAdj(const std::vector<std::vector<VertexId>>& adj, VertexId u,
                    VertexId v, LinkScore score) {
  const auto& au = adj[u];
  const auto& av = adj[v];
  if (score == LinkScore::kPreferentialAttachment) {
    return static_cast<double>(au.size()) * static_cast<double>(av.size());
  }
  double acc = 0.0;
  size_t common = 0;
  size_t i = 0, j = 0;
  while (i < au.size() && j < av.size()) {
    if (au[i] < av[j]) ++i;
    else if (au[i] > av[j]) ++j;
    else {
      VertexId w = au[i];
      ++common;
      switch (score) {
        case LinkScore::kAdamicAdar:
          if (adj[w].size() > 1) acc += 1.0 / std::log(adj[w].size());
          break;
        case LinkScore::kResourceAllocation:
          if (!adj[w].empty()) acc += 1.0 / static_cast<double>(adj[w].size());
          break;
        default:
          break;
      }
      ++i;
      ++j;
    }
  }
  switch (score) {
    case LinkScore::kCommonNeighbors:
      return static_cast<double>(common);
    case LinkScore::kJaccard: {
      size_t uni = au.size() + av.size() - common;
      return uni == 0 ? 0.0 : static_cast<double>(common) / uni;
    }
    case LinkScore::kAdamicAdar:
    case LinkScore::kResourceAllocation:
      return acc;
    case LinkScore::kPreferentialAttachment:
      break;  // handled above
  }
  return 0.0;
}

}  // namespace

double ScoreLink(const CsrGraph& g, VertexId u, VertexId v, LinkScore score) {
  auto adj = UndirectedSortedAdjacency(g);
  return ScoreWithAdj(adj, u, v, score);
}

double KatzIndex(const CsrGraph& g, VertexId u, VertexId v, double beta,
                 uint32_t max_length) {
  // counts[w] = number of walks of current length from u to w.
  const VertexId n = g.num_vertices();
  if (u >= n || v >= n) return 0.0;
  auto adj = UndirectedSortedAdjacency(g);
  std::unordered_map<VertexId, double> frontier{{u, 1.0}};
  double katz = 0.0;
  double b = 1.0;
  for (uint32_t len = 1; len <= max_length; ++len) {
    b *= beta;
    std::unordered_map<VertexId, double> next;
    for (const auto& [w, count] : frontier) {
      for (VertexId x : adj[w]) next[x] += count;
    }
    auto it = next.find(v);
    if (it != next.end()) katz += b * it->second;
    frontier = std::move(next);
    if (frontier.size() > 200000) break;  // walk-count blowup guard
  }
  return katz;
}

std::vector<PredictedLink> TopKPredictedLinks(const CsrGraph& g, size_t k,
                                              LinkScore score) {
  auto adj = UndirectedSortedAdjacency(g);
  const VertexId n = g.num_vertices();
  std::vector<PredictedLink> all;
  std::unordered_set<uint64_t> considered;
  for (VertexId u = 0; u < n; ++u) {
    // Candidates: 2-hop neighbors not already adjacent.
    for (VertexId w : adj[u]) {
      for (VertexId v : adj[w]) {
        if (v <= u) continue;
        uint64_t key = (static_cast<uint64_t>(u) << 32) | v;
        if (considered.count(key)) continue;
        considered.insert(key);
        if (std::binary_search(adj[u].begin(), adj[u].end(), v)) continue;
        double s = ScoreWithAdj(adj, u, v, score);
        if (s > 0) all.push_back({u, v, s});
      }
    }
  }
  std::sort(all.begin(), all.end(), [](const PredictedLink& a, const PredictedLink& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });
  if (all.size() > k) all.resize(k);
  return all;
}

Result<double> LinkPredictionAuc(
    const CsrGraph& g, const std::vector<std::pair<VertexId, VertexId>>& held_out,
    LinkScore score, uint32_t num_negative_samples, uint64_t seed) {
  if (held_out.empty()) return Status::Invalid("held_out must be non-empty");
  if (num_negative_samples == 0) {
    return Status::Invalid("num_negative_samples must be positive");
  }
  const VertexId n = g.num_vertices();
  if (n < 2) return Status::Invalid("graph too small");
  auto adj = UndirectedSortedAdjacency(g);
  for (const auto& [u, v] : held_out) {
    if (u >= n || v >= n) return Status::OutOfRange("held-out vertex out of range");
  }

  Rng rng(seed);
  // AUC ~= P(score(pos) > score(neg)) + 0.5 P(equal), sampled.
  uint64_t wins = 0, ties = 0, trials = 0;
  for (uint32_t t = 0; t < num_negative_samples; ++t) {
    const auto& [pu, pv] = held_out[rng.NextBounded(held_out.size())];
    // Rejection-sample a non-edge.
    VertexId nu = 0, nv = 0;
    for (int attempts = 0; attempts < 64; ++attempts) {
      nu = static_cast<VertexId>(rng.NextBounded(n));
      nv = static_cast<VertexId>(rng.NextBounded(n));
      if (nu == nv) continue;
      if (!std::binary_search(adj[nu].begin(), adj[nu].end(), nv)) break;
    }
    double sp = ScoreWithAdj(adj, pu, pv, score);
    double sn = ScoreWithAdj(adj, nu, nv, score);
    if (sp > sn) ++wins;
    else if (sp == sn) ++ties;
    ++trials;
  }
  return (static_cast<double>(wins) + 0.5 * static_cast<double>(ties)) /
         static_cast<double>(trials);
}

}  // namespace ubigraph::ml
