// Matrix factorization over a bipartite rating graph, trainable with both
// optimizers the survey asks about (Table 10a): stochastic gradient descent
// (4 participants, 3 papers) and alternating least squares (0 participants,
// 2 papers — the survey's famous "nobody uses ALS" row).
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace ubigraph::ml {

/// An observed (user, item, rating) triple.
struct Rating {
  uint32_t user;
  uint32_t item;
  double value;
};

struct FactorizationOptions {
  uint32_t rank = 8;
  uint32_t epochs = 50;
  double learning_rate = 0.02;   // SGD only
  double regularization = 0.05;
  uint64_t seed = 42;
};

/// A learned low-rank model: rating(u, i) ~= dot(user_factors[u], item_factors[i]).
class FactorModel {
 public:
  FactorModel(uint32_t num_users, uint32_t num_items, uint32_t rank, uint64_t seed);

  double Predict(uint32_t user, uint32_t item) const;
  uint32_t num_users() const { return num_users_; }
  uint32_t num_items() const { return num_items_; }
  uint32_t rank() const { return rank_; }

  /// Root-mean-square error over a rating set.
  double Rmse(const std::vector<Rating>& ratings) const;

  /// Top-k items for a user, excluding those in `seen`.
  std::vector<uint32_t> RecommendItems(uint32_t user, size_t k,
                                       const std::vector<uint32_t>& seen) const;

  std::vector<double>& user_factors() { return user_factors_; }
  std::vector<double>& item_factors() { return item_factors_; }

 private:
  uint32_t num_users_;
  uint32_t num_items_;
  uint32_t rank_;
  std::vector<double> user_factors_;  // num_users x rank, row-major
  std::vector<double> item_factors_;  // num_items x rank, row-major

  friend class SgdTrainer;
  friend class AlsTrainer;
};

struct TrainStats {
  std::vector<double> epoch_rmse;  // training RMSE after each epoch
};

/// Trains by SGD over shuffled ratings.
Result<TrainStats> TrainSgd(FactorModel* model, const std::vector<Rating>& ratings,
                            const FactorizationOptions& options);

/// Trains by ALS: alternately solve ridge regressions for user and item
/// factors (normal equations via Cholesky).
Result<TrainStats> TrainAls(FactorModel* model, const std::vector<Rating>& ratings,
                            const FactorizationOptions& options);

}  // namespace ubigraph::ml
