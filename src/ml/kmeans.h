// K-means clustering over vertex feature vectors (Table 10a "Clustering") —
// the non-graph-native clustering path: extract structural features, then
// cluster in feature space.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace ubigraph::ml {

struct KMeansOptions {
  uint32_t max_iterations = 100;
  double tolerance = 1e-6;  // centroid movement threshold
  uint64_t seed = 42;
};

struct KMeansResult {
  std::vector<uint32_t> assignment;           // point -> cluster
  std::vector<std::vector<double>> centroids; // k x d
  double inertia = 0.0;                       // total squared distance
  uint32_t iterations = 0;
  bool converged = false;
};

/// Lloyd's algorithm with k-means++ initialization.
Result<KMeansResult> KMeans(const std::vector<std::vector<double>>& points,
                            uint32_t k, KMeansOptions options = {});

/// Min-max normalizes each feature dimension to [0, 1] in place (constant
/// dimensions become 0).
void NormalizeFeatures(std::vector<std::vector<double>>* points);

}  // namespace ubigraph::ml
