#include "ml/belief_propagation.h"

#include <algorithm>
#include <cmath>

namespace ubigraph::ml {

std::vector<uint32_t> BeliefResult::MapStates(uint32_t num_states) const {
  std::vector<uint32_t> out(beliefs.size() / num_states);
  for (size_t v = 0; v < out.size(); ++v) {
    const double* row = beliefs.data() + v * num_states;
    out[v] = static_cast<uint32_t>(
        std::max_element(row, row + num_states) - row);
  }
  return out;
}

Result<BeliefResult> LoopyBeliefPropagation(const CsrGraph& g, const PairwiseMrf& mrf,
                                            BeliefPropagationOptions options) {
  const VertexId n = g.num_vertices();
  const uint32_t s = mrf.num_states;
  if (s == 0) return Status::Invalid("num_states must be positive");
  if (mrf.unary.size() != static_cast<size_t>(n) * s) {
    return Status::Invalid("unary potential size mismatch");
  }
  if (mrf.pairwise.size() != static_cast<size_t>(s) * s) {
    return Status::Invalid("pairwise potential size mismatch");
  }
  if (options.damping < 0.0 || options.damping >= 1.0) {
    return Status::Invalid("damping must be in [0, 1)");
  }

  // Build undirected directed-message edge list: for each undirected edge
  // {u, v}, messages u->v and v->u.
  struct Msg {
    VertexId from;
    VertexId to;
    uint32_t reverse;  // index of the opposite-direction message
  };
  std::vector<Msg> msgs;
  {
    std::vector<std::pair<VertexId, VertexId>> und;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v : g.OutNeighbors(u)) {
        if (u == v) continue;
        und.emplace_back(std::min(u, v), std::max(u, v));
      }
    }
    std::sort(und.begin(), und.end());
    und.erase(std::unique(und.begin(), und.end()), und.end());
    msgs.reserve(und.size() * 2);
    for (const auto& [a, b] : und) {
      uint32_t i = static_cast<uint32_t>(msgs.size());
      msgs.push_back({a, b, i + 1});
      msgs.push_back({b, a, i});
    }
  }
  // Incoming message indices per vertex.
  std::vector<std::vector<uint32_t>> incoming(n);
  for (uint32_t i = 0; i < msgs.size(); ++i) incoming[msgs[i].to].push_back(i);

  std::vector<double> message(msgs.size() * s, 1.0 / s);
  std::vector<double> next(message.size());

  BeliefResult result;
  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    double max_delta = 0.0;
    for (uint32_t mi = 0; mi < msgs.size(); ++mi) {
      VertexId from = msgs[mi].from;
      // Product of unary and all incoming messages to `from` except the
      // reverse of this message.
      std::vector<double> prod(s);
      for (uint32_t st = 0; st < s; ++st) {
        prod[st] = mrf.unary[static_cast<size_t>(from) * s + st];
      }
      for (uint32_t in : incoming[from]) {
        if (in == msgs[mi].reverse) continue;
        for (uint32_t st = 0; st < s; ++st) {
          prod[st] *= message[static_cast<size_t>(in) * s + st];
        }
      }
      // Marginalize through the pairwise potential.
      double norm = 0.0;
      for (uint32_t to_state = 0; to_state < s; ++to_state) {
        double sum = 0.0;
        for (uint32_t from_state = 0; from_state < s; ++from_state) {
          sum += prod[from_state] *
                 mrf.pairwise[static_cast<size_t>(from_state) * s + to_state];
        }
        next[static_cast<size_t>(mi) * s + to_state] = sum;
        norm += sum;
      }
      if (norm <= 0) norm = 1.0;
      for (uint32_t st = 0; st < s; ++st) {
        size_t at = static_cast<size_t>(mi) * s + st;
        double nv = next[at] / norm;
        if (options.damping > 0) {
          nv = options.damping * message[at] + (1.0 - options.damping) * nv;
        }
        max_delta = std::max(max_delta, std::abs(nv - message[at]));
        next[at] = nv;
      }
    }
    message.swap(next);
    result.iterations = iter + 1;
    if (max_delta < options.tolerance) {
      result.converged = true;
      break;
    }
  }

  // Beliefs = unary * product of incoming, normalized.
  result.beliefs.assign(static_cast<size_t>(n) * s, 0.0);
  for (VertexId v = 0; v < n; ++v) {
    double norm = 0.0;
    for (uint32_t st = 0; st < s; ++st) {
      double b = mrf.unary[static_cast<size_t>(v) * s + st];
      for (uint32_t in : incoming[v]) {
        b *= message[static_cast<size_t>(in) * s + st];
      }
      result.beliefs[static_cast<size_t>(v) * s + st] = b;
      norm += b;
    }
    if (norm <= 0) norm = 1.0;
    for (uint32_t st = 0; st < s; ++st) {
      result.beliefs[static_cast<size_t>(v) * s + st] /= norm;
    }
  }
  return result;
}

PairwiseMrf MakeIsingMrf(VertexId num_vertices, const std::vector<double>& bias,
                         double coupling) {
  PairwiseMrf mrf;
  mrf.num_states = 2;
  mrf.unary.resize(static_cast<size_t>(num_vertices) * 2);
  for (VertexId v = 0; v < num_vertices; ++v) {
    double b = v < bias.size() ? bias[v] : 0.0;
    mrf.unary[static_cast<size_t>(v) * 2] = std::exp(-b);
    mrf.unary[static_cast<size_t>(v) * 2 + 1] = std::exp(b);
  }
  mrf.pairwise = {coupling, 1.0, 1.0, coupling};
  return mrf;
}

}  // namespace ubigraph::ml
