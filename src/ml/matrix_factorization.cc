#include "ml/matrix_factorization.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace ubigraph::ml {

FactorModel::FactorModel(uint32_t num_users, uint32_t num_items, uint32_t rank,
                         uint64_t seed)
    : num_users_(num_users), num_items_(num_items), rank_(rank) {
  Rng rng(seed);
  user_factors_.resize(static_cast<size_t>(num_users) * rank);
  item_factors_.resize(static_cast<size_t>(num_items) * rank);
  double scale = 1.0 / std::sqrt(static_cast<double>(rank));
  for (double& f : user_factors_) f = rng.NextGaussian() * scale;
  for (double& f : item_factors_) f = rng.NextGaussian() * scale;
}

double FactorModel::Predict(uint32_t user, uint32_t item) const {
  const double* u = user_factors_.data() + static_cast<size_t>(user) * rank_;
  const double* i = item_factors_.data() + static_cast<size_t>(item) * rank_;
  double dot = 0.0;
  for (uint32_t f = 0; f < rank_; ++f) dot += u[f] * i[f];
  return dot;
}

double FactorModel::Rmse(const std::vector<Rating>& ratings) const {
  if (ratings.empty()) return 0.0;
  double se = 0.0;
  for (const Rating& r : ratings) {
    double err = r.value - Predict(r.user, r.item);
    se += err * err;
  }
  return std::sqrt(se / static_cast<double>(ratings.size()));
}

std::vector<uint32_t> FactorModel::RecommendItems(
    uint32_t user, size_t k, const std::vector<uint32_t>& seen) const {
  std::vector<std::pair<double, uint32_t>> scored;
  scored.reserve(num_items_);
  for (uint32_t item = 0; item < num_items_; ++item) {
    if (std::find(seen.begin(), seen.end(), item) != seen.end()) continue;
    scored.emplace_back(Predict(user, item), item);
  }
  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<ptrdiff_t>(k),
                    scored.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<uint32_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(scored[i].second);
  return out;
}

namespace {

Status ValidateRatings(const FactorModel& model, const std::vector<Rating>& ratings) {
  if (ratings.empty()) return Status::Invalid("ratings must be non-empty");
  for (const Rating& r : ratings) {
    if (r.user >= model.num_users() || r.item >= model.num_items()) {
      return Status::OutOfRange("rating index out of range");
    }
  }
  return Status::OK();
}

/// Solves A x = b for symmetric positive-definite A (in-place Cholesky).
/// A is rank x rank row-major; returns false if not SPD.
bool SolveSpd(std::vector<double>* a_data, std::vector<double>* b, uint32_t n) {
  std::vector<double>& a = *a_data;
  // Cholesky: A = L L^T.
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j <= i; ++j) {
      double sum = a[i * n + j];
      for (uint32_t k = 0; k < j; ++k) sum -= a[i * n + k] * a[j * n + k];
      if (i == j) {
        if (sum <= 0.0) return false;
        a[i * n + j] = std::sqrt(sum);
      } else {
        a[i * n + j] = sum / a[j * n + j];
      }
    }
  }
  // Forward: L y = b.
  for (uint32_t i = 0; i < n; ++i) {
    double sum = (*b)[i];
    for (uint32_t k = 0; k < i; ++k) sum -= a[i * n + k] * (*b)[k];
    (*b)[i] = sum / a[i * n + i];
  }
  // Backward: L^T x = y.
  for (int32_t i = static_cast<int32_t>(n) - 1; i >= 0; --i) {
    double sum = (*b)[i];
    for (uint32_t k = i + 1; k < n; ++k) sum -= a[k * n + i] * (*b)[k];
    (*b)[i] = sum / a[i * n + i];
  }
  return true;
}

}  // namespace

Result<TrainStats> TrainSgd(FactorModel* model, const std::vector<Rating>& ratings,
                            const FactorizationOptions& options) {
  UG_RETURN_NOT_OK(ValidateRatings(*model, ratings));
  const uint32_t rank = model->rank();
  Rng rng(options.seed);
  std::vector<size_t> order(ratings.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  TrainStats stats;
  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t idx : order) {
      const Rating& r = ratings[idx];
      double* u = model->user_factors().data() + static_cast<size_t>(r.user) * rank;
      double* v = model->item_factors().data() + static_cast<size_t>(r.item) * rank;
      double err = r.value - model->Predict(r.user, r.item);
      for (uint32_t f = 0; f < rank; ++f) {
        double uf = u[f], vf = v[f];
        u[f] += options.learning_rate * (err * vf - options.regularization * uf);
        v[f] += options.learning_rate * (err * uf - options.regularization * vf);
      }
    }
    stats.epoch_rmse.push_back(model->Rmse(ratings));
  }
  return stats;
}

Result<TrainStats> TrainAls(FactorModel* model, const std::vector<Rating>& ratings,
                            const FactorizationOptions& options) {
  UG_RETURN_NOT_OK(ValidateRatings(*model, ratings));
  const uint32_t rank = model->rank();

  // Per-user and per-item rating lists.
  std::vector<std::vector<uint32_t>> by_user(model->num_users());
  std::vector<std::vector<uint32_t>> by_item(model->num_items());
  for (uint32_t i = 0; i < ratings.size(); ++i) {
    by_user[ratings[i].user].push_back(i);
    by_item[ratings[i].item].push_back(i);
  }

  auto solve_side = [&](bool users) {
    const auto& lists = users ? by_user : by_item;
    std::vector<double>& mine =
        users ? model->user_factors() : model->item_factors();
    const std::vector<double>& theirs =
        users ? model->item_factors() : model->user_factors();
    std::vector<double> a(static_cast<size_t>(rank) * rank);
    std::vector<double> b(rank);
    for (uint32_t row = 0; row < lists.size(); ++row) {
      if (lists[row].empty()) continue;
      std::fill(a.begin(), a.end(), 0.0);
      std::fill(b.begin(), b.end(), 0.0);
      for (uint32_t ri : lists[row]) {
        const Rating& r = ratings[ri];
        uint32_t other = users ? r.item : r.user;
        const double* q = theirs.data() + static_cast<size_t>(other) * rank;
        for (uint32_t f = 0; f < rank; ++f) {
          b[f] += r.value * q[f];
          for (uint32_t h = 0; h <= f; ++h) a[f * rank + h] += q[f] * q[h];
        }
      }
      // Symmetrize + ridge term (lambda * #ratings, Zhou et al. weighting).
      double lam = options.regularization * static_cast<double>(lists[row].size());
      for (uint32_t f = 0; f < rank; ++f) {
        for (uint32_t h = f + 1; h < rank; ++h) a[f * rank + h] = a[h * rank + f];
        a[f * rank + f] += lam;
      }
      if (SolveSpd(&a, &b, rank)) {
        double* p = mine.data() + static_cast<size_t>(row) * rank;
        for (uint32_t f = 0; f < rank; ++f) p[f] = b[f];
      }
    }
  };

  TrainStats stats;
  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    solve_side(/*users=*/true);
    solve_side(/*users=*/false);
    stats.epoch_rmse.push_back(model->Rmse(ratings));
  }
  return stats;
}

}  // namespace ubigraph::ml
