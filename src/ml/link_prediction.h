// Link prediction (Table 10b: 25/89 participants): classic neighborhood-based
// scores plus truncated Katz, with a top-k recommender over non-edges.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::ml {

enum class LinkScore {
  kCommonNeighbors,
  kJaccard,
  kAdamicAdar,
  kPreferentialAttachment,
  kResourceAllocation,
};

/// Scores a candidate pair under the undirected view of g.
double ScoreLink(const CsrGraph& g, VertexId u, VertexId v, LinkScore score);

/// Truncated Katz index: sum over path lengths l=1..max_length of
/// beta^l * (#paths of length l between u and v). Exact via repeated
/// frontier expansion (suitable for small/medium graphs).
double KatzIndex(const CsrGraph& g, VertexId u, VertexId v, double beta = 0.05,
                 uint32_t max_length = 4);

struct PredictedLink {
  VertexId u;
  VertexId v;
  double score;
};

/// Top-k non-adjacent pairs by the given score, restricted to pairs within
/// 2 hops (where neighborhood scores are nonzero). Ties broken by (u, v).
std::vector<PredictedLink> TopKPredictedLinks(const CsrGraph& g, size_t k,
                                              LinkScore score);

/// Evaluation: AUC of a score on a held-out edge set vs. random non-edges,
/// the standard link-prediction protocol. `held_out` edges must be absent
/// from g. Returns value in [0, 1]; 0.5 = random.
Result<double> LinkPredictionAuc(const CsrGraph& g,
                                 const std::vector<std::pair<VertexId, VertexId>>& held_out,
                                 LinkScore score, uint32_t num_negative_samples,
                                 uint64_t seed);

}  // namespace ubigraph::ml
