// Label propagation — used two ways in the survey's workloads:
// (i) unsupervised clustering (Table 10a "Clustering", the most popular ML
//     computation), via Raghavan et al.'s community label propagation;
// (ii) semi-supervised classification (Table 10a "Classification"), where a
//     few labeled seeds propagate to the rest of the graph.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::ml {

struct LabelPropagationOptions {
  uint32_t max_iterations = 100;
  uint64_t seed = 42;
};

struct LabelPropagationResult {
  std::vector<uint32_t> label;  // dense labels
  uint32_t num_labels = 0;
  uint32_t iterations = 0;
  bool converged = false;
};

/// Unsupervised community label propagation over the undirected view: each
/// vertex repeatedly adopts the plurality label of its neighbors (ties broken
/// randomly) until stable.
LabelPropagationResult PropagateLabels(const CsrGraph& g,
                                       LabelPropagationOptions options = {});

/// Semi-supervised node classification: `seeds` maps vertex -> class
/// (UINT32_MAX = unlabeled). Unlabeled vertices adopt the plurality class of
/// labeled neighbors each round; seed labels are clamped. Vertices in
/// components without any seed stay UINT32_MAX.
Result<std::vector<uint32_t>> ClassifyBySeeds(const CsrGraph& g,
                                              const std::vector<uint32_t>& seeds,
                                              LabelPropagationOptions options = {});

}  // namespace ubigraph::ml
