#include "ml/collaborative_filtering.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace ubigraph::ml {

Result<ItemItemCf> ItemItemCf::Build(uint32_t num_users, uint32_t num_items,
                                     const std::vector<Rating>& ratings) {
  if (ratings.empty()) return Status::Invalid("ratings must be non-empty");
  ItemItemCf cf;
  cf.user_ratings_.resize(num_users);
  cf.item_ratings_.resize(num_items);
  cf.item_norm_.assign(num_items, 0.0);
  cf.item_mean_.assign(num_items, 0.0);
  double total = 0.0;
  for (const Rating& r : ratings) {
    if (r.user >= num_users || r.item >= num_items) {
      return Status::OutOfRange("rating index out of range");
    }
    cf.user_ratings_[r.user].emplace_back(r.item, r.value);
    cf.item_ratings_[r.item].emplace_back(r.user, r.value);
    cf.item_norm_[r.item] += r.value * r.value;
    cf.item_mean_[r.item] += r.value;
    total += r.value;
  }
  cf.global_mean_ = total / static_cast<double>(ratings.size());
  for (uint32_t i = 0; i < num_items; ++i) {
    if (!cf.item_ratings_[i].empty()) {
      cf.item_mean_[i] /= static_cast<double>(cf.item_ratings_[i].size());
    } else {
      cf.item_mean_[i] = cf.global_mean_;
    }
    cf.item_norm_[i] = std::sqrt(cf.item_norm_[i]);
    std::sort(cf.item_ratings_[i].begin(), cf.item_ratings_[i].end());
  }
  for (auto& ur : cf.user_ratings_) std::sort(ur.begin(), ur.end());
  return cf;
}

double ItemItemCf::Similarity(uint32_t item_a, uint32_t item_b) const {
  if (item_a >= item_ratings_.size() || item_b >= item_ratings_.size()) return 0.0;
  if (item_norm_[item_a] == 0.0 || item_norm_[item_b] == 0.0) return 0.0;
  const auto& a = item_ratings_[item_a];
  const auto& b = item_ratings_[item_b];
  double dot = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first < b[j].first) ++i;
    else if (a[i].first > b[j].first) ++j;
    else {
      dot += a[i].second * b[j].second;
      ++i;
      ++j;
    }
  }
  return dot / (item_norm_[item_a] * item_norm_[item_b]);
}

double ItemItemCf::Predict(uint32_t user, uint32_t item) const {
  if (user >= user_ratings_.size() || item >= item_ratings_.size()) {
    return global_mean_;
  }
  double num = 0.0, den = 0.0;
  for (const auto& [rated_item, value] : user_ratings_[user]) {
    if (rated_item == item) return value;  // already rated
    double sim = Similarity(item, rated_item);
    if (sim > 0) {
      num += sim * value;
      den += sim;
    }
  }
  if (den > 0) return num / den;
  return item_mean_[item];
}

std::vector<uint32_t> ItemItemCf::Recommend(uint32_t user, size_t k) const {
  std::vector<uint32_t> out;
  if (user >= user_ratings_.size()) return out;
  const auto& rated = user_ratings_[user];
  std::unordered_map<uint32_t, double> scores;
  for (const auto& [item, value] : rated) {
    // Score items co-rated with the user's items.
    for (uint32_t other = 0; other < item_ratings_.size(); ++other) {
      bool seen = std::binary_search(
          rated.begin(), rated.end(), std::make_pair(other, 0.0),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      if (seen) continue;
      double sim = Similarity(item, other);
      if (sim > 0) scores[other] += sim * value;
    }
  }
  std::vector<std::pair<double, uint32_t>> ranked;
  ranked.reserve(scores.size());
  for (const auto& [item, score] : scores) ranked.emplace_back(score, item);
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (size_t i = 0; i < std::min(k, ranked.size()); ++i) {
    out.push_back(ranked[i].second);
  }
  return out;
}

}  // namespace ubigraph::ml
