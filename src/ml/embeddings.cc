#include "ml/embeddings.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace ubigraph::ml {

namespace {

std::vector<std::vector<VertexId>> UndirectedAdjacency(const CsrGraph& g) {
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      adj[u].push_back(v);
      if (g.directed()) adj[v].push_back(u);
    }
  }
  return adj;
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

std::vector<VertexId> RandomWalk(const CsrGraph& g, VertexId start,
                                 uint32_t length, Rng* rng) {
  std::vector<VertexId> walk;
  if (start >= g.num_vertices()) return walk;
  auto adj = UndirectedAdjacency(g);
  walk.reserve(length);
  VertexId cur = start;
  walk.push_back(cur);
  for (uint32_t step = 1; step < length; ++step) {
    const auto& nbrs = adj[cur];
    if (nbrs.empty()) break;
    cur = nbrs[rng->NextBounded(nbrs.size())];
    walk.push_back(cur);
  }
  return walk;
}

Result<VertexEmbeddings> VertexEmbeddings::Train(const CsrGraph& g,
                                                 EmbeddingOptions options) {
  const VertexId n = g.num_vertices();
  if (n == 0) return Status::Invalid("cannot embed an empty graph");
  if (options.dimensions == 0 || options.walk_length < 2 || options.window == 0) {
    return Status::Invalid("degenerate embedding options");
  }

  auto adj = UndirectedAdjacency(g);
  Rng rng(options.seed);

  VertexEmbeddings emb;
  emb.num_vertices_ = n;
  emb.dimensions_ = options.dimensions;
  const uint32_t d = options.dimensions;
  emb.data_.resize(static_cast<size_t>(n) * d);
  std::vector<double> context(static_cast<size_t>(n) * d, 0.0);
  double scale = 0.5 / d;
  for (double& x : emb.data_) x = (rng.NextDouble() - 0.5) * scale;

  // Negative sampling proportional to degree^(3/4) via a sampling table.
  std::vector<double> neg_weight(n);
  for (VertexId v = 0; v < n; ++v) {
    neg_weight[v] = std::pow(static_cast<double>(adj[v].size()) + 1.0, 0.75);
  }

  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  std::vector<double> grad(d);

  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (VertexId start : order) {
      if (adj[start].empty()) continue;
      for (uint32_t w = 0; w < options.walks_per_vertex; ++w) {
        // Inline walk (avoids rebuilding adjacency per call).
        std::vector<VertexId> walk{start};
        VertexId cur = start;
        for (uint32_t step = 1; step < options.walk_length; ++step) {
          const auto& nbrs = adj[cur];
          if (nbrs.empty()) break;
          cur = nbrs[rng.NextBounded(nbrs.size())];
          walk.push_back(cur);
        }
        // Skip-gram with negative sampling over the walk.
        for (size_t i = 0; i < walk.size(); ++i) {
          size_t lo = i >= options.window ? i - options.window : 0;
          size_t hi = std::min(walk.size() - 1, i + options.window);
          double* center = emb.data_.data() + static_cast<size_t>(walk[i]) * d;
          for (size_t j = lo; j <= hi; ++j) {
            if (j == i) continue;
            std::fill(grad.begin(), grad.end(), 0.0);
            // Positive pair.
            {
              double* ctx = context.data() + static_cast<size_t>(walk[j]) * d;
              double dot = 0;
              for (uint32_t f = 0; f < d; ++f) dot += center[f] * ctx[f];
              double err = (1.0 - Sigmoid(dot)) * options.learning_rate;
              for (uint32_t f = 0; f < d; ++f) {
                grad[f] += err * ctx[f];
                ctx[f] += err * center[f];
              }
            }
            // Negative samples.
            for (uint32_t s = 0; s < options.negative_samples; ++s) {
              VertexId neg = static_cast<VertexId>(rng.SampleWeighted(neg_weight));
              if (neg >= n || neg == walk[j]) continue;
              double* ctx = context.data() + static_cast<size_t>(neg) * d;
              double dot = 0;
              for (uint32_t f = 0; f < d; ++f) dot += center[f] * ctx[f];
              double err = -Sigmoid(dot) * options.learning_rate;
              for (uint32_t f = 0; f < d; ++f) {
                grad[f] += err * ctx[f];
                ctx[f] += err * center[f];
              }
            }
            for (uint32_t f = 0; f < d; ++f) center[f] += grad[f];
          }
        }
      }
    }
  }
  return emb;
}

double VertexEmbeddings::Similarity(VertexId a, VertexId b) const {
  auto va = Vector(a);
  auto vb = Vector(b);
  double dot = 0, na = 0, nb = 0;
  for (uint32_t f = 0; f < dimensions_; ++f) {
    dot += va[f] * vb[f];
    na += va[f] * va[f];
    nb += vb[f] * vb[f];
  }
  if (na == 0 || nb == 0) return 0.0;
  return dot / std::sqrt(na * nb);
}

std::vector<VertexId> VertexEmbeddings::MostSimilar(VertexId v, size_t k) const {
  std::vector<std::pair<double, VertexId>> scored;
  scored.reserve(num_vertices_);
  for (VertexId u = 0; u < num_vertices_; ++u) {
    if (u != v) scored.emplace_back(Similarity(v, u), u);
  }
  k = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<ptrdiff_t>(k),
                    scored.end(), [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<VertexId> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) out.push_back(scored[i].second);
  return out;
}

std::vector<std::vector<double>> VertexEmbeddings::ToRows() const {
  std::vector<std::vector<double>> rows(num_vertices_);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    auto vec = Vector(v);
    rows[v].assign(vec.begin(), vec.end());
  }
  return rows;
}

}  // namespace ubigraph::ml
