// Neighborhood collaborative filtering (Table 10a: 9/89 participants) and the
// recommendation problem (Table 10b: 26/89): item-item cosine similarity over
// the user-item bipartite graph.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "ml/matrix_factorization.h"  // Rating

namespace ubigraph::ml {

/// Item-item collaborative filter built from a rating list.
class ItemItemCf {
 public:
  /// Builds the (sparse) item-item cosine similarity structure.
  static Result<ItemItemCf> Build(uint32_t num_users, uint32_t num_items,
                                  const std::vector<Rating>& ratings);

  /// Cosine similarity of two items' rating vectors (0 if either unseen).
  double Similarity(uint32_t item_a, uint32_t item_b) const;

  /// Predicts user's rating of an item as the similarity-weighted average of
  /// the user's rated items. Falls back to the item mean, then global mean.
  double Predict(uint32_t user, uint32_t item) const;

  /// Top-k unseen items ranked by the sum of similarities to the user's
  /// rated items weighted by those ratings.
  std::vector<uint32_t> Recommend(uint32_t user, size_t k) const;

  uint32_t num_users() const { return static_cast<uint32_t>(user_ratings_.size()); }
  uint32_t num_items() const { return static_cast<uint32_t>(item_norm_.size()); }

 private:
  ItemItemCf() = default;

  // Ratings grouped per user (item, value) and per item (user, value), sorted.
  std::vector<std::vector<std::pair<uint32_t, double>>> user_ratings_;
  std::vector<std::vector<std::pair<uint32_t, double>>> item_ratings_;
  std::vector<double> item_norm_;  // L2 norm of each item's rating vector
  std::vector<double> item_mean_;
  double global_mean_ = 0.0;
};

}  // namespace ubigraph::ml
