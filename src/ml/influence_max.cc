#include "ml/influence_max.h"

#include <algorithm>
#include <queue>

namespace ubigraph::ml {

namespace {

/// One IC cascade; returns number of activated vertices.
uint32_t SimulateCascade(const CsrGraph& g, const std::vector<VertexId>& seeds,
                         double p, Rng* rng, std::vector<uint32_t>* visited_stamp,
                         uint32_t stamp) {
  std::vector<VertexId> frontier;
  uint32_t activated = 0;
  for (VertexId s : seeds) {
    if ((*visited_stamp)[s] != stamp) {
      (*visited_stamp)[s] = stamp;
      frontier.push_back(s);
      ++activated;
    }
  }
  while (!frontier.empty()) {
    std::vector<VertexId> next;
    for (VertexId u : frontier) {
      for (VertexId v : g.OutNeighbors(u)) {
        if ((*visited_stamp)[v] != stamp && rng->NextBool(p)) {
          (*visited_stamp)[v] = stamp;
          next.push_back(v);
          ++activated;
        }
      }
    }
    frontier = std::move(next);
  }
  return activated;
}

Status CheckOptions(const CsrGraph& g, uint32_t k, const InfluenceOptions& o) {
  if (k == 0) return Status::Invalid("k must be positive");
  if (k > g.num_vertices()) return Status::Invalid("k exceeds vertex count");
  if (o.probability <= 0.0 || o.probability > 1.0) {
    return Status::Invalid("probability must be in (0, 1]");
  }
  if (o.num_simulations == 0) {
    return Status::Invalid("num_simulations must be positive");
  }
  return Status::OK();
}

}  // namespace

double EstimateSpread(const CsrGraph& g, const std::vector<VertexId>& seeds,
                      const InfluenceOptions& options) {
  Rng rng(options.seed);
  std::vector<uint32_t> stamp_of(g.num_vertices(), 0);
  double total = 0.0;
  for (uint32_t sim = 1; sim <= options.num_simulations; ++sim) {
    total += SimulateCascade(g, seeds, options.probability, &rng, &stamp_of, sim);
  }
  return total / options.num_simulations;
}

Result<InfluenceResult> GreedyInfluenceMaximization(const CsrGraph& g, uint32_t k,
                                                    InfluenceOptions options) {
  UG_RETURN_NOT_OK(CheckOptions(g, k, options));
  InfluenceResult r;
  double current = 0.0;
  for (uint32_t round = 0; round < k; ++round) {
    double best_gain = -1.0;
    VertexId best = kInvalidVertex;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (std::find(r.seeds.begin(), r.seeds.end(), v) != r.seeds.end()) continue;
      std::vector<VertexId> trial = r.seeds;
      trial.push_back(v);
      InfluenceOptions o = options;
      o.seed = options.seed + round;  // common random numbers within a round
      double spread = EstimateSpread(g, trial, o);
      ++r.spread_evaluations;
      double gain = spread - current;
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    r.seeds.push_back(best);
    current += best_gain;
  }
  r.expected_spread = EstimateSpread(g, r.seeds, options);
  return r;
}

Result<InfluenceResult> CelfInfluenceMaximization(const CsrGraph& g, uint32_t k,
                                                  InfluenceOptions options) {
  UG_RETURN_NOT_OK(CheckOptions(g, k, options));
  InfluenceResult r;

  struct Entry {
    double gain;
    VertexId v;
    uint32_t round_computed;
    bool operator<(const Entry& o) const { return gain < o.gain; }
  };
  std::priority_queue<Entry> heap;

  // Initial pass: marginal gain of each singleton.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    InfluenceOptions o = options;
    double spread = EstimateSpread(g, {v}, o);
    ++r.spread_evaluations;
    heap.push({spread, v, 0});
  }

  double current = 0.0;
  uint32_t round = 0;
  while (r.seeds.size() < k && !heap.empty()) {
    Entry top = heap.top();
    heap.pop();
    if (top.round_computed == round) {
      // Fresh for this round: accept (submodularity guarantees optimality of
      // the lazy evaluation).
      r.seeds.push_back(top.v);
      current += top.gain;
      ++round;
    } else {
      // Stale: recompute marginal gain with the current seed set.
      std::vector<VertexId> trial = r.seeds;
      trial.push_back(top.v);
      InfluenceOptions o = options;
      o.seed = options.seed + round;
      double spread = EstimateSpread(g, trial, o);
      ++r.spread_evaluations;
      heap.push({spread - current, top.v, round});
    }
  }
  r.expected_spread = EstimateSpread(g, r.seeds, options);
  return r;
}

std::vector<VertexId> TopDegreeSeeds(const CsrGraph& g, uint32_t k) {
  std::vector<VertexId> verts(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) verts[v] = v;
  k = std::min<uint32_t>(k, g.num_vertices());
  std::partial_sort(verts.begin(), verts.begin() + k, verts.end(),
                    [&](VertexId a, VertexId b) {
                      if (g.OutDegree(a) != g.OutDegree(b)) {
                        return g.OutDegree(a) > g.OutDegree(b);
                      }
                      return a < b;
                    });
  verts.resize(k);
  return verts;
}

}  // namespace ubigraph::ml
