// Community detection (Table 10b: the most common ML-solved problem, 31/89):
// Louvain modularity optimization with multi-level aggregation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/csr_graph.h"

namespace ubigraph::ml {

struct LouvainOptions {
  uint32_t max_levels = 10;
  uint32_t max_sweeps_per_level = 20;
  /// Minimum modularity gain per level to continue.
  double min_gain = 1e-6;
  /// Resolution parameter gamma (1.0 = classic modularity).
  double resolution = 1.0;
  uint64_t seed = 42;
};

struct CommunityResult {
  std::vector<uint32_t> community;  // dense labels per vertex
  uint32_t num_communities = 0;
  double modularity = 0.0;
  uint32_t levels = 0;
};

/// Runs Louvain on the undirected weighted view of g (direction ignored,
/// weights summed over parallel edges).
CommunityResult Louvain(const CsrGraph& g, LouvainOptions options = {});

/// Newman modularity of an assignment over the undirected weighted view.
double Modularity(const CsrGraph& g, const std::vector<uint32_t>& community,
                  double resolution = 1.0);

}  // namespace ubigraph::ml
