// Graphical model inference (Table 10a: 10/89 participants): loopy belief
// propagation for pairwise Markov random fields defined over a graph.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::ml {

/// A pairwise MRF over the undirected view of a graph. All vertices share a
/// state count; each vertex has a unary potential vector, each edge a shared
/// symmetric pairwise potential matrix (state x state, row-major).
struct PairwiseMrf {
  uint32_t num_states = 2;
  /// n x num_states, row-major. Non-negative.
  std::vector<double> unary;
  /// num_states x num_states shared compatibility, row-major. Non-negative.
  std::vector<double> pairwise;
};

struct BeliefPropagationOptions {
  uint32_t max_iterations = 50;
  double tolerance = 1e-6;  // max-abs message change
  double damping = 0.0;     // 0 = none; 0.5 = average with previous messages
};

struct BeliefResult {
  /// n x num_states marginal beliefs, row-major, normalized per vertex.
  std::vector<double> beliefs;
  uint32_t iterations = 0;
  bool converged = false;

  /// argmax state per vertex.
  std::vector<uint32_t> MapStates(uint32_t num_states) const;
};

/// Runs sum-product loopy BP. Exact on trees; approximate on loopy graphs.
Result<BeliefResult> LoopyBeliefPropagation(const CsrGraph& g, const PairwiseMrf& mrf,
                                            BeliefPropagationOptions options = {});

/// Convenience: an attractive Ising-style MRF (2 states, coupling > 1 favors
/// agreement) with per-vertex field from `bias` in [-1, 1].
PairwiseMrf MakeIsingMrf(VertexId num_vertices, const std::vector<double>& bias,
                         double coupling);

}  // namespace ubigraph::ml
