// Influence maximization (Table 10b: 14/89 participants; the survey defines
// it as "finding influential vertices"): independent-cascade Monte Carlo
// spread estimation with greedy and CELF (lazy greedy) seed selection, plus
// degree/PageRank heuristics as baselines.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::ml {

struct InfluenceOptions {
  /// Per-edge activation probability of the independent cascade model.
  double probability = 0.1;
  /// Monte Carlo simulations per spread estimate.
  uint32_t num_simulations = 200;
  uint64_t seed = 42;
};

/// Estimates expected IC spread of a seed set by Monte Carlo simulation.
double EstimateSpread(const CsrGraph& g, const std::vector<VertexId>& seeds,
                      const InfluenceOptions& options);

struct InfluenceResult {
  std::vector<VertexId> seeds;
  double expected_spread = 0.0;
  uint64_t spread_evaluations = 0;  // how many MC estimates were computed
};

/// Kempe-Kleinberg-Tardos greedy: k rounds, each adding the vertex with the
/// best marginal spread gain. (1 - 1/e)-approximate in expectation.
Result<InfluenceResult> GreedyInfluenceMaximization(const CsrGraph& g, uint32_t k,
                                                    InfluenceOptions options = {});

/// CELF: lazy-forward greedy exploiting submodularity; identical output
/// quality to greedy with far fewer spread evaluations.
Result<InfluenceResult> CelfInfluenceMaximization(const CsrGraph& g, uint32_t k,
                                                  InfluenceOptions options = {});

/// Baseline: top-k out-degree vertices.
std::vector<VertexId> TopDegreeSeeds(const CsrGraph& g, uint32_t k);

}  // namespace ubigraph::ml
