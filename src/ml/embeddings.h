// DeepWalk-style vertex embeddings: truncated random walks + skip-gram with
// negative sampling. The representation-learning path for the survey's
// clustering/classification workloads (Table 10a) — vertices embed into R^d
// so generic ML (k-means, logistic regression) applies to graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "graph/csr_graph.h"

namespace ubigraph::ml {

struct EmbeddingOptions {
  uint32_t dimensions = 32;
  uint32_t walks_per_vertex = 10;
  uint32_t walk_length = 40;
  uint32_t window = 5;            // skip-gram context radius
  uint32_t negative_samples = 5;  // per positive pair
  uint32_t epochs = 2;
  double learning_rate = 0.025;
  uint64_t seed = 42;
};

class VertexEmbeddings {
 public:
  /// Trains embeddings over the undirected view of g. Fails on empty graphs
  /// or degenerate options.
  static Result<VertexEmbeddings> Train(const CsrGraph& g,
                                        EmbeddingOptions options = {});

  uint32_t dimensions() const { return dimensions_; }
  VertexId num_vertices() const { return num_vertices_; }

  /// The embedding of a vertex (dimensions() doubles).
  std::span<const double> Vector(VertexId v) const {
    return {data_.data() + static_cast<size_t>(v) * dimensions_, dimensions_};
  }

  /// Cosine similarity between two vertex embeddings.
  double Similarity(VertexId a, VertexId b) const;

  /// The k most similar vertices to v (excluding v), descending.
  std::vector<VertexId> MostSimilar(VertexId v, size_t k) const;

  /// Copies embeddings into row vectors (for KMeans / regression).
  std::vector<std::vector<double>> ToRows() const;

 private:
  VertexId num_vertices_ = 0;
  uint32_t dimensions_ = 0;
  std::vector<double> data_;  // num_vertices x dimensions
};

/// Generates one uniform random walk of `length` vertices starting at
/// `start` over the undirected view (stops early at sinks). Exposed for
/// tests and for callers composing their own corpus.
std::vector<VertexId> RandomWalk(const CsrGraph& g, VertexId start,
                                 uint32_t length, Rng* rng);

}  // namespace ubigraph::ml
