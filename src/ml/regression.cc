#include "ml/regression.h"

#include <cmath>

#include "algorithms/kcore.h"
#include "algorithms/pagerank.h"
#include "algorithms/triangle.h"

namespace ubigraph::ml {

namespace {

Status ValidateDesign(const std::vector<std::vector<double>>& x, size_t y_size) {
  if (x.empty()) return Status::Invalid("empty design matrix");
  if (x.size() != y_size) return Status::Invalid("X/y size mismatch");
  size_t d = x[0].size();
  if (d == 0) return Status::Invalid("zero-dimensional features");
  for (const auto& row : x) {
    if (row.size() != d) return Status::Invalid("ragged design matrix");
  }
  return Status::OK();
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

Result<LinearRegression> LinearRegression::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<double>& y,
    RegressionOptions options) {
  UG_RETURN_NOT_OK(ValidateDesign(x, y.size()));
  const size_t n = x.size();
  const size_t d = x[0].size();
  LinearRegression model;
  model.w_.assign(d, 0.0);
  std::vector<double> grad(d);
  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double err = Dot(model.w_, x[i]) + model.b_ - y[i];
      for (size_t j = 0; j < d; ++j) grad[j] += err * x[i][j];
      grad_b += err;
    }
    double inv_n = 1.0 / static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      model.w_[j] -=
          options.learning_rate * (grad[j] * inv_n + options.l2 * model.w_[j]);
    }
    model.b_ -= options.learning_rate * grad_b * inv_n;
  }
  return model;
}

double LinearRegression::Predict(const std::vector<double>& features) const {
  return Dot(w_, features) + b_;
}

double LinearRegression::TrainMse(const std::vector<std::vector<double>>& x,
                                  const std::vector<double>& y) const {
  double se = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double err = Predict(x[i]) - y[i];
    se += err * err;
  }
  return x.empty() ? 0.0 : se / static_cast<double>(x.size());
}

Result<LogisticRegression> LogisticRegression::Fit(
    const std::vector<std::vector<double>>& x, const std::vector<int>& y,
    RegressionOptions options) {
  UG_RETURN_NOT_OK(ValidateDesign(x, y.size()));
  for (int label : y) {
    if (label != 0 && label != 1) return Status::Invalid("labels must be 0/1");
  }
  const size_t n = x.size();
  const size_t d = x[0].size();
  LogisticRegression model;
  model.w_.assign(d, 0.0);
  std::vector<double> grad(d);
  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z = Dot(model.w_, x[i]) + model.b_;
      double p = 1.0 / (1.0 + std::exp(-z));
      double err = p - y[i];
      for (size_t j = 0; j < d; ++j) grad[j] += err * x[i][j];
      grad_b += err;
    }
    double inv_n = 1.0 / static_cast<double>(n);
    for (size_t j = 0; j < d; ++j) {
      model.w_[j] -=
          options.learning_rate * (grad[j] * inv_n + options.l2 * model.w_[j]);
    }
    model.b_ -= options.learning_rate * grad_b * inv_n;
  }
  return model;
}

double LogisticRegression::PredictProbability(
    const std::vector<double>& features) const {
  double z = Dot(w_, features) + b_;
  return 1.0 / (1.0 + std::exp(-z));
}

double LogisticRegression::Accuracy(const std::vector<std::vector<double>>& x,
                                    const std::vector<int>& y) const {
  if (x.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (PredictClass(x[i]) == y[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(x.size());
}

std::vector<std::vector<double>> ExtractVertexFeatures(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  std::vector<double> clustering = algo::LocalClusteringCoefficients(g);
  std::vector<uint32_t> core = algo::CoreDecomposition(g);
  std::vector<double> pagerank(n, 1.0 / std::max<VertexId>(n, 1));
  if (!g.directed() || g.has_in_edges()) {
    auto pr = algo::PageRank(g);
    if (pr.ok()) pagerank = pr.ValueUnsafe().scores;
  }
  std::vector<std::vector<double>> features(n);
  for (VertexId v = 0; v < n; ++v) {
    double in_deg = g.directed() && g.has_in_edges()
                        ? static_cast<double>(g.InDegree(v))
                        : static_cast<double>(g.OutDegree(v));
    features[v] = {static_cast<double>(g.OutDegree(v)), in_deg, clustering[v],
                   static_cast<double>(core[v]), pagerank[v]};
  }
  return features;
}

}  // namespace ubigraph::ml
