#include "ml/label_propagation.h"

#include <algorithm>
#include <unordered_map>

namespace ubigraph::ml {

namespace {

std::vector<std::vector<VertexId>> UndirectedAdjacency(const CsrGraph& g) {
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.OutNeighbors(u)) {
      if (u == v) continue;
      adj[u].push_back(v);
      adj[v].push_back(u);
    }
  }
  return adj;
}

uint32_t DensifyLabels(std::vector<uint32_t>* labels) {
  std::unordered_map<uint32_t, uint32_t> remap;
  for (uint32_t& l : *labels) {
    if (l == UINT32_MAX) continue;
    auto [it, ignored] = remap.emplace(l, static_cast<uint32_t>(remap.size()));
    l = it->second;
  }
  return static_cast<uint32_t>(remap.size());
}

}  // namespace

LabelPropagationResult PropagateLabels(const CsrGraph& g,
                                       LabelPropagationOptions options) {
  auto adj = UndirectedAdjacency(g);
  const VertexId n = g.num_vertices();
  Rng rng(options.seed);

  LabelPropagationResult r;
  r.label.resize(n);
  for (VertexId v = 0; v < n; ++v) r.label[v] = v;

  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;

  std::unordered_map<uint32_t, uint32_t> counts;
  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    rng.Shuffle(&order);
    bool changed = false;
    for (VertexId v : order) {
      if (adj[v].empty()) continue;
      counts.clear();
      uint32_t best_count = 0;
      for (VertexId u : adj[v]) {
        uint32_t c = ++counts[r.label[u]];
        best_count = std::max(best_count, c);
      }
      // Random tie-break among plurality labels.
      std::vector<uint32_t> winners;
      for (const auto& [l, c] : counts) {
        if (c == best_count) winners.push_back(l);
      }
      uint32_t pick = winners[rng.NextBounded(winners.size())];
      if (pick != r.label[v]) {
        // Only counts as instability if v's current label is not *also* a
        // plurality label (standard LPA stopping rule).
        if (counts.find(r.label[v]) == counts.end() ||
            counts[r.label[v]] < best_count) {
          changed = true;
          r.label[v] = pick;
        }
      }
    }
    r.iterations = iter + 1;
    if (!changed) {
      r.converged = true;
      break;
    }
  }
  r.num_labels = DensifyLabels(&r.label);
  return r;
}

Result<std::vector<uint32_t>> ClassifyBySeeds(const CsrGraph& g,
                                              const std::vector<uint32_t>& seeds,
                                              LabelPropagationOptions options) {
  if (seeds.size() != g.num_vertices()) {
    return Status::Invalid("seeds size must equal num_vertices");
  }
  auto adj = UndirectedAdjacency(g);
  const VertexId n = g.num_vertices();
  Rng rng(options.seed);

  std::vector<uint32_t> label = seeds;
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;

  std::unordered_map<uint32_t, uint32_t> counts;
  for (uint32_t iter = 0; iter < options.max_iterations; ++iter) {
    rng.Shuffle(&order);
    bool changed = false;
    for (VertexId v : order) {
      if (seeds[v] != UINT32_MAX) continue;  // clamped
      counts.clear();
      uint32_t best_count = 0;
      for (VertexId u : adj[v]) {
        if (label[u] == UINT32_MAX) continue;
        uint32_t c = ++counts[label[u]];
        best_count = std::max(best_count, c);
      }
      if (counts.empty()) continue;
      std::vector<uint32_t> winners;
      for (const auto& [l, c] : counts) {
        if (c == best_count) winners.push_back(l);
      }
      uint32_t pick = winners[rng.NextBounded(winners.size())];
      if (pick != label[v]) {
        changed = true;
        label[v] = pick;
      }
    }
    if (!changed) break;
  }
  return label;
}

}  // namespace ubigraph::ml
