#include "ml/louvain.h"

#include <algorithm>
#include <unordered_map>

namespace ubigraph::ml {

namespace {

/// Undirected weighted adjacency with aggregated parallel edges and self-loop
/// weights kept separately (self-loops count double in strength, as usual).
struct WeightedGraph {
  // adjacency[u] = (v, w) with u != v; each undirected edge stored both ways.
  std::vector<std::vector<std::pair<uint32_t, double>>> adjacency;
  std::vector<double> self_loop;  // total self-loop weight per vertex
  double total_weight = 0.0;      // sum of all undirected edge weights (m)

  uint32_t size() const { return static_cast<uint32_t>(adjacency.size()); }

  double Strength(uint32_t v) const {
    double s = 2.0 * self_loop[v];
    for (const auto& [u, w] : adjacency[v]) s += w;
    return s;
  }
};

WeightedGraph FromCsr(const CsrGraph& g) {
  WeightedGraph wg;
  wg.adjacency.resize(g.num_vertices());
  wg.self_loop.assign(g.num_vertices(), 0.0);
  std::unordered_map<uint64_t, double> agg;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.OutNeighbors(u);
    auto ws = g.OutWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      VertexId v = nbrs[i];
      if (u == v) {
        wg.self_loop[u] += ws[i];
        wg.total_weight += ws[i];
        continue;
      }
      uint64_t key = (static_cast<uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
      agg[key] += ws[i];
      wg.total_weight += ws[i];
    }
  }
  for (const auto& [key, w] : agg) {
    uint32_t a = static_cast<uint32_t>(key >> 32);
    uint32_t b = static_cast<uint32_t>(key & 0xFFFFFFFFu);
    wg.adjacency[a].emplace_back(b, w);
    wg.adjacency[b].emplace_back(a, w);
  }
  return wg;
}

/// One level of local moving; returns (assignment, achieved gain > 0?).
std::pair<std::vector<uint32_t>, bool> LocalMoving(const WeightedGraph& wg,
                                                   const LouvainOptions& options,
                                                   Rng* rng) {
  const uint32_t n = wg.size();
  std::vector<uint32_t> community(n);
  for (uint32_t v = 0; v < n; ++v) community[v] = v;
  std::vector<double> community_strength(n);
  for (uint32_t v = 0; v < n; ++v) community_strength[v] = wg.Strength(v);

  const double m2 = 2.0 * wg.total_weight;
  if (m2 <= 0.0) return {community, false};

  std::vector<uint32_t> order(n);
  for (uint32_t v = 0; v < n; ++v) order[v] = v;
  rng->Shuffle(&order);

  bool any_move = false;
  for (uint32_t sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    bool moved = false;
    for (uint32_t v : order) {
      uint32_t current = community[v];
      double v_strength = wg.Strength(v);

      // Weight from v to each neighboring community.
      std::unordered_map<uint32_t, double> to_comm;
      to_comm[current];  // ensure staying is an option
      for (const auto& [u, w] : wg.adjacency[v]) to_comm[community[u]] += w;

      community_strength[current] -= v_strength;
      double best_gain = 0.0;
      uint32_t best_comm = current;
      double base = to_comm[current] -
                    options.resolution * community_strength[current] * v_strength / m2;
      for (const auto& [c, w] : to_comm) {
        double gain =
            (w - options.resolution * community_strength[c] * v_strength / m2) - base;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_comm = c;
        }
      }
      community[v] = best_comm;
      community_strength[best_comm] += v_strength;
      if (best_comm != current) {
        moved = true;
        any_move = true;
      }
    }
    if (!moved) break;
  }
  return {community, any_move};
}

/// Renumber labels to dense [0, k).
uint32_t Densify(std::vector<uint32_t>* labels) {
  std::unordered_map<uint32_t, uint32_t> remap;
  for (uint32_t& l : *labels) {
    auto [it, inserted] = remap.emplace(l, static_cast<uint32_t>(remap.size()));
    l = it->second;
  }
  return static_cast<uint32_t>(remap.size());
}

/// Collapse communities into a coarser weighted graph.
WeightedGraph Aggregate(const WeightedGraph& wg, const std::vector<uint32_t>& comm,
                        uint32_t k) {
  WeightedGraph out;
  out.adjacency.resize(k);
  out.self_loop.assign(k, 0.0);
  out.total_weight = wg.total_weight;
  std::unordered_map<uint64_t, double> agg;
  for (uint32_t v = 0; v < wg.size(); ++v) {
    uint32_t cv = comm[v];
    out.self_loop[cv] += wg.self_loop[v];
    for (const auto& [u, w] : wg.adjacency[v]) {
      uint32_t cu = comm[u];
      if (cv == cu) {
        // Each intra-community undirected edge visited twice (v->u and u->v);
        // add half each time.
        out.self_loop[cv] += w / 2.0;
      } else {
        uint64_t key =
            (static_cast<uint64_t>(std::min(cv, cu)) << 32) | std::max(cv, cu);
        agg[key] += w / 2.0;  // visited twice -> halve
      }
    }
  }
  for (const auto& [key, w] : agg) {
    uint32_t a = static_cast<uint32_t>(key >> 32);
    uint32_t b = static_cast<uint32_t>(key & 0xFFFFFFFFu);
    out.adjacency[a].emplace_back(b, w);
    out.adjacency[b].emplace_back(a, w);
  }
  return out;
}

double ModularityOf(const WeightedGraph& wg, const std::vector<uint32_t>& comm,
                    double resolution) {
  double m2 = 2.0 * wg.total_weight;
  if (m2 <= 0.0) return 0.0;
  uint32_t k = 0;
  for (uint32_t c : comm) k = std::max(k, c + 1);
  std::vector<double> intra(k, 0.0), strength(k, 0.0);
  for (uint32_t v = 0; v < wg.size(); ++v) {
    strength[comm[v]] += wg.Strength(v);
    intra[comm[v]] += 2.0 * wg.self_loop[v];
    for (const auto& [u, w] : wg.adjacency[v]) {
      if (comm[u] == comm[v]) intra[comm[v]] += w;  // counts each edge twice
    }
  }
  double q = 0.0;
  for (uint32_t c = 0; c < k; ++c) {
    q += intra[c] / m2 - resolution * (strength[c] / m2) * (strength[c] / m2);
  }
  return q;
}

}  // namespace

CommunityResult Louvain(const CsrGraph& g, LouvainOptions options) {
  Rng rng(options.seed);
  WeightedGraph wg = FromCsr(g);
  CommunityResult result;
  result.community.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) result.community[v] = v;
  result.num_communities = Densify(&result.community);
  result.modularity = ModularityOf(wg, result.community, options.resolution);

  // Mapping from original vertices to current coarse vertices.
  std::vector<uint32_t> to_coarse = result.community;

  for (uint32_t level = 0; level < options.max_levels; ++level) {
    auto [comm, moved] = LocalMoving(wg, options, &rng);
    if (!moved) break;
    uint32_t k = Densify(&comm);
    // Project back to original vertices.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      to_coarse[v] = comm[to_coarse[v]];
    }
    double q = ModularityOf(wg, comm, options.resolution);
    wg = Aggregate(wg, comm, k);
    result.levels = level + 1;
    if (q < result.modularity + options.min_gain && level > 0) {
      result.community = to_coarse;
      result.num_communities = k;
      result.modularity = q;
      break;
    }
    result.community = to_coarse;
    result.num_communities = k;
    result.modularity = q;
    if (k == wg.size() && k <= 1) break;
  }
  return result;
}

double Modularity(const CsrGraph& g, const std::vector<uint32_t>& community,
                  double resolution) {
  return ModularityOf(FromCsr(g), community, resolution);
}

}  // namespace ubigraph::ml
